//! Quick start: build a tiny program, profile it, and read the tool's
//! drag report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use heapdrag::core::{profile, DragAnalyzer, ProgramNamer, ReportSections, VmConfig};
use heapdrag::vm::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a classic drag bug: a large buffer is used once and
    // then kept reachable by a local variable across a long computation.
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 3);
    {
        let mut m = b.begin_body(main);
        m.push_int(20_000).mark("the dragged buffer").new_array().store(1);
        // Fill phase: the buffer is genuinely in use for a while…
        m.push_int(0).store(2);
        m.label("fill");
        m.load(2).push_int(400).cmpge().branch("filled");
        m.load(1).load(2).load(2).astore(); // buffer[i] = i
        m.push_int(16).mark("parser scratch").new_array().pop();
        m.load(2).push_int(1).add().store(2);
        m.jump("fill");
        m.label("filled");
        m.load(1).push_int(3).aload().print(); // last use of the buffer
        // …then dragged across a long, unrelated second phase.
        m.push_int(0).store(2);
        m.label("work");
        m.load(2).push_int(2_000).cmpge().branch("done");
        m.push_int(16).mark("transient work").new_array().pop();
        m.load(2).push_int(1).add().store(2);
        m.jump("work");
        m.label("done");
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let program = b.finish()?;

    // Phase 1 (on-line): run under the drag profiler — deep GC every
    // 100 KB of allocation, like the paper's instrumented JVM.
    let run = profile(&program, &[], VmConfig::profiling())?;
    println!(
        "program output: {:?}   ({} objects profiled, {} deep GCs)",
        run.outcome.output,
        run.records.len(),
        run.outcome.deep_gcs
    );

    // Phase 2 (off-line): partition by allocation site, sort by drag.
    let report = DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
    let namer = ProgramNamer {
        program: &program,
        sites: &run.sites,
    };
    println!("\n{}", ReportSections::standard(&report, &namer).top(5).render());
    println!("The buffer tops the list: nulling local 1 after its last use\nwould reclaim it at the next GC instead of at program exit.");
    Ok(())
}
