//! The §5 "future work", running: profile a benchmark, let the
//! profile-guided optimizer apply whichever of the three rewritings each
//! hot site's lifetime pattern suggests (validated by the static
//! analyses), and measure the savings — no hand edits.
//!
//! ```sh
//! cargo run --example auto_transform -- raytrace
//! ```

use heapdrag::core::{profile, Integrals, SavingsReport, VmConfig};
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag::workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "raytrace".to_string());
    let workload =
        workload_by_name(&name).ok_or_else(|| format!("unknown workload `{name}`"))?;
    let input = (workload.default_input)();
    let original = workload.original();

    let mut optimized = original.clone();
    let outcome = optimize_iteratively(
        &mut optimized,
        &input,
        VmConfig::profiling(),
        OptimizerOptions::default(),
        3,
    )?;

    println!("=== transformations applied to `{name}` ===");
    for a in &outcome.applied {
        println!("  [{}] {}", a.kind, a.detail);
    }
    if outcome.applied.is_empty() {
        println!("  (none — every hot site was refused by a safety check)");
    }
    println!("\n=== refusals (safety checks that said no) ===");
    for (_, reason) in outcome.refused.iter().take(6) {
        println!("  - {reason}");
    }

    let before = profile(&original, &input, VmConfig::profiling())?;
    let after = profile(&optimized, &input, VmConfig::profiling())?;
    assert_eq!(
        before.outcome.output, after.outcome.output,
        "the optimizer must preserve program behaviour"
    );
    let savings = SavingsReport::new(
        Integrals::from_records(&before.records),
        Integrals::from_records(&after.records),
    );
    println!("\n=== result (behaviour verified identical) ===");
    println!(
        "drag saving: {:.1} %   space saving: {:.1} %",
        savings.drag_saving_pct(),
        savings.space_saving_pct()
    );
    println!(
        "(manual rewriting of {name} in our Table 2 saves a comparable share;\n the paper's authors did this by hand — §5 asks for exactly this automation)"
    );
    Ok(())
}
