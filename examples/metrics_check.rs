//! Compares the reconciliation surface of two `--metrics-out` JSON
//! snapshots — typically one written by `heapdrag profile` (on-line) and
//! one by `heapdrag report` (off-line) over the same log — without
//! needing `jq` or a JSON parser: the renderer emits one stable
//! `"key": integer` line per metric.
//!
//! ```text
//! cargo run --release --example metrics_check -- online.json offline.json
//! ```
//!
//! Exits 0 when every reconciled metric matches, 1 otherwise.

use std::process::ExitCode;

/// Metrics both phases must agree on, exactly.
const RECONCILED: [&str; 7] = [
    "heapdrag_objects_created_total",
    "heapdrag_alloc_bytes_total",
    "heapdrag_objects_reclaimed_total",
    "heapdrag_objects_at_exit_total",
    "heapdrag_deep_gc_samples_total",
    "heapdrag_retain_samples_total",
    "heapdrag_end_time_bytes",
];

/// Pulls `"key": <integer>` out of a stable-JSON snapshot by line scan.
fn lookup(snapshot: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{key}\": ");
    for line in snapshot.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix(&needle) {
            let value = rest.trim_end_matches(',');
            return value.parse().ok();
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [online_path, offline_path] = args.as_slice() else {
        eprintln!("usage: metrics_check <online.json> <offline.json>");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("metrics_check: {path}: {e}");
            std::process::exit(1);
        })
    };
    let online = read(online_path);
    let offline = read(offline_path);

    let mut ok = true;
    println!("{:<36} {:>14} {:>14}", "metric", "online", "offline");
    for key in RECONCILED {
        let a = lookup(&online, key);
        let b = lookup(&offline, key);
        let fmt = |v: Option<i64>| v.map_or("<missing>".to_string(), |v| v.to_string());
        let mark = if a.is_some() && a == b { "" } else { "  <- MISMATCH" };
        if mark.is_empty() {
            println!("{key:<36} {:>14} {:>14}", fmt(a), fmt(b));
        } else {
            ok = false;
            println!("{key:<36} {:>14} {:>14}{mark}", fmt(a), fmt(b));
        }
    }
    if ok {
        println!("reconciled: on-line and off-line phases agree");
        ExitCode::SUCCESS
    } else {
        eprintln!("metrics_check: phases disagree");
        ExitCode::FAILURE
    }
}
