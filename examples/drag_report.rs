//! The tool as the paper describes it — two phases connected by a log
//! file: (1) run a benchmark under the instrumented VM, writing object
//! trailers to a log; (2) parse the log and print the allocation sites
//! sorted by drag.
//!
//! ```sh
//! cargo run --example drag_report -- juru            # any Table 1 name
//! cargo run --example drag_report -- jack 15         # top 15 sites
//! ```

use heapdrag::core::{profile, Pipeline, ReportSections, VmConfig};
use heapdrag::workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "juru".to_string());
    let top: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(10);
    let workload = workload_by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}` (try juru, jack, euler, …)"))?;
    let program = workload.original();
    let input = (workload.default_input)();

    // Phase 1: profile and write the log file.
    let run = profile(&program, &input, VmConfig::profiling())?;
    let log_path = std::env::temp_dir().join(format!("heapdrag-{name}.log"));
    let mut file = std::fs::File::create(&log_path)?;
    Pipeline::options().write_to(&run, &program, &mut file)?;
    println!(
        "phase 1: profiled `{name}` — {} objects, {} deep GCs, log at {}",
        run.records.len(),
        run.outcome.deep_gcs,
        log_path.display()
    );

    // Phase 2: stream the log back (no program needed) and analyze. The
    // log carries chain names rather than the site table, so the default
    // resolver treats each chain as its own coarse site.
    let streamed = Pipeline::options().analyze_reader(std::fs::File::open(&log_path)?)?;
    println!("\n{}", ReportSections::standard(&streamed.report, &streamed).top(top).render());
    println!(
        "manual rewriting for {name} (Table 5): {} ({})",
        workload.rewriting, workload.reference_kinds
    );
    Ok(())
}
