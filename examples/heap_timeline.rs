//! Figure-2-style heap curves in the terminal: reachable vs in-use size
//! over allocation time, original and revised.
//!
//! ```sh
//! cargo run --example heap_timeline -- euler
//! ```

use heapdrag::core::{profile, Timeline, VmConfig};
use heapdrag::workloads::workload_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "euler".to_string());
    let workload = workload_by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}`"))?;
    let input = (workload.default_input)();
    let mut config = VmConfig::profiling();
    config.deep_gc_interval = Some(16 * 1024); // fine sampling for display

    for (variant, program) in [
        ("original", workload.original()),
        ("revised", workload.revised()),
    ] {
        let run = profile(&program, &input, config.clone())?;
        let timeline = Timeline::from_run(&run);
        println!("--- {name} / {variant} ---");
        print!("{}", timeline.ascii_chart(12));
        println!();
    }
    println!("'#' = reachable bytes, '.' = in-use bytes; the gap between the\ncurves is the drag the rewriting attacks (x = allocation time).");
    Ok(())
}
