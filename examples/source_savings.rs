//! The paper's workflow over real source code: profile the original
//! program, read the report, apply the one-line rewriting (see the two
//! `.hdj` files), re-profile, and measure the savings — then let the
//! automatic optimizer try to match the manual edit.
//!
//! ```sh
//! cargo run --example source_savings
//! ```

use heapdrag::core::{
    profile, DragAnalyzer, Integrals, ProgramNamer, ReportSections, SavingsReport, VmConfig,
};
use heapdrag::lang::compile_source;
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original_src = std::fs::read_to_string("examples/webindex_original.hdj")?;
    let revised_src = std::fs::read_to_string("examples/webindex_revised.hdj")?;
    let original = compile_source(&original_src)?;
    let revised = compile_source(&revised_src)?;

    // Phase 1 + 2 on the original: where is the drag?
    let run = profile(&original, &[], VmConfig::profiling())?;
    let report = DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
    let namer = ProgramNamer {
        program: &original,
        sites: &run.sites,
    };
    println!("{}", ReportSections::standard(&report, &namer).top(4).render());

    // The manual rewriting (one added line in the source).
    let run_rev = profile(&revised, &[], VmConfig::profiling())?;
    assert_eq!(run.outcome.output, run_rev.outcome.output, "same answers");
    let manual = SavingsReport::new(
        Integrals::from_records(&run.records),
        Integrals::from_records(&run_rev.records),
    );
    println!(
        "manual `buffer = null;`:  drag saving {:.1} %, space saving {:.1} %",
        manual.drag_saving_pct(),
        manual.space_saving_pct()
    );

    // The automatic §5 pipeline on the original bytecode.
    let mut auto = original.clone();
    optimize_iteratively(
        &mut auto,
        &[],
        VmConfig::profiling(),
        OptimizerOptions::default(),
        3,
    )?;
    let run_auto = profile(&auto, &[], VmConfig::profiling())?;
    assert_eq!(run.outcome.output, run_auto.outcome.output, "same answers");
    let auto_savings = SavingsReport::new(
        Integrals::from_records(&run.records),
        Integrals::from_records(&run_auto.records),
    );
    println!(
        "automatic optimizer:      drag saving {:.1} %, space saving {:.1} %",
        auto_savings.drag_saving_pct(),
        auto_savings.space_saving_pct()
    );
    println!("\n(the liveness analysis finds the same death point the human did)");
    Ok(())
}
