#!/usr/bin/env bash
# Offline CI gate for the heapdrag workspace.
#
# The workspace has no external crate dependencies, so everything below
# runs without registry or network access:
#
#   1. release build of the whole workspace
#   2. full test suite (unit + integration + testkit property tests)
#   3. clippy with warnings denied
#   4. a smoke run of the two-phase tool, sequential and sharded, checking
#      that the sharded report is byte-identical to the sequential one
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== smoke: two-phase tool =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin=target/release/heapdrag

"$bin" profile examples/dragged.hdj -o "$tmp/smoke.log"
"$bin" report "$tmp/smoke.log" --top 5 > "$tmp/report-seq.txt"
"$bin" report "$tmp/smoke.log" --top 5 --shards 4 --chunk-records 64 \
    2> "$tmp/shard-metrics.txt" > "$tmp/report-par.txt"
diff -u "$tmp/report-seq.txt" "$tmp/report-par.txt"
grep -q '^\[parse\]' "$tmp/shard-metrics.txt"
grep -q '^\[analyze\]' "$tmp/shard-metrics.txt"
"$bin" inspect "$tmp/smoke.log" 1 --shards 2 > /dev/null

echo "== ok =="
