#!/usr/bin/env bash
# Offline CI gate for the heapdrag workspace.
#
# The workspace has no external crate dependencies, so everything below
# runs without registry or network access:
#
#   1. release build of the whole workspace
#   2. full test suite (unit + integration + testkit property tests)
#   3. clippy with warnings denied
#   4. rustdoc with warnings denied (every public item stays documented)
#   5. a smoke run of the two-phase tool, sequential and sharded, checking
#      that the sharded report is byte-identical to the sequential one
#   6. a metrics smoke: both phases write --metrics-out snapshots and the
#      jq-free metrics_check example verifies they reconcile exactly
#   7. a cross-format smoke: the same workload profiled to a text and to a
#      binary (HDLOG v2) log must yield byte-identical reports, with the
#      read side autodetecting the format, at every shard count
#   8. a streaming smoke: a synthesized ~12 MB trace piped through stdin
#      (`analyze -`) must render byte-identical to the file-path report,
#      and the binary smoke log must autodetect through a pipe too
#   9. a salvage smoke: generated logs of both formats truncated at three
#      offsets must fail strict parsing with a stable E0xx code, succeed
#      under --salvage, and render footers byte-identical to the
#      committed golden (tests/golden/salvage_smoke.txt)
#  10. a serve smoke: three traces (mixed formats) spooled through the
#      multi-session service must produce a fleet report byte-identical
#      to `fleet-report` over the same logs submitted in a different
#      order, with the heapdrag_serve_* accounting reconciled in the
#      metrics snapshot
#  11. a differential smoke: one workload profiled under both interpreter
#      dispatch loops (--interpreter fast|reference) must write
#      byte-identical logs in both formats and byte-identical reports,
#      and the seeded random-program property suite must pass with a
#      pinned seed (so CI failures are replayable verbatim)
#  12. an optimize-fleet smoke: two workloads through the closed
#      profile -> rank -> rewrite -> verify -> re-profile loop; the text
#      scoreboard must match the committed golden byte for byte and stay
#      byte-identical when the pool size and shard count change
#  13. a live-mode smoke: `live` on the smoke program must emit
#      intermediate snapshots, report zero ring drops, match the
#      post-mortem `report` output byte-for-byte (final-report prefix),
#      be deterministic across two runs, and `profile --live-window
#      unbounded` must write a log byte-identical to the file-logging
#      profiler's
#  14. a retain smoke: `--retain-sample 0` must write a log byte-identical
#      to a plain profile; with sampling on, the log carries retain
#      lines, the report grows the retaining-paths section (pinned to
#      tests/golden/retain_smoke.txt), stays byte-identical across
#      shard counts and two runs, and optimize-fleet places at least
#      one path-anchored assign-null on the analyzer workload
#  15. a markdown link check: every relative link in
#      README/DESIGN/OPTIMIZER/EXPERIMENTS must point at a file that
#      exists — and every #anchor fragment at a real heading slug in
#      its target document — so doc cross-references can't rot
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== smoke: two-phase tool =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin=target/release/heapdrag

"$bin" profile examples/dragged.hdj -o "$tmp/smoke.log"
"$bin" report "$tmp/smoke.log" --top 5 > "$tmp/report-seq.txt"
"$bin" report "$tmp/smoke.log" --top 5 --shards 4 --chunk-records 64 \
    --verbose-metrics \
    2> "$tmp/shard-metrics.txt" > "$tmp/report-par.txt"
diff -u "$tmp/report-seq.txt" "$tmp/report-par.txt"
grep -q '^\[parse\]' "$tmp/shard-metrics.txt"
grep -q '^\[analyze\]' "$tmp/shard-metrics.txt"
# Per-shard timings are opt-in: without --verbose-metrics stderr stays clean.
"$bin" report "$tmp/smoke.log" --top 5 --shards 4 --chunk-records 64 \
    2> "$tmp/quiet.txt" > /dev/null
if grep -q '^\[parse\]\|^\[analyze\]' "$tmp/quiet.txt"; then
    echo "shard timings printed without --verbose-metrics" >&2
    exit 1
fi
"$bin" inspect "$tmp/smoke.log" 1 --shards 2 > /dev/null

echo "== smoke: metrics reconciliation =="
"$bin" profile examples/dragged.hdj -o "$tmp/smoke.log" \
    --metrics-out "$tmp/online.json"
"$bin" report "$tmp/smoke.log" --shards 4 \
    --metrics-out "$tmp/offline.json" > /dev/null
"$bin" report "$tmp/smoke.log" \
    --metrics-out "$tmp/offline.prom" > /dev/null
grep -q '^# TYPE heapdrag_objects_created_total counter' "$tmp/offline.prom"
cargo run -q --release --example metrics_check -- \
    "$tmp/online.json" "$tmp/offline.json"

echo "== smoke: cross-format codec =="
"$bin" profile examples/dragged.hdj -o "$tmp/smoke-bin.log" --log-format binary
# The binary log carries the HDLOG v2 magic and beats the text encoding
# on size; the read side autodetects, so reports from either format must
# be byte-identical at every shard count.
head -c 8 "$tmp/smoke-bin.log" | od -An -tx1 | tr -d ' \n' | grep -q '^8948444c47320d0a$'
[ "$(wc -c < "$tmp/smoke-bin.log")" -lt "$(wc -c < "$tmp/smoke.log")" ]
"$bin" report "$tmp/smoke.log" --top 5 > "$tmp/report-text.txt"
"$bin" report "$tmp/smoke-bin.log" --top 5 > "$tmp/report-bin.txt"
diff -u "$tmp/report-text.txt" "$tmp/report-bin.txt"
"$bin" report "$tmp/smoke-bin.log" --top 5 --shards 4 --chunk-records 64 \
    > "$tmp/report-bin-par.txt"
diff -u "$tmp/report-text.txt" "$tmp/report-bin-par.txt"

echo "== smoke: streaming stdin =="
# Synthesize a large (~12 MB) text trace, stream it through stdin with
# `analyze -` (the streaming alias of `report`), and require output
# byte-identical to the file-path report of the same trace. The binary
# smoke log goes through stdin too: autodetection must work on a pipe.
awk 'BEGIN {
    print "heapdrag-log v1";
    for (c = 0; c < 8; c++) print "chain " c " Gen.site" c "@" c;
    for (i = 0; i < 200000; i++) {
        created = i * 13;
        printf "obj %d %d %d %d %d %d %d %d 0\n", i, i % 5, \
            8 + (i % 31) * 16, created, created + 400 + (i % 11) * 50, \
            created + 100, i % 8, i % 8;
        if (i % 512 == 0) printf "gc %d %d %d\n", created, i * 9 + 4096, i + 1;
    }
    print "end 999999999";
}' > "$tmp/big.log"
"$bin" report "$tmp/big.log" --top 5 --shards 4 --chunk-records 4096 \
    > "$tmp/big-file.txt"
"$bin" analyze - --top 5 --shards 4 --chunk-records 4096 \
    < "$tmp/big.log" > "$tmp/big-stdin.txt"
diff -u "$tmp/big-file.txt" "$tmp/big-stdin.txt"
"$bin" analyze - --top 5 < "$tmp/smoke-bin.log" > "$tmp/stdin-bin.txt"
diff -u "$tmp/report-bin.txt" "$tmp/stdin-bin.txt"

echo "== smoke: salvage ingestion =="
# Truncate the (deterministic) smoke logs — text and binary — at three
# byte offsets. Strict parsing must reject every prefix with a stable
# E0xx code; salvage must ingest it, and the summary footers must match
# the committed golden byte for byte.
: > "$tmp/salvage-footers.txt"
for log in smoke smoke-bin; do
    size=$(wc -c < "$tmp/$log.log")
    for pct in 40 60 85; do
        head -c $(( size * pct / 100 )) "$tmp/$log.log" > "$tmp/cut.log"
        if "$bin" report "$tmp/cut.log" --top 5 > /dev/null 2> "$tmp/strict-err.txt"; then
            echo "strict parsing accepted a truncated log ($log ${pct}%)" >&2
            exit 1
        fi
        grep -qE '\[E0[0-9]{2}\]' "$tmp/strict-err.txt" || {
            echo "strict failure lacks a stable error code ($log ${pct}%):" >&2
            cat "$tmp/strict-err.txt" >&2
            exit 1
        }
        echo "### $log truncated at ${pct}%" >> "$tmp/salvage-footers.txt"
        "$bin" report "$tmp/cut.log" --top 5 --salvage --shards 3 \
            | sed -n '/^--- salvage summary ---$/,$p' >> "$tmp/salvage-footers.txt"
    done
done
diff -u tests/golden/salvage_smoke.txt "$tmp/salvage-footers.txt"

echo "== smoke: multi-session serve =="
# Spool three traces of mixed formats through `serve`; the fleet report
# on stdout must be byte-identical to `fleet-report` handed the same
# logs in a different order (the fleet merge is arrival-order-invariant),
# and the serve accounting must reconcile in the metrics snapshot.
mkdir -p "$tmp/spool"
"$bin" profile examples/dragged.hdj -o "$tmp/spool/a.log"
"$bin" profile examples/dragged.hdj -o "$tmp/spool/b.log" --log-format binary
"$bin" profile examples/dragged.hdj -o "$tmp/spool/c.log" --interval-kb 50
"$bin" serve --spool "$tmp/spool" --pool 2 --drivers 2 --top 5 \
    --metrics-out "$tmp/serve.prom" \
    > "$tmp/fleet-spool.txt" 2> "$tmp/serve-sessions.txt"
[ "$(grep -c $'\tcompleted\t' "$tmp/serve-sessions.txt")" -eq 3 ]
"$bin" fleet-report "$tmp/spool/c.log" "$tmp/spool/a.log" "$tmp/spool/b.log" \
    --top 5 > "$tmp/fleet-direct.txt" 2> /dev/null
diff -u "$tmp/fleet-spool.txt" "$tmp/fleet-direct.txt"
grep -q '^=== fleet drag report: 3 sessions merged' "$tmp/fleet-spool.txt"
grep -q '^heapdrag_serve_sessions_completed_total 3$' "$tmp/serve.prom"
grep -q '^heapdrag_serve_active_sessions 0$' "$tmp/serve.prom"
grep -q '^heapdrag_serve_inflight_chunks 0$' "$tmp/serve.prom"

echo "== smoke: differential interpreters =="
# The fast pre-decoded interpreter is the default; the reference step()
# loop is the oracle. One workload, both interpreters, both log formats:
# the traces must be byte-identical, and so must the rendered reports.
for kind in fast reference; do
    "$bin" profile examples/dragged.hdj -o "$tmp/diff-$kind.log" \
        --interpreter "$kind"
    "$bin" profile examples/dragged.hdj -o "$tmp/diff-$kind-bin.log" \
        --interpreter "$kind" --log-format binary
    "$bin" report "$tmp/diff-$kind.log" --top 5 > "$tmp/diff-$kind-report.txt"
done
cmp "$tmp/diff-fast.log" "$tmp/diff-reference.log"
cmp "$tmp/diff-fast-bin.log" "$tmp/diff-reference-bin.log"
diff -u "$tmp/diff-fast-report.txt" "$tmp/diff-reference-report.txt"
# The property sweep over generated programs (megamorphic call sites,
# unwinds, finalizers), pinned to a fixed seed for reproducibility.
TESTKIT_SEED=3405691582 TESTKIT_CASES=64 \
    cargo test -q --release --test interp_differential \
    random_programs_are_interpreter_invariant

echo "== smoke: optimize-fleet =="
# Two workloads through the closed loop. The scoreboard is deterministic:
# golden-pinned, and byte-identical at any pool size / shard count. The
# JSON carries the outcome taxonomy; the metrics snapshot reconciles.
"$bin" optimize-fleet --workloads jess,juru --pool 2 --shards 3 \
    --json "$tmp/fleet-optimize.json" --metrics-out "$tmp/fleet-optimize.prom" \
    > "$tmp/fleet-optimize.txt" 2> /dev/null
diff -u tests/golden/optimize_fleet_smoke.txt "$tmp/fleet-optimize.txt"
"$bin" optimize-fleet --workloads jess,juru --pool 1 --shards 1 \
    > "$tmp/fleet-optimize-b.txt" 2> /dev/null
diff -u "$tmp/fleet-optimize.txt" "$tmp/fleet-optimize-b.txt"
grep -q '"outcomes": {"applied": ' "$tmp/fleet-optimize.json"
grep -q '^heapdrag_optimize_jobs_total 2$' "$tmp/fleet-optimize.prom"
grep -q '^heapdrag_optimize_attempts_total{outcome="rejected-by-verify"} 0$' \
    "$tmp/fleet-optimize.prom"

echo "== smoke: live mode =="
# The in-process live path must reproduce the post-mortem pipeline: the
# final report printed by `live` starts with the exact bytes `report`
# prints for a log of the same run (the coldness section follows), at
# least one intermediate snapshot appears, nothing is dropped, and two
# identical invocations produce identical output streams.
"$bin" report "$tmp/smoke.log" --top 5 > "$tmp/live-ref.txt"
"$bin" live examples/dragged.hdj --top 5 --every 2000 \
    --snapshot-out "$tmp/live-snaps.txt" \
    > "$tmp/live-final.txt" 2> "$tmp/live-summary.txt"
[ "$(grep -c '^=== live snapshot' "$tmp/live-snaps.txt")" -ge 1 ]
grep -q ', 0 dropped,' "$tmp/live-summary.txt"
grep -q '^--- coldness: per-site idle intervals' "$tmp/live-final.txt"
head -n "$(wc -l < "$tmp/live-ref.txt")" "$tmp/live-final.txt" \
    | diff -u "$tmp/live-ref.txt" -
"$bin" live examples/dragged.hdj --top 5 --every 2000 \
    --snapshot-out "$tmp/live-snaps-b.txt" \
    > "$tmp/live-final-b.txt" 2> /dev/null
diff -u "$tmp/live-snaps.txt" "$tmp/live-snaps-b.txt"
diff -u "$tmp/live-final.txt" "$tmp/live-final-b.txt"
# The profiling front end can also run through the live engine: with an
# unbounded window the emitted log is byte-identical to the default
# file-logging profiler's.
"$bin" profile examples/dragged.hdj -o "$tmp/live-window.log" \
    --live-window unbounded > /dev/null 2> /dev/null
cmp "$tmp/smoke.log" "$tmp/live-window.log"

echo "== smoke: retaining-path sampling =="
# Rate 0 is absence: the flag at 0 must write the very bytes a flagless
# profile writes, in both formats.
"$bin" profile examples/dragged.hdj -o "$tmp/retain-off.log" --retain-sample 0
cmp "$tmp/smoke.log" "$tmp/retain-off.log"
"$bin" profile examples/dragged.hdj -o "$tmp/retain-off.bin" \
    --retain-sample 0 --log-format binary
cmp "$tmp/smoke-bin.log" "$tmp/retain-off.bin"
# Sampling on: the log carries retain lines, and the report's new
# retaining-paths section matches the committed golden — byte-identical
# at every shard count, across both formats, and across two runs.
"$bin" profile examples/dragged.hdj -o "$tmp/retain.log" --retain-sample 0.5
[ "$(grep -c '^retain ' "$tmp/retain.log")" -ge 1 ]
"$bin" report "$tmp/retain.log" --top 5 > "$tmp/retain-report.txt"
diff -u tests/golden/retain_smoke.txt "$tmp/retain-report.txt"
for shards in 4 7; do
    "$bin" report "$tmp/retain.log" --top 5 --shards "$shards" \
        --chunk-records 64 > "$tmp/retain-report-s.txt"
    diff -u "$tmp/retain-report.txt" "$tmp/retain-report-s.txt"
done
"$bin" profile examples/dragged.hdj -o "$tmp/retain.bin" \
    --retain-sample 0.5 --log-format binary
"$bin" report "$tmp/retain.bin" --top 5 > "$tmp/retain-report-bin.txt"
diff -u "$tmp/retain-report.txt" "$tmp/retain-report-bin.txt"
"$bin" profile examples/dragged.hdj -o "$tmp/retain-b.log" --retain-sample 0.5
cmp "$tmp/retain.log" "$tmp/retain-b.log"
# The acceptance loop: on analyzer, the static-held sites no-op without
# sampling and are path-anchored with it, reported on the scoreboard
# and in the metrics snapshot.
"$bin" optimize-fleet --workloads analyzer --retain-sample 0.25 \
    --metrics-out "$tmp/retain-fleet.prom" > "$tmp/retain-fleet.txt" 2> /dev/null
grep -q '^path-anchored assign-null: [1-9]' "$tmp/retain-fleet.txt"
grep -Eq '^heapdrag_optimize_path_anchored_total [1-9]' "$tmp/retain-fleet.prom"

echo "== docs: markdown link check =="
# Every relative link target in the doc set must exist (http/mailto are
# skipped), and every #anchor fragment — in-page or cross-document —
# must name a real heading in its target, via GitHub's slug rules
# (lowercase, punctuation dropped, spaces to hyphens).
heading_slugs() {
    grep -E '^#{1,6} ' "$1" \
        | sed -E 's/^#+ +//' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}
for doc in README.md DESIGN.md OPTIMIZER.md EXPERIMENTS.md; do
    [ -f "$doc" ] || { echo "missing doc: $doc" >&2; exit 1; }
    while IFS= read -r link; do
        case "$link" in
            http://*|https://*|mailto:*) continue ;;
        esac
        target="${link%%#*}"
        if [ -n "$target" ] && [ ! -e "$target" ]; then
            echo "$doc: broken link -> $target" >&2
            exit 1
        fi
        case "$link" in
            *'#'*)
                anchor="${link#*#}"
                anchor_doc="${target:-$doc}"
                case "$anchor_doc" in
                    *.md)
                        heading_slugs "$anchor_doc" | grep -qxF "$anchor" || {
                            echo "$doc: dead anchor -> $link" >&2
                            exit 1
                        } ;;
                esac ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

echo "== ok =="
