#!/usr/bin/env bash
# Offline CI gate for the heapdrag workspace.
#
# The workspace has no external crate dependencies, so everything below
# runs without registry or network access:
#
#   1. release build of the whole workspace
#   2. full test suite (unit + integration + testkit property tests)
#   3. clippy with warnings denied
#   4. a smoke run of the two-phase tool, sequential and sharded, checking
#      that the sharded report is byte-identical to the sequential one
#   5. a metrics smoke: both phases write --metrics-out snapshots and the
#      jq-free metrics_check example verifies they reconcile exactly
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== smoke: two-phase tool =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
bin=target/release/heapdrag

"$bin" profile examples/dragged.hdj -o "$tmp/smoke.log"
"$bin" report "$tmp/smoke.log" --top 5 > "$tmp/report-seq.txt"
"$bin" report "$tmp/smoke.log" --top 5 --shards 4 --chunk-records 64 \
    --verbose-metrics \
    2> "$tmp/shard-metrics.txt" > "$tmp/report-par.txt"
diff -u "$tmp/report-seq.txt" "$tmp/report-par.txt"
grep -q '^\[parse\]' "$tmp/shard-metrics.txt"
grep -q '^\[analyze\]' "$tmp/shard-metrics.txt"
# Per-shard timings are opt-in: without --verbose-metrics stderr stays clean.
"$bin" report "$tmp/smoke.log" --top 5 --shards 4 --chunk-records 64 \
    2> "$tmp/quiet.txt" > /dev/null
if grep -q '^\[parse\]\|^\[analyze\]' "$tmp/quiet.txt"; then
    echo "shard timings printed without --verbose-metrics" >&2
    exit 1
fi
"$bin" inspect "$tmp/smoke.log" 1 --shards 2 > /dev/null

echo "== smoke: metrics reconciliation =="
"$bin" profile examples/dragged.hdj -o "$tmp/smoke.log" \
    --metrics-out "$tmp/online.json"
"$bin" report "$tmp/smoke.log" --shards 4 \
    --metrics-out "$tmp/offline.json" > /dev/null
"$bin" report "$tmp/smoke.log" \
    --metrics-out "$tmp/offline.prom" > /dev/null
grep -q '^# TYPE heapdrag_objects_created_total counter' "$tmp/offline.prom"
cargo run -q --release --example metrics_check -- \
    "$tmp/online.json" "$tmp/offline.json"

echo "== ok =="
