//! The fleet optimizer: the paper's loop — profile → rank → rewrite →
//! verify → re-profile — run as one batch over the nine-workload
//! evaluation suite, sharded on a [`WorkerPool`].
//!
//! Each workload × input is one pool job. A job:
//!
//! 1. profiles the original program on the fast interpreter,
//! 2. streams the trace through the [`Pipeline`] API (encode → ingest →
//!    sharded analyze) and ranks allocation sites by drag integral,
//! 3. for each ranked site, selects the pattern-appropriate rewriting
//!    (assign-null / dead-code / lazy-alloc) via the §5 analyses,
//! 4. applies it *transactionally*: the candidate program must pass an
//!    output-differential equivalence check
//!    ([`check_equivalence`]) on both benchmark inputs or the rewrite is
//!    reverted and recorded as `rejected-by-verify`,
//! 5. re-profiles and loops (up to [`FleetOptions::rounds`] rounds), and
//! 6. reports before/after drag integrals plus the per-site attempt log.
//!
//! The aggregated [`Scoreboard`] renders deterministically — byte-identical
//! at any pool size or shard count — because jobs write into
//! position-indexed slots, the VM is deterministic, and `Pipeline` reports
//! are shard-invariant. See `OPTIMIZER.md` for the operator's guide.

use std::io;
use std::path::{Path, PathBuf};

use heapdrag_core::analyzer::DragReport;
use heapdrag_core::codec::LogFormat;
use heapdrag_core::pattern::TransformKind;
use heapdrag_core::profiler::{profile, ProfileRun};
use heapdrag_core::serve::WorkerPool;
use heapdrag_core::{Integrals, Pipeline};
use heapdrag_obs::Registry;
use heapdrag_transform::{
    check_equivalence, find_path_anchor, optimize_site, AppliedTransform, Equivalence,
    OptimizeState, OptimizerOptions, RewriteOutcome, SiteAttempt,
};
use heapdrag_vm::disasm::disassemble;
use heapdrag_vm::error::VmError;
use heapdrag_vm::interp::{InterpreterKind, VmConfig};
use heapdrag_vm::program::Program;
use heapdrag_vm::retain::RetainConfig;
use heapdrag_workloads::{all_workloads, workload_by_name, Workload};

/// Which benchmark input(s) each workload is optimized against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSelection {
    /// The paper's Table 2 input only.
    Default,
    /// The Table 3 input only.
    Alternate,
    /// Both inputs, as two independent jobs.
    Both,
}

impl InputSelection {
    /// Parses the CLI spelling (`default` / `alternate` / `both`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "default" => Some(InputSelection::Default),
            "alternate" => Some(InputSelection::Alternate),
            "both" => Some(InputSelection::Both),
            _ => None,
        }
    }
}

/// The output-differential check a fleet run uses to accept or revert
/// each applied rewrite. The default is [`check_equivalence`]; tests
/// inject an always-rejecting stub to pin the revert path.
pub type VerifyFn = fn(&Program, &Program, &[Vec<i64>]) -> Result<Equivalence, VmError>;

/// Configuration for one [`optimize_fleet`] run.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Workload names to optimize; empty means all nine.
    pub workloads: Vec<String>,
    /// Which input(s) to profile and optimize against.
    pub inputs: InputSelection,
    /// Maximum profile → rewrite → re-profile rounds per job.
    pub rounds: usize,
    /// Worker threads in the fleet's pool (jobs run concurrently).
    pub pool_workers: usize,
    /// Shard count for the ranking pipeline (report is shard-invariant).
    pub shards: usize,
    /// Chunk granularity for the ranking pipeline.
    pub chunk_records: usize,
    /// Site-walk tuning passed through to the optimizer.
    pub optimizer: OptimizerOptions,
    /// Dispatch loop for the profiling runs.
    pub interpreter: InterpreterKind,
    /// Retaining-path sampling for the profiling runs; when set, the
    /// ranked report carries per-site retaining paths and `assign-null`
    /// can anchor on the sampled holder when liveness alone finds no
    /// dead local.
    pub retain: Option<RetainConfig>,
    /// The semantic-preservation check gating every rewrite.
    pub verify: VerifyFn,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            workloads: Vec::new(),
            inputs: InputSelection::Default,
            rounds: 3,
            pool_workers: 4,
            shards: 1,
            chunk_records: 8192,
            optimizer: OptimizerOptions::default(),
            interpreter: InterpreterKind::Fast,
            retain: None,
            verify: check_equivalence,
        }
    }
}

/// The result of one workload × input job.
#[derive(Debug, Clone)]
pub struct JobScore {
    /// Workload name (Table 1).
    pub workload: String,
    /// `default` or `alternate`.
    pub input: &'static str,
    /// Integrals of the profile before any rewriting.
    pub before: Integrals,
    /// Integrals of the final re-profile (equals `before` when nothing
    /// was applied — the same run is reused, so the tie is exact).
    pub after: Integrals,
    /// Ranking rounds executed.
    pub rounds_run: usize,
    /// Rewrites committed (each one passed the equivalence check).
    pub applied: Vec<AppliedTransform>,
    /// Every ranked site visited, with the stable outcome taxonomy.
    pub attempts: Vec<SiteAttempt>,
    /// The optimized program, present only when ≥ 1 rewrite committed.
    pub revised: Option<Program>,
    /// Set when the job failed (profiling error, unknown workload, or a
    /// worker panic); the integrals are zero in that case.
    pub error: Option<String>,
}

impl JobScore {
    fn empty(workload: &str, input: &'static str) -> Self {
        JobScore {
            workload: workload.to_string(),
            input,
            before: Integrals::default(),
            after: Integrals::default(),
            rounds_run: 0,
            applied: Vec::new(),
            attempts: Vec::new(),
            revised: None,
            error: None,
        }
    }

    fn failed(workload: &str, input: &'static str, error: String) -> Self {
        JobScore {
            error: Some(error),
            ..JobScore::empty(workload, input)
        }
    }

    /// Drag integral before rewriting (byte²).
    pub fn drag_before(&self) -> u128 {
        self.before.drag()
    }

    /// Drag integral after the final re-profile (byte²).
    pub fn drag_after(&self) -> u128 {
        self.after.drag()
    }

    /// Percentage of the drag integral reclaimed (0 when none existed).
    pub fn reduction_pct(&self) -> f64 {
        let before = self.drag_before();
        if before == 0 {
            return 0.0;
        }
        let saved = before.saturating_sub(self.drag_after());
        saved as f64 / before as f64 * 100.0
    }

    /// Number of attempts that ended with `outcome`.
    pub fn outcome_count(&self, outcome: RewriteOutcome) -> usize {
        self.attempts.iter().filter(|a| a.outcome == outcome).count()
    }

    /// Number of committed rewrites of `kind`.
    pub fn applied_of_kind(&self, kind: TransformKind) -> usize {
        self.applied.iter().filter(|a| a.kind == kind).count()
    }

    /// Committed rewrites that were placed by a sampled retaining path
    /// (path-anchored assign-null) rather than a static analysis.
    pub fn path_anchored_count(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.path_anchored && a.outcome == RewriteOutcome::Applied)
            .count()
    }
}

/// The fleet-wide before/after drag accounting.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    /// One entry per workload × input, in fleet order (workload order of
    /// the request, inputs `default` before `alternate`).
    pub jobs: Vec<JobScore>,
}

/// Stable metric-label slug for a transform kind.
fn kind_slug(kind: TransformKind) -> &'static str {
    match kind {
        TransformKind::AssignNull => "assign-null",
        TransformKind::DeadCodeRemoval => "dead-code",
        TransformKind::LazyAllocation => "lazy-alloc",
        TransformKind::NoTransformation => "none",
    }
}

fn fmt_mb2(v: u128) -> String {
    format!("{:.3}", v as f64 / (1024.0 * 1024.0))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Scoreboard {
    /// Jobs whose final drag integral is strictly below the initial one.
    pub fn jobs_with_reduction(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.drag_after() < j.drag_before())
            .count()
    }

    fn total_outcome(&self, outcome: RewriteOutcome) -> usize {
        self.jobs.iter().map(|j| j.outcome_count(outcome)).sum()
    }

    fn total_applied_of_kind(&self, kind: TransformKind) -> usize {
        self.jobs.iter().map(|j| j.applied_of_kind(kind)).sum()
    }

    /// How many applied assign-nulls across the fleet were placed by a
    /// sampled retaining path rather than the liveness analysis.
    pub fn total_path_anchored(&self) -> usize {
        self.jobs.iter().map(|j| j.path_anchored_count()).sum()
    }

    /// Renders the deterministic text scoreboard.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== optimize-fleet scoreboard: {} job(s) ===\n\n",
            self.jobs.len()
        ));
        out.push_str(
            "workload   input      drag-before  drag-after   reduced  rounds  sites  \
             applied  rej-an  rej-ver  no-op  an/dc/la\n",
        );
        for j in &self.jobs {
            let an = j.applied_of_kind(TransformKind::AssignNull);
            let dc = j.applied_of_kind(TransformKind::DeadCodeRemoval);
            let la = j.applied_of_kind(TransformKind::LazyAllocation);
            out.push_str(&format!(
                "{:<10} {:<9} {:>12} {:>11} {:>8} {:>7} {:>6} {:>8} {:>7} {:>8} {:>6}  {}/{}/{}\n",
                j.workload,
                j.input,
                fmt_mb2(j.drag_before()),
                fmt_mb2(j.drag_after()),
                format!("{:.2}%", j.reduction_pct()),
                j.rounds_run,
                j.attempts.len(),
                j.outcome_count(RewriteOutcome::Applied),
                j.outcome_count(RewriteOutcome::RejectedByAnalysis),
                j.outcome_count(RewriteOutcome::RejectedByVerify),
                j.outcome_count(RewriteOutcome::NoOp),
                an,
                dc,
                la,
            ));
        }
        for j in self.jobs.iter().filter(|j| j.error.is_some()) {
            out.push_str(&format!(
                "!! {}/{} failed: {}\n",
                j.workload,
                j.input,
                j.error.as_deref().unwrap_or("")
            ));
        }

        let before: u128 = self.jobs.iter().map(|j| j.drag_before()).sum();
        let after: u128 = self.jobs.iter().map(|j| j.drag_after()).sum();
        let reclaimed = if before == 0 {
            0.0
        } else {
            before.saturating_sub(after) as f64 / before as f64 * 100.0
        };
        let failed = self.jobs.iter().filter(|j| j.error.is_some()).count();
        out.push_str("\n--- fleet totals ---\n");
        out.push_str(&format!(
            "jobs: {} ({} ok, {} failed), {} with drag reduced\n",
            self.jobs.len(),
            self.jobs.len() - failed,
            failed,
            self.jobs_with_reduction(),
        ));
        out.push_str(&format!(
            "drag before: {} MByte^2   after: {} MByte^2   reclaimed: {:.2}%\n",
            fmt_mb2(before),
            fmt_mb2(after),
            reclaimed,
        ));
        out.push_str(&format!(
            "rewrites: {} applied (assign-null {}, dead-code {}, lazy-alloc {}), \
             {} rejected-by-analysis, {} rejected-by-verify, {} no-op\n",
            self.total_outcome(RewriteOutcome::Applied),
            self.total_applied_of_kind(TransformKind::AssignNull),
            self.total_applied_of_kind(TransformKind::DeadCodeRemoval),
            self.total_applied_of_kind(TransformKind::LazyAllocation),
            self.total_outcome(RewriteOutcome::RejectedByAnalysis),
            self.total_outcome(RewriteOutcome::RejectedByVerify),
            self.total_outcome(RewriteOutcome::NoOp),
        ));
        // Only retain-sampled runs can anchor on a path, so sampling-off
        // scoreboards stay byte-identical to the pre-sampling golden.
        let path_anchored = self.total_path_anchored();
        if path_anchored > 0 {
            out.push_str(&format!(
                "path-anchored assign-null: {path_anchored} (placed by sampled retaining paths)\n",
            ));
        }
        out
    }

    /// Renders the scoreboard as stable JSON (fixed key order, one job
    /// per array element, attempt details included).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"input\": \"{}\", \
                 \"drag_before\": {}, \"drag_after\": {}, \
                 \"reachable_before\": {}, \"reachable_after\": {}, \
                 \"in_use_before\": {}, \"in_use_after\": {}, \
                 \"reduction_pct\": {:.4}, \"rounds\": {}, ",
                json_escape(&j.workload),
                j.input,
                j.drag_before(),
                j.drag_after(),
                j.before.reachable,
                j.after.reachable,
                j.before.in_use,
                j.after.in_use,
                j.reduction_pct(),
                j.rounds_run,
            ));
            out.push_str(&format!(
                "\"applied\": {{\"assign-null\": {}, \"dead-code\": {}, \"lazy-alloc\": {}}}, ",
                j.applied_of_kind(TransformKind::AssignNull),
                j.applied_of_kind(TransformKind::DeadCodeRemoval),
                j.applied_of_kind(TransformKind::LazyAllocation),
            ));
            out.push_str(&format!(
                "\"outcomes\": {{\"applied\": {}, \"rejected-by-analysis\": {}, \
                 \"rejected-by-verify\": {}, \"no-op\": {}}}, ",
                j.outcome_count(RewriteOutcome::Applied),
                j.outcome_count(RewriteOutcome::RejectedByAnalysis),
                j.outcome_count(RewriteOutcome::RejectedByVerify),
                j.outcome_count(RewriteOutcome::NoOp),
            ));
            out.push_str("\"attempts\": [");
            for (k, a) in j.attempts.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"site\": {}, \"pattern\": \"{}\", \"chosen\": \"{}\", \
                     \"outcome\": \"{}\", \"path_anchored\": {}, \"detail\": \"{}\"}}",
                    a.site.0,
                    json_escape(&a.pattern.to_string()),
                    json_escape(&a.chosen.to_string()),
                    a.outcome.as_str(),
                    a.path_anchored,
                    json_escape(&a.detail),
                ));
                if k + 1 < j.attempts.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("], ");
            match &j.error {
                Some(e) => out.push_str(&format!("\"error\": \"{}\"}}", json_escape(e))),
                None => out.push_str("\"error\": null}"),
            }
            if i + 1 < self.jobs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let before: u128 = self.jobs.iter().map(|j| j.drag_before()).sum();
        let after: u128 = self.jobs.iter().map(|j| j.drag_after()).sum();
        out.push_str(&format!(
            "  ],\n  \"totals\": {{\"jobs\": {}, \"reduced\": {}, \
             \"drag_before\": {}, \"drag_after\": {}}}\n}}\n",
            self.jobs.len(),
            self.jobs_with_reduction(),
            before,
            after,
        ));
        out
    }

    /// Publishes the fleet's accounting as `heapdrag_optimize_*` metrics.
    pub fn publish_metrics(&self, registry: &Registry) {
        let failed = self.jobs.iter().filter(|j| j.error.is_some()).count();
        registry
            .counter("heapdrag_optimize_jobs_total")
            .add(self.jobs.len() as u64);
        registry
            .counter("heapdrag_optimize_jobs_failed_total")
            .add(failed as u64);
        registry
            .counter("heapdrag_optimize_jobs_reduced_total")
            .add(self.jobs_with_reduction() as u64);
        registry
            .counter("heapdrag_optimize_rounds_total")
            .add(self.jobs.iter().map(|j| j.rounds_run as u64).sum());
        registry
            .counter("heapdrag_optimize_sites_ranked_total")
            .add(self.jobs.iter().map(|j| j.attempts.len() as u64).sum());
        for outcome in [
            RewriteOutcome::Applied,
            RewriteOutcome::RejectedByAnalysis,
            RewriteOutcome::RejectedByVerify,
            RewriteOutcome::NoOp,
        ] {
            registry
                .counter(&format!(
                    "heapdrag_optimize_attempts_total{{outcome=\"{}\"}}",
                    outcome.as_str()
                ))
                .add(self.total_outcome(outcome) as u64);
        }
        for kind in [
            TransformKind::AssignNull,
            TransformKind::DeadCodeRemoval,
            TransformKind::LazyAllocation,
        ] {
            registry
                .counter(&format!(
                    "heapdrag_optimize_applied_total{{kind=\"{}\"}}",
                    kind_slug(kind)
                ))
                .add(self.total_applied_of_kind(kind) as u64);
        }
        registry
            .counter("heapdrag_optimize_path_anchored_total")
            .add(self.total_path_anchored() as u64);
        let before: u128 = self.jobs.iter().map(|j| j.drag_before()).sum();
        let after: u128 = self.jobs.iter().map(|j| j.drag_after()).sum();
        registry
            .gauge("heapdrag_optimize_drag_before_bytes2")
            .set(i64::try_from(before).unwrap_or(i64::MAX));
        registry
            .gauge("heapdrag_optimize_drag_after_bytes2")
            .set(i64::try_from(after).unwrap_or(i64::MAX));
    }

    /// Writes each job's optimized program (jobs with ≥ 1 committed
    /// rewrite only — rejected rewrites never reach disk) as
    /// `<workload>-<input>.hdasm` under `dir`, returning the paths
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_revised(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for j in &self.jobs {
            let Some(program) = &j.revised else { continue };
            let path = dir.join(format!("{}-{}.hdasm", j.workload, j.input));
            std::fs::write(&path, disassemble(program))?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Ranks allocation sites for one profiling run by streaming its trace
/// through the `Pipeline` API: encode → (sharded) ingest → (sharded)
/// analyze. The report is byte-identical at any shard count.
fn ranked_report(
    pipe: &Pipeline,
    program: &Program,
    run: &ProfileRun,
) -> Result<DragReport, String> {
    let mut bytes: Vec<u8> = Vec::new();
    pipe.write_to(run, program, &mut bytes)
        .map_err(|e| format!("encode trace: {e}"))?;
    let ingested = pipe
        .ingest_bytes(&bytes)
        .map_err(|e| format!("ingest trace: {e}"))?;
    let (mut report, _metrics) = pipe.analyze_records(&ingested.log.records, |ch| {
        run.sites.innermost(ch)
    });
    // Retaining-path samples ride the same encoded trace; fold them onto
    // the ranked report so the optimizer can anchor assign-null rewrites.
    report.attach_retains(&ingested.log.retains);
    Ok(report)
}

fn run_job(
    workload: &Workload,
    input_label: &'static str,
    options: &FleetOptions,
) -> JobScore {
    let input = match input_label {
        "alternate" => (workload.alternate_input)(),
        _ => (workload.default_input)(),
    };
    let verify_inputs = vec![(workload.default_input)(), (workload.alternate_input)()];
    let original = workload.original();
    let mut config = VmConfig::profiling();
    config.interpreter = options.interpreter;
    config.retain = options.retain;
    let pipe = Pipeline::options()
        .shards(options.shards)
        .chunk_records(options.chunk_records)
        .format(LogFormat::Binary);

    let mut score = JobScore::empty(workload.name, input_label);
    let mut program = original.clone();
    let mut run = match profile(&program, &input, config.clone()) {
        Ok(r) => r,
        Err(e) => return JobScore::failed(workload.name, input_label, format!("profile: {e}")),
    };
    score.before = Integrals::from_records(&run.records);

    for _ in 0..options.rounds.max(1) {
        score.rounds_run += 1;
        let report = match ranked_report(&pipe, &program, &run) {
            Ok(r) => r,
            Err(e) => {
                score.error = Some(e);
                break;
            }
        };
        let total_drag = report.total_drag().max(1);
        let mut state = OptimizeState::default();
        let mut applied_this_round = 0usize;

        for entry in report.by_nested_site.iter().take(options.optimizer.max_sites) {
            let share = entry.stats.drag as f64 / total_drag as f64;
            if share < options.optimizer.min_drag_share {
                break;
            }
            // Transactional attempt: rewrite a clone, keep it only if the
            // equivalence check accepts it. Every rewrite here is gated
            // by the verify below, so the profile-guided path anchor is
            // safe to offer.
            let anchor = find_path_anchor(&program, &run, &report, entry.site);
            let mut candidate = program.clone();
            let mut cand_state = state.clone();
            let mut step =
                optimize_site(&mut candidate, &run, entry, anchor.as_ref(), &mut cand_state);
            if step.attempt.outcome != RewriteOutcome::Applied {
                // Nothing changed; keep the state so round-local skip
                // bookkeeping (nulled methods) matches the plain optimizer.
                state = cand_state;
                score.attempts.push(step.attempt);
                continue;
            }
            let verdict = match candidate.link() {
                Ok(()) => (options.verify)(&original, &candidate, &verify_inputs),
                Err(e) => Err(e),
            };
            match verdict {
                Ok(Equivalence::Same) => {
                    program = candidate;
                    state = cand_state;
                    applied_this_round += 1;
                    score.applied.append(&mut step.applied);
                    score.attempts.push(step.attempt);
                }
                Ok(Equivalence::Different { input, .. }) => {
                    step.attempt.outcome = RewriteOutcome::RejectedByVerify;
                    step.attempt.detail = format!(
                        "{}; reverted: output diverged on input {:?}",
                        step.attempt.detail, input
                    );
                    score.attempts.push(step.attempt);
                }
                Err(e) => {
                    step.attempt.outcome = RewriteOutcome::RejectedByVerify;
                    step.attempt.detail =
                        format!("{}; reverted: verify failed ({e})", step.attempt.detail);
                    score.attempts.push(step.attempt);
                }
            }
        }

        if applied_this_round == 0 || score.error.is_some() {
            break;
        }
        // Re-profile the rewritten program: refreshes the stale pcs for
        // the next round and provides the "after" integrals.
        run = match profile(&program, &input, config.clone()) {
            Ok(r) => r,
            Err(e) => {
                score.error = Some(format!("re-profile: {e}"));
                break;
            }
        };
    }

    score.after = Integrals::from_records(&run.records);
    if !score.applied.is_empty() {
        score.revised = Some(program);
    }
    score
}

/// Runs the full fleet: every requested workload × input as one
/// [`WorkerPool`] job, aggregated into a deterministic [`Scoreboard`].
///
/// When `registry` is given, the fleet's accounting is published as
/// `heapdrag_optimize_*` metrics after the jobs complete (a deterministic
/// fold over the scoreboard, so snapshots are pool-size-invariant too).
///
/// # Errors
///
/// Returns an error for an unknown workload name; individual job
/// failures are reported in their [`JobScore::error`] instead.
pub fn optimize_fleet(
    options: &FleetOptions,
    registry: Option<&Registry>,
) -> Result<Scoreboard, String> {
    let workloads: Vec<Workload> = if options.workloads.is_empty() {
        all_workloads()
    } else {
        options
            .workloads
            .iter()
            .map(|name| workload_by_name(name).ok_or_else(|| format!("unknown workload `{name}`")))
            .collect::<Result<_, _>>()?
    };
    let labels: &[&'static str] = match options.inputs {
        InputSelection::Default => &["default"],
        InputSelection::Alternate => &["alternate"],
        InputSelection::Both => &["default", "alternate"],
    };
    let specs: Vec<(&Workload, &'static str)> = workloads
        .iter()
        .flat_map(|w| labels.iter().map(move |l| (w, *l)))
        .collect();

    let mut slots: Vec<Option<JobScore>> = (0..specs.len()).map(|_| None).collect();
    {
        // A fleet-owned pool, distinct from `WorkerPool::shared()`: the
        // jobs call `Pipeline` terminals that fan out on the shared pool,
        // and a pool's own workers must not re-enter its `scope`.
        let pool = WorkerPool::new(options.pool_workers.max(1));
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = specs
            .iter()
            .zip(slots.iter_mut())
            .map(|((workload, label), slot)| {
                let workload: &Workload = workload;
                let label: &'static str = label;
                Box::new(move || {
                    *slot = Some(run_job(workload, label, options));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
    }

    let scoreboard = Scoreboard {
        jobs: specs
            .iter()
            .zip(slots)
            .map(|((workload, label), slot)| {
                slot.unwrap_or_else(|| {
                    JobScore::failed(workload.name, label, "worker panicked".into())
                })
            })
            .collect(),
    };
    if let Some(registry) = registry {
        scoreboard.publish_metrics(registry);
    }
    Ok(scoreboard)
}
