//! The `heapdrag` command-line tool: the paper's two-phase profiler plus
//! the automated optimizer, over textual bytecode programs.
//!
//! ```text
//! heapdrag run      <prog.hdasm> [input ints…]
//! heapdrag profile  <prog.hdasm> -o <out.log> [--log-format text|binary] [--interval-kb N] [input ints…]
//! heapdrag report   <log file | -> [--top N] [--shards N] [--chunk-records N]
//! heapdrag timeline <prog.hdasm> [input ints…]
//! heapdrag optimize <prog.hdasm> -o <out.hdasm> [input ints…]
//! heapdrag optimize-fleet [--workloads a,b,…] [--rounds N] [--pool N] [--json <path>]
//! ```
//!
//! `profile --log-format binary` writes the compact HDLOG v2 frame format
//! instead of the default text log; either way the trace streams straight
//! to the output file. Log-reading commands autodetect the format from the
//! file's first bytes, so no flag is needed on the read side. The report
//! is byte-identical whichever format carried the trace.
//!
//! `report` (alias: `analyze`) streams the trace through
//! [`Pipeline::analyze_reader`] in bounded memory — records fold straight
//! into per-site aggregates as chunks decode, so traces larger than RAM
//! work. Pass `-` as the log path to read the trace from stdin:
//! `heapdrag profile p.hdasm -o /dev/stdout | heapdrag report -`.
//!
//! `serve` runs the long-lived multi-session drag service: every trace in
//! a `--spool` directory (and/or every `SUBMIT` on a `--socket` unix
//! listener) becomes a session sharing one decode worker pool under a
//! fleet-wide in-flight-chunk budget. Per-session summaries go to stderr;
//! the deterministic fleet-aggregate report goes to stdout. `submit`,
//! `sessions`, and `fleet-report --socket` are the matching clients;
//! `fleet-report <log>...` with no socket merges the logs offline through
//! an in-process service.
//!
//! `--shards N` runs the off-line phase (log decoding and per-site
//! aggregation) on N worker threads; the report is byte-identical to the
//! sequential one. `--verbose-metrics` prints per-shard timings to stderr,
//! and `--metrics-out <path>` writes a metrics snapshot of whichever phase
//! ran — stable JSON by default, Prometheus text if the path ends in
//! `.prom`. Log I/O publishes `heapdrag_log_bytes_total{format="..."}`
//! plus `heapdrag_log_encode_us`/`heapdrag_log_decode_us` codec timings.
//!
//! Log-reading commands default to strict parsing (`--strict`): the first
//! malformed line aborts with a stable `E0xx` error code. `--salvage`
//! ingests damaged logs instead — corrupt lines/frames are dropped, a
//! missing end-of-log marker is repaired — and appends a salvage summary
//! footer (which names the detected input format) to the report;
//! `--max-errors N` bounds how much corruption salvage will tolerate.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use heapdrag::core::log::{IngestConfig, IngestMode, SalvageSummary};
use heapdrag::fleet::{optimize_fleet, FleetOptions, InputSelection};
use heapdrag::core::serve::submit_spool;
use heapdrag::core::{
    profile_with, run_live, LiveOptions, LogFormat, ParallelConfig, Pipeline, ProfileRun,
    ReportSections, ServeConfig, ServeManager, SessionSource, SessionSpec, SessionState,
    SessionSummary, StreamReport, Timeline, VmConfig, WindowSpec,
};
use heapdrag::obs::Registry;
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag::vm::asm::assemble;
use heapdrag::vm::disasm::disassemble;
use heapdrag::vm::retain::RetainConfig;
use heapdrag::vm::{InterpreterKind, Program, SiteId, Vm, VmConfig as RawConfig};
use heapdrag::workloads::workload_by_name;

const USAGE: &str = "usage:
  heapdrag run      <prog> [input ints...]
  heapdrag compile  <prog.hdj> -o <out.hdasm>
  heapdrag profile  <prog> -o <out.log> [--log-format text|binary]
                    [--interval-kb N] [--live-window <bytes>|unbounded]
                    [--retain-sample <rate>] [input ints...]
  heapdrag live     <workload | prog> [--window <bytes>|unbounded]
                    [--retain-sample <rate>]
                    [--advance N] [--cold-after N] [--every N] [--ring N]
                    [--snapshot-out <path>] [input ints...]
  heapdrag report   <log file | -> [--top N] [--shards N] [--chunk-records N]
                    (`analyze` is an alias; `-` streams the trace from stdin)
  heapdrag inspect  <log file | -> <rank> [--shards N]   (lifetime histograms of the rank-th site)
  heapdrag timeline <prog> [input ints...]
  heapdrag optimize <prog> -o <out.hdasm> [input ints...]
  heapdrag optimize-fleet [--workloads <a,b,...>] [--input default|alternate|both]
                    [--rounds N] [--pool N] [--shards N] [--chunk-records N]
                    [--json <path>] [--out-dir <dir>]
  heapdrag serve    [--spool <dir>] [--socket <path>] [--pool N] [--drivers N]
                    [--budget-chunks N] [--top N] (+ log ingestion flags)
  heapdrag submit   <socket> <log file | -> [--name NAME] [--shards N]
                    [--chunk-records N] [--salvage]
  heapdrag sessions <socket>
  heapdrag fleet-report <log file>... | --socket <path>  [--top N]

common flags:
  --metrics-out <path>   write a metrics snapshot on exit (JSON; Prometheus
                         text format if <path> ends in .prom)
  --verbose-metrics      print per-shard parse/analyze timings to stderr
  --interpreter <kind>   VM dispatch loop for run/profile/timeline/optimize:
                         `fast` (pre-decoded, the default) or `reference`
                         (the step-at-a-time oracle); observably identical
  --retain-sample <r>    profile/live/optimize-fleet: sample traced edges
                         during full-heap GC marks at rate r in [0,1]; each
                         sample records a bounded root-anchored retaining
                         path (`retain` log lines / tag-05 frames, a
                         retaining-paths report section). 0 disables
                         sampling and output is byte-identical to omitting
                         the flag; the sampler is seeded, so any r is
                         deterministic for a given program + input

profile flags:
  --log-format <fmt>     trace encoding: `text` (heapdrag-log v1, the
                         default) or `binary` (HDLOG v2 frames, ~2x
                         smaller and faster to ingest); readers autodetect

live flags (live / profile --live-window):
  --window <bytes>       rolling snapshot window in allocation-clock bytes;
                         `unbounded` (the default) accumulates forever, and
                         then the final report is byte-identical to `report`
                         over a log of the same run
  --advance <bytes>      rolling-window bucket advance (default: window/8)
  --cold-after <bytes>   idle allocation-clock bytes before a resident
                         object counts as cold (default 262144)
  --every <bytes>        snapshot every N bytes of allocation (default
                         524288)
  --ring <events>        in-process event ring capacity, rounded up to a
                         power of two (default 262144); on overflow events
                         are dropped and counted, the VM never blocks
  --snapshot-out <path>  write snapshots to <path> instead of stdout
                         (the final report always goes to stdout)

log ingestion flags (report / analyze / inspect):
  --strict               abort at the first malformed log line (default)
  --salvage              drop corrupt lines, repair a missing end marker,
                         and append a salvage summary to the report
  --max-errors <N>       with --salvage: fail with E008 when more than N
                         errors accumulate

optimize-fleet flags:
  --workloads <a,b,...>  comma-separated benchmark names (default: all nine)
  --input <which>        profile the `default` (Table 2) input, the
                         `alternate` (Table 3) one, or `both` as separate jobs
  --rounds <N>           max profile -> rewrite -> re-profile rounds per job
  --pool <N>             fleet worker threads (one job per workload x input)
  --json <path>          also write the scoreboard as stable JSON
  --out-dir <dir>        write each verified optimized program as
                         <workload>-<input>.hdasm (rejected rewrites never
                         reach disk)
  --shards/--chunk-records shard the per-job ranking pipeline; the
                         scoreboard is byte-identical at any setting

serve flags:
  --spool <dir>          submit every file in <dir> as a session, then (if
                         no --socket) drain and print the fleet report
  --socket <path>        accept SUBMIT/SESSIONS/FLEET/CANCEL/PING/SHUTDOWN
                         on a unix socket until SHUTDOWN arrives
  --pool <N>             decode worker threads shared by all sessions
  --drivers <N>          maximum concurrently *running* sessions
  --budget-chunks <N>    fleet-wide in-flight-chunk budget (admission
                         control); each session charges 2*max(shards,1)
  --shards/--chunk-records/--salvage/--max-errors set the default
  per-session pipeline; SUBMIT may override shards/chunk/mode per session

<prog> is either bytecode assembly (.hdasm) or mini-Java source (.hdj).";

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    interval_kb: Option<u64>,
    top: usize,
    parallel: ParallelConfig,
    ingest: IngestConfig,
    strict_flag: bool,
    log_format: LogFormat,
    metrics_out: Option<String>,
    verbose_metrics: bool,
    spool: Option<String>,
    socket: Option<String>,
    name: Option<String>,
    pool: Option<usize>,
    drivers: Option<usize>,
    budget_chunks: Option<u64>,
    interpreter: InterpreterKind,
    workloads: Vec<String>,
    rounds: Option<usize>,
    input_sel: Option<String>,
    json_out: Option<String>,
    out_dir: Option<String>,
    /// `--window`: `Some(None)` = explicit `unbounded`, `Some(Some(n))` =
    /// rolling over the last `n` bytes.
    window: Option<Option<u64>>,
    /// `--live-window` (the `profile` variant), same encoding.
    live_window: Option<Option<u64>>,
    retain_sample: Option<f64>,
    advance: Option<u64>,
    cold_after: Option<u64>,
    every: Option<u64>,
    ring: Option<usize>,
    snapshot_out: Option<String>,
}

/// Parses a numeric flag value that must be a positive integer. Zero and
/// garbage get the same stable one-line error.
fn parse_positive<T>(flag: &str, v: &str) -> Result<T, String>
where
    T: std::str::FromStr + Default + PartialEq,
{
    match v.parse::<T>() {
        Ok(n) if n != T::default() => Ok(n),
        _ => Err(format!("bad {flag}: expected a positive integer, got `{v}`")),
    }
}

/// Parses a window spec: `unbounded` (`None`) or a positive byte count.
fn parse_window_spec(flag: &str, v: &str) -> Result<Option<u64>, String> {
    if v == "unbounded" {
        Ok(None)
    } else {
        parse_positive(flag, v).map(Some)
    }
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        interval_kb: None,
        top: 10,
        parallel: ParallelConfig::sequential(),
        ingest: IngestConfig::strict(),
        strict_flag: false,
        log_format: LogFormat::default(),
        metrics_out: None,
        verbose_metrics: false,
        spool: None,
        socket: None,
        name: None,
        pool: None,
        drivers: None,
        budget_chunks: None,
        interpreter: InterpreterKind::default(),
        workloads: Vec::new(),
        rounds: None,
        input_sel: None,
        json_out: None,
        out_dir: None,
        window: None,
        live_window: None,
        retain_sample: None,
        advance: None,
        cold_after: None,
        every: None,
        ring: None,
        snapshot_out: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                args.output = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--interval-kb" => {
                let v = it.next().ok_or("--interval-kb needs a number")?;
                args.interval_kb = Some(parse_positive("--interval-kb", v)?);
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a number")?;
                args.top = parse_positive("--top", v)?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a number")?;
                args.parallel.shards = parse_positive("--shards", v)?;
            }
            "--chunk-records" => {
                let v = it.next().ok_or("--chunk-records needs a number")?;
                args.parallel.chunk_records = parse_positive("--chunk-records", v)?;
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            "--verbose-metrics" => {
                args.verbose_metrics = true;
            }
            "--salvage" => {
                args.ingest.mode = IngestMode::Salvage;
            }
            "--strict" => {
                args.strict_flag = true;
            }
            "--log-format" => {
                let v = it.next().ok_or("--log-format needs text|binary")?;
                args.log_format = v.parse()?;
            }
            "--max-errors" => {
                let v = it.next().ok_or("--max-errors needs a number")?;
                args.ingest.max_errors = Some(v.parse().map_err(|_| "bad --max-errors")?);
            }
            "--spool" => {
                args.spool = Some(it.next().ok_or("--spool needs a directory")?.clone());
            }
            "--socket" => {
                args.socket = Some(it.next().ok_or("--socket needs a path")?.clone());
            }
            "--name" => {
                args.name = Some(it.next().ok_or("--name needs a name")?.clone());
            }
            "--pool" => {
                let v = it.next().ok_or("--pool needs a number")?;
                args.pool = Some(parse_positive("--pool", v)?);
            }
            "--drivers" => {
                let v = it.next().ok_or("--drivers needs a number")?;
                args.drivers = Some(parse_positive("--drivers", v)?);
            }
            "--budget-chunks" => {
                let v = it.next().ok_or("--budget-chunks needs a number")?;
                args.budget_chunks = Some(parse_positive("--budget-chunks", v)?);
            }
            "--workloads" => {
                let v = it.next().ok_or("--workloads needs a comma-separated list")?;
                args.workloads = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a number")?;
                args.rounds = Some(parse_positive("--rounds", v)?);
            }
            "--window" => {
                let v = it.next().ok_or("--window needs <bytes>|unbounded")?;
                args.window = Some(parse_window_spec("--window", v)?);
            }
            "--live-window" => {
                let v = it.next().ok_or("--live-window needs <bytes>|unbounded")?;
                args.live_window = Some(parse_window_spec("--live-window", v)?);
            }
            "--retain-sample" => {
                let v = it.next().ok_or("--retain-sample needs a rate in [0,1]")?;
                let rate: f64 = v.parse().map_err(|_| {
                    format!("bad --retain-sample: expected a rate in [0,1], got `{v}`")
                })?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!(
                        "bad --retain-sample: expected a rate in [0,1], got `{v}`"
                    ));
                }
                args.retain_sample = Some(rate);
            }
            "--advance" => {
                let v = it.next().ok_or("--advance needs a number")?;
                args.advance = Some(parse_positive("--advance", v)?);
            }
            "--cold-after" => {
                let v = it.next().ok_or("--cold-after needs a number")?;
                args.cold_after = Some(parse_positive("--cold-after", v)?);
            }
            "--every" => {
                let v = it.next().ok_or("--every needs a number")?;
                args.every = Some(parse_positive("--every", v)?);
            }
            "--ring" => {
                let v = it.next().ok_or("--ring needs a number")?;
                args.ring = Some(parse_positive("--ring", v)?);
            }
            "--snapshot-out" => {
                args.snapshot_out = Some(it.next().ok_or("--snapshot-out needs a path")?.clone());
            }
            "--input" => {
                args.input_sel =
                    Some(it.next().ok_or("--input needs default|alternate|both")?.clone());
            }
            "--json" => {
                args.json_out = Some(it.next().ok_or("--json needs a path")?.clone());
            }
            "--out-dir" => {
                args.out_dir = Some(it.next().ok_or("--out-dir needs a directory")?.clone());
            }
            "--interpreter" => {
                let v = it.next().ok_or("--interpreter needs fast|reference")?;
                args.interpreter = match v.as_str() {
                    "fast" => InterpreterKind::Fast,
                    "reference" => InterpreterKind::Reference,
                    _ => return Err(format!("bad --interpreter `{v}` (fast|reference)")),
                };
            }
            other => args.positional.push(other.to_string()),
        }
    }
    if args.strict_flag && args.ingest.is_salvage() {
        return Err("--strict and --salvage are mutually exclusive".into());
    }
    if args.ingest.max_errors.is_some() && !args.ingest.is_salvage() {
        return Err("--max-errors requires --salvage".into());
    }
    let rolling =
        matches!(args.window, Some(Some(_))) || matches!(args.live_window, Some(Some(_)));
    if args.advance.is_some() && !rolling {
        return Err("--advance requires a rolling --window <bytes>".into());
    }
    Ok(args)
}

/// Builds the [`Pipeline`] the log-reading commands share from the parsed
/// command-line flags.
fn pipeline_for(parallel: &ParallelConfig, ingest: &IngestConfig) -> Pipeline {
    let mut pipe = Pipeline::options()
        .shards(parallel.shards)
        .chunk_records(parallel.chunk_records);
    if ingest.is_salvage() {
        pipe = pipe.salvage(ingest.max_errors);
    }
    pipe
}

/// Builds the [`ServeConfig`] for `serve` and offline `fleet-report`:
/// host-sized defaults with the command-line pool/driver/budget overrides
/// and the flag-built default pipeline. The manager publishes into
/// `registry` when `--metrics-out` attached one.
fn serve_config_for(args: &Args, registry: Option<&Registry>) -> ServeConfig {
    let mut config = ServeConfig {
        pipeline: pipeline_for(&args.parallel, &args.ingest),
        ..ServeConfig::default()
    };
    if let Some(r) = registry {
        config.registry = r.clone();
    }
    if let Some(n) = args.pool {
        config.pool_workers = n;
    }
    if let Some(n) = args.drivers {
        config.drivers = n;
    }
    if let Some(n) = args.budget_chunks {
        config.budget_chunks = n;
    }
    config
}

/// One stderr line per session: id, state, cost, record count, queued and
/// running durations, name, and the error (if any) — the same shape the
/// socket `SESSIONS` reply uses. A large `queued_ms` against a small
/// `run_ms` means admission (budget or drivers), not the trace, was the
/// bottleneck.
fn session_line(s: &SessionSummary) -> String {
    format!(
        "{}\t{}\tcost={}\trecords={}\tqueued_ms={}\trun_ms={}\t{}{}",
        s.id,
        s.state,
        s.cost,
        s.records,
        s.queued_for.as_millis(),
        s.running_for.as_millis(),
        s.name,
        s.error
            .as_deref()
            .map(|e| format!("\t({e})"))
            .unwrap_or_default()
    )
}

/// Drains `manager`, prints per-session summaries to stderr and the fleet
/// report to stdout, then shuts the manager down. Errors if any session
/// failed, so scripted spool runs exit nonzero on bad traces.
fn drain_and_report(mut manager: ServeManager, top: usize) -> Result<(), String> {
    manager.wait_idle();
    let mut failed = 0usize;
    for s in manager.sessions() {
        if s.state == SessionState::Failed || s.state == SessionState::Rejected {
            failed += 1;
        }
        eprintln!("{}", session_line(&s));
    }
    print!("{}", manager.fleet_report(top));
    manager.shutdown();
    if failed > 0 {
        return Err(format!("{failed} session(s) failed or were rejected"));
    }
    Ok(())
}

/// The session name for a submitted log path: its file name, or `stdin`.
fn session_name(log_path: &str) -> String {
    if log_path == "-" {
        return "stdin".to_string();
    }
    Path::new(log_path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| log_path.to_string())
}

/// Opens the trace source for the log-reading commands: a file path, or
/// stdin when the path is `-`. The streaming pipeline does its own
/// block-sized reads, so no buffering layer is needed here.
fn open_trace(path: &str) -> Result<Box<dyn std::io::Read>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Box::new(file))
    }
}

/// Publishes the log-I/O metrics every log-reading command emits: total
/// bytes by detected format, decode wall-clock, and the streaming
/// `heapdrag_ingest_*` family (buffer high-water mark, backpressure
/// stalls).
fn publish_log_io(
    registry: &Registry,
    salvage: &SalvageSummary,
    stats: &heapdrag::core::StreamStats,
    decode_elapsed: std::time::Duration,
) {
    registry
        .counter(&format!(
            "heapdrag_log_bytes_total{{format=\"{}\"}}",
            salvage.format
        ))
        .add(stats.bytes_read);
    registry
        .histogram("heapdrag_log_decode_us")
        .observe_duration(decode_elapsed);
    stats.publish_metrics(registry);
}

/// Streams and analyzes a trace in bounded memory under the configured
/// sharding and ingest mode — the `report`/`analyze` path. The trace
/// format (text `heapdrag-log v1` or HDLOG v2 binary) is autodetected
/// from the stream's first bytes; `-` reads from stdin. Records fold
/// into per-site aggregates as chunks decode, so no record vector is
/// ever materialised. Stage instrumentation goes into `registry` (when
/// one is attached via `--metrics-out`) and is printed to stderr only
/// under `--verbose-metrics`. In salvage mode the report's
/// [`SalvageSummary`] says what was dropped or repaired and the
/// `heapdrag_salvage_*` family is published.
fn analyze_log_stream(
    path: &str,
    parallel: &ParallelConfig,
    ingest: &IngestConfig,
    registry: Option<&Registry>,
    verbose: bool,
) -> Result<StreamReport, String> {
    let reader = open_trace(path)?;
    let decode_start = std::time::Instant::now();
    let streamed = pipeline_for(parallel, ingest)
        .analyze_reader(reader)
        .map_err(|e| e.to_string())?;
    let decode_elapsed = decode_start.elapsed();
    if verbose {
        eprint!("{}", streamed.parse_metrics.render("parse"));
        eprint!("{}", streamed.analyze_metrics.render("analyze"));
    }
    if let Some(registry) = registry {
        publish_log_io(registry, &streamed.salvage, &streamed.stats, decode_elapsed);
        streamed.parse_metrics.publish("parse", registry);
        streamed.analyze_metrics.publish("analyze", registry);
        streamed.publish_metrics(registry);
        streamed.report.publish_metrics(registry);
        if streamed.salvage.salvage {
            streamed.salvage.publish_metrics(registry);
        }
    }
    Ok(streamed)
}

/// Like [`analyze_log_stream`] but materialises the record vector —
/// `inspect` needs the raw records to build per-site lifetime
/// histograms. The trace still streams in through the bounded-memory
/// reader; only the kept records are retained.
fn ingest_log_stream(
    path: &str,
    parallel: &ParallelConfig,
    ingest: &IngestConfig,
    registry: Option<&Registry>,
    verbose: bool,
) -> Result<
    (
        heapdrag::core::log::ParsedLog,
        heapdrag::core::DragReport,
        SalvageSummary,
    ),
    String,
> {
    let reader = open_trace(path)?;
    let pipe = pipeline_for(parallel, ingest);
    let decode_start = std::time::Instant::now();
    let (ingested, stats) = pipe.ingest_reader(reader).map_err(|e| e.to_string())?;
    let decode_elapsed = decode_start.elapsed();
    let (parsed, parse_metrics, salvage) = (ingested.log, ingested.metrics, ingested.salvage);
    let (report, analyze_metrics) =
        pipe.analyze_records(&parsed.records, |c| Some(SiteId(c.0)));
    if verbose {
        eprint!("{}", parse_metrics.render("parse"));
        eprint!("{}", analyze_metrics.render("analyze"));
    }
    if let Some(registry) = registry {
        publish_log_io(registry, &salvage, &stats, decode_elapsed);
        parse_metrics.publish("parse", registry);
        analyze_metrics.publish("analyze", registry);
        parsed.publish_metrics(registry);
        report.publish_metrics(registry);
        if salvage.salvage {
            salvage.publish_metrics(registry);
        }
    }
    Ok((parsed, report, salvage))
}

/// Builds the [`LiveOptions`] for `live` / `profile --live-window` from
/// the flags; `window` is the already-selected spec (`None` = unbounded).
fn live_options_for(args: &Args, window: Option<u64>) -> LiveOptions {
    let mut options = LiveOptions {
        top: args.top,
        ..LiveOptions::default()
    };
    if let Some(w) = window {
        let advance = args.advance.unwrap_or_else(|| (w / 8).max(1));
        options.window = WindowSpec::Rolling { window: w, advance };
    }
    if let Some(n) = args.cold_after {
        options.cold_after = n;
    }
    if let Some(n) = args.every {
        options.every = n;
    }
    if let Some(n) = args.ring {
        options.ring_capacity = n;
    }
    options
}

/// Where live snapshots go: `--snapshot-out <path>`, or stdout.
fn snapshot_sink(args: &Args) -> Result<Box<dyn std::io::Write + Send>, String> {
    Ok(match &args.snapshot_out {
        Some(p) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(p).map_err(|e| format!("{p}: {e}"))?,
        )),
        None => Box::new(std::io::stdout()),
    })
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = if path.ends_with(".hdj") {
        heapdrag::lang::compile_source(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        assemble(&text).map_err(|e| format!("{path}: {e}"))?
    };
    heapdrag::vm::verify::verify_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn input_ints(args: &[String]) -> Result<Vec<i64>, String> {
    args.iter()
        .map(|a| a.parse().map_err(|_| format!("bad input int `{a}`")))
        .collect()
}

fn run_main() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let command = raw.first().cloned().ok_or(USAGE)?;
    let args = parse_args(&raw[1..])?;
    let registry = args.metrics_out.as_ref().map(|_| Registry::new());
    let config = {
        let mut c = VmConfig::profiling();
        if let Some(kb) = args.interval_kb {
            c.deep_gc_interval = Some(kb * 1024);
        }
        c.interpreter = args.interpreter;
        // `from_rate` returns `None` at rate 0: the sampler is absent and
        // logs/reports are byte-identical to a run without the flag.
        if let Some(rate) = args.retain_sample {
            c.retain = RetainConfig::from_rate(rate);
        }
        c
    };
    let plain_config = RawConfig {
        interpreter: args.interpreter,
        ..RawConfig::default()
    };

    match command.as_str() {
        "run" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let mut vm = Vm::new(&program, plain_config.clone());
            if let Some(r) = &registry {
                vm.attach_metrics(r);
            }
            let outcome = vm.run(&input).map_err(|e| e.to_string())?;
            for v in &outcome.output {
                println!("{v}");
            }
            eprintln!(
                "[{} steps, {} bytes allocated, {} objects]",
                outcome.steps, outcome.heap.allocated_bytes, outcome.heap.allocated_objects
            );
        }
        "profile" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("profile needs -o <log>")?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let run = if let Some(window) = args.live_window {
                // One-shot live mode: snapshots while the VM runs, then
                // the same log bytes the file-logging profiler writes
                // (whenever no events were dropped).
                let mut options = live_options_for(&args, window);
                options.keep_records = true;
                let mut sink = snapshot_sink(&args)?;
                let live = run_live(
                    &program,
                    &input,
                    config,
                    &options,
                    registry.as_ref(),
                    |s: &str| {
                        let _ = sink.write_all(s.as_bytes());
                        let _ = sink.write_all(b"\n");
                    },
                )
                .map_err(|e| e.to_string())?;
                sink.flush().map_err(|e| e.to_string())?;
                eprintln!(
                    "live: {} snapshot(s), {} dropped event(s), {} unmatched",
                    live.snapshots, live.dropped, live.unmatched
                );
                let (records, samples) = live.collected.expect("keep_records was set");
                ProfileRun {
                    records,
                    samples,
                    retains: live.retains,
                    sites: live.sites,
                    outcome: live.outcome,
                }
            } else {
                profile_with(&program, &input, config, registry.as_ref())
                    .map_err(|e| e.to_string())?
            };
            let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
            let mut writer = std::io::BufWriter::new(file);
            let encode_start = std::time::Instant::now();
            let log_bytes = run
                .write_log_to(&program, args.log_format, &mut writer)
                .and_then(|n| {
                    writer.flush()?;
                    Ok(n)
                })
                .map_err(|e| format!("{out}: {e}"))?;
            if let Some(r) = &registry {
                r.counter(&format!(
                    "heapdrag_log_bytes_total{{format=\"{}\"}}",
                    args.log_format
                ))
                .add(log_bytes);
                r.histogram("heapdrag_log_encode_us")
                    .observe_duration(encode_start.elapsed());
            }
            eprintln!(
                "profiled: {} objects, {} deep GCs, end time {} bytes -> {out} ({} log, {log_bytes} bytes)",
                run.records.len(),
                run.outcome.deep_gcs,
                run.outcome.end_time,
                args.log_format
            );
        }
        "live" => {
            let target = args.positional.first().ok_or(USAGE)?;
            // A workload name runs that benchmark on its default input
            // (unless ints are given); anything else is a program path.
            let (program, input) = match workload_by_name(target) {
                Some(w) => {
                    let input = if args.positional.len() > 1 {
                        input_ints(&args.positional[1..])?
                    } else {
                        (w.default_input)()
                    };
                    (w.original(), input)
                }
                None => (load_program(target)?, input_ints(&args.positional[1..])?),
            };
            let options = live_options_for(&args, args.window.flatten());
            let mut sink = snapshot_sink(&args)?;
            let live = run_live(
                &program,
                &input,
                config,
                &options,
                registry.as_ref(),
                |s: &str| {
                    let _ = sink.write_all(s.as_bytes());
                    let _ = sink.write_all(b"\n");
                },
            )
            .map_err(|e| e.to_string())?;
            sink.flush().map_err(|e| e.to_string())?;
            print!(
                "{}",
                ReportSections::standard(&live.report, &live)
                    .top(args.top)
                    .coldness(&live.coldness)
                    .render()
            );
            eprintln!(
                "live: {} records ({} at exit), {} deep GCs, {} snapshot(s), {} dropped, {} unmatched, end time {} bytes",
                live.records,
                live.at_exit,
                live.samples,
                live.snapshots,
                live.dropped,
                live.unmatched,
                live.end_time
            );
        }
        "compile" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("compile needs -o <file>")?;
            let program = load_program(prog_path)?;
            std::fs::write(out, disassemble(&program)).map_err(|e| e.to_string())?;
            eprintln!(
                "compiled {prog_path} -> {out} ({} classes, {} methods, {} instructions)",
                program.classes.len(),
                program.methods.len(),
                program.code_size()
            );
        }
        "report" | "analyze" => {
            let log_path = args.positional.first().ok_or(USAGE)?;
            let streamed = analyze_log_stream(
                log_path,
                &args.parallel,
                &args.ingest,
                registry.as_ref(),
                args.verbose_metrics,
            )?;
            let mut sections =
                ReportSections::standard(&streamed.report, &streamed).top(args.top);
            if streamed.salvage.salvage {
                sections = sections.salvage_footer(&streamed.salvage);
            }
            print!("{}", sections.render());
        }
        "inspect" => {
            let log_path = args.positional.first().ok_or(USAGE)?;
            let rank: usize = args
                .positional
                .get(1)
                .ok_or("inspect needs a site rank (1 = highest drag)")?
                .parse()
                .map_err(|_| "bad rank")?;
            let (parsed, report, _salvage) = ingest_log_stream(
                log_path,
                &args.parallel,
                &args.ingest,
                registry.as_ref(),
                args.verbose_metrics,
            )?;
            let entry = report
                .by_nested_site
                .get(rank.saturating_sub(1))
                .ok_or_else(|| format!("only {} sites", report.by_nested_site.len()))?;
            use heapdrag::core::ChainNamer;
            println!("site #{rank}: {}", parsed.chain_name(entry.site));
            println!(
                "pattern: {}   suggested rewriting: {}\n",
                entry.stats.pattern,
                entry.stats.suggested_transform()
            );
            let histogram =
                heapdrag::core::LifetimeHistogram::for_site(&parsed.records, entry.site, 1024);
            print!("{}", histogram.render());
        }
        "timeline" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let run =
                profile_with(&program, &input, config, registry.as_ref()).map_err(|e| e.to_string())?;
            let timeline = Timeline::from_run(&run);
            print!("{}", timeline.ascii_chart(12));
        }
        "optimize" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("optimize needs -o <file>")?;
            let mut program = load_program(prog_path)?;
            let original = program.clone();
            let input = input_ints(&args.positional[1..])?;
            let outcome = optimize_iteratively(
                &mut program,
                &input,
                config,
                OptimizerOptions::default(),
                3,
            )
            .map_err(|e| e.to_string())?;
            for a in &outcome.applied {
                eprintln!("applied [{}] {}", a.kind, a.detail);
            }
            // Behavioural check before writing anything.
            let before = Vm::new(&original, plain_config.clone())
                .run(&input)
                .map_err(|e| e.to_string())?;
            let after = Vm::new(&program, plain_config.clone())
                .run(&input)
                .map_err(|e| e.to_string())?;
            if before.output != after.output {
                return Err("optimizer changed program output; refusing to write".into());
            }
            std::fs::write(out, disassemble(&program)).map_err(|e| e.to_string())?;
            eprintln!(
                "optimized program written to {out} ({} rewrites; allocation {} -> {} bytes)",
                outcome.applied.len(),
                before.heap.allocated_bytes,
                after.heap.allocated_bytes
            );
        }
        "optimize-fleet" => {
            let mut options = FleetOptions {
                workloads: args.workloads.clone(),
                shards: args.parallel.shards,
                chunk_records: args.parallel.chunk_records,
                interpreter: args.interpreter,
                ..FleetOptions::default()
            };
            if let Some(sel) = &args.input_sel {
                options.inputs = InputSelection::parse(sel)
                    .ok_or_else(|| format!("bad --input `{sel}` (default|alternate|both)"))?;
            }
            if let Some(n) = args.rounds {
                options.rounds = n;
            }
            if let Some(n) = args.pool {
                options.pool_workers = n;
            }
            if let Some(rate) = args.retain_sample {
                options.retain = RetainConfig::from_rate(rate);
            }
            let scoreboard = optimize_fleet(&options, registry.as_ref())?;
            // Per-job progress lines to stderr, in deterministic fleet
            // order (the jobs themselves ran concurrently on the pool).
            for j in &scoreboard.jobs {
                eprintln!(
                    "{}/{}: {} round(s), {} applied, {} rejected, drag reduced {:.2}%{}",
                    j.workload,
                    j.input,
                    j.rounds_run,
                    j.applied.len(),
                    j.outcome_count(heapdrag::transform::RewriteOutcome::RejectedByAnalysis)
                        + j.outcome_count(heapdrag::transform::RewriteOutcome::RejectedByVerify),
                    j.reduction_pct(),
                    j.error
                        .as_deref()
                        .map(|e| format!(" [FAILED: {e}]"))
                        .unwrap_or_default(),
                );
            }
            print!("{}", scoreboard.render_text());
            if let Some(path) = &args.json_out {
                std::fs::write(path, scoreboard.render_json())
                    .map_err(|e| format!("{path}: {e}"))?;
                eprintln!("scoreboard json -> {path}");
            }
            if let Some(dir) = &args.out_dir {
                let written = scoreboard
                    .write_revised(Path::new(dir))
                    .map_err(|e| format!("{dir}: {e}"))?;
                eprintln!("{} optimized program(s) -> {dir}", written.len());
            }
            let failed = scoreboard.jobs.iter().filter(|j| j.error.is_some()).count();
            if failed > 0 {
                return Err(format!("{failed} fleet job(s) failed"));
            }
        }
        "serve" => {
            if args.spool.is_none() && args.socket.is_none() {
                return Err("serve needs --spool <dir> and/or --socket <path>".into());
            }
            let manager = ServeManager::new(serve_config_for(&args, registry.as_ref()));
            if let Some(dir) = &args.spool {
                let ids = submit_spool(&manager, Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?;
                eprintln!("spooled {} session(s) from {dir}", ids.len());
            }
            if let Some(path) = &args.socket {
                #[cfg(unix)]
                {
                    let _ = std::fs::remove_file(path);
                    let listener = std::os::unix::net::UnixListener::bind(path)
                        .map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("serving on {path} (SUBMIT/SESSIONS/FLEET/CANCEL/PING/SHUTDOWN)");
                    let served = heapdrag::core::serve::serve_socket(&manager, &listener);
                    let _ = std::fs::remove_file(path);
                    served.map_err(|e| e.to_string())?;
                }
                #[cfg(not(unix))]
                return Err(format!("--socket {path} needs a unix platform"));
            }
            drain_and_report(manager, args.top)?;
        }
        #[cfg(unix)]
        "submit" => {
            let socket = args.positional.first().ok_or("submit needs <socket> <log|->")?;
            let log_path = args.positional.get(1).ok_or("submit needs <socket> <log|->")?;
            let name = args.name.clone().unwrap_or_else(|| session_name(log_path));
            let mut overrides = Vec::new();
            if args.parallel.shards != ParallelConfig::sequential().shards {
                overrides.push(format!("shards={}", args.parallel.shards));
            }
            if args.parallel.chunk_records != ParallelConfig::sequential().chunk_records {
                overrides.push(format!("chunk={}", args.parallel.chunk_records));
            }
            if args.ingest.is_salvage() {
                overrides.push("mode=salvage".to_string());
            }
            let mut trace = open_trace(log_path)?;
            let reply = heapdrag::core::serve::client_submit(
                Path::new(socket),
                &name,
                &overrides.join(" "),
                trace.as_mut(),
            )
            .map_err(|e| format!("{socket}: {e}"))?;
            print!("{reply}");
            if reply.starts_with("error:") {
                return Err(format!("session `{name}` was not completed"));
            }
        }
        #[cfg(unix)]
        "sessions" => {
            let socket = args.positional.first().ok_or("sessions needs <socket>")?;
            let reply = heapdrag::core::serve::client_command(Path::new(socket), "SESSIONS")
                .map_err(|e| format!("{socket}: {e}"))?;
            print!("{reply}");
        }
        "fleet-report" => {
            if let Some(socket) = &args.socket {
                #[cfg(unix)]
                {
                    let reply = heapdrag::core::serve::client_command(
                        Path::new(socket),
                        &format!("FLEET {}", args.top),
                    )
                    .map_err(|e| format!("{socket}: {e}"))?;
                    print!("{reply}");
                }
                #[cfg(not(unix))]
                return Err(format!("--socket {socket} needs a unix platform"));
            } else {
                if args.positional.is_empty() {
                    return Err("fleet-report needs <log>... or --socket <path>".into());
                }
                let manager = ServeManager::new(serve_config_for(&args, registry.as_ref()));
                for p in &args.positional {
                    manager.submit(SessionSpec::new(
                        session_name(p),
                        SessionSource::Path(p.into()),
                    ));
                }
                drain_and_report(manager, args.top)?;
            }
        }
        "report-sites" | "help" | "--help" | "-h" => {
            println!("{USAGE}");
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }

    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics snapshot -> {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("heapdrag: {e}");
            ExitCode::FAILURE
        }
    }
}
