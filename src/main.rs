//! The `heapdrag` command-line tool: the paper's two-phase profiler plus
//! the automated optimizer, over textual bytecode programs.
//!
//! ```text
//! heapdrag run      <prog.hdasm> [input ints…]
//! heapdrag profile  <prog.hdasm> -o <out.log> [--log-format text|binary] [--interval-kb N] [input ints…]
//! heapdrag report   <log file | -> [--top N] [--shards N] [--chunk-records N]
//! heapdrag timeline <prog.hdasm> [input ints…]
//! heapdrag optimize <prog.hdasm> -o <out.hdasm> [input ints…]
//! ```
//!
//! `profile --log-format binary` writes the compact HDLOG v2 frame format
//! instead of the default text log; either way the trace streams straight
//! to the output file. Log-reading commands autodetect the format from the
//! file's first bytes, so no flag is needed on the read side. The report
//! is byte-identical whichever format carried the trace.
//!
//! `report` (alias: `analyze`) streams the trace through
//! [`Pipeline::analyze_reader`] in bounded memory — records fold straight
//! into per-site aggregates as chunks decode, so traces larger than RAM
//! work. Pass `-` as the log path to read the trace from stdin:
//! `heapdrag profile p.hdasm -o /dev/stdout | heapdrag report -`.
//!
//! `--shards N` runs the off-line phase (log decoding and per-site
//! aggregation) on N worker threads; the report is byte-identical to the
//! sequential one. `--verbose-metrics` prints per-shard timings to stderr,
//! and `--metrics-out <path>` writes a metrics snapshot of whichever phase
//! ran — stable JSON by default, Prometheus text if the path ends in
//! `.prom`. Log I/O publishes `heapdrag_log_bytes_total{format="..."}`
//! plus `heapdrag_log_encode_us`/`heapdrag_log_decode_us` codec timings.
//!
//! Log-reading commands default to strict parsing (`--strict`): the first
//! malformed line aborts with a stable `E0xx` error code. `--salvage`
//! ingests damaged logs instead — corrupt lines/frames are dropped, a
//! missing end-of-log marker is repaired — and appends a salvage summary
//! footer (which names the detected input format) to the report;
//! `--max-errors N` bounds how much corruption salvage will tolerate.

use std::process::ExitCode;

use heapdrag::core::log::{IngestConfig, IngestMode, SalvageSummary};
use heapdrag::core::{
    profile_with, render, LogFormat, ParallelConfig, Pipeline, StreamReport, Timeline, VmConfig,
};
use heapdrag::obs::Registry;
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag::vm::asm::assemble;
use heapdrag::vm::disasm::disassemble;
use heapdrag::vm::{Program, SiteId, Vm, VmConfig as RawConfig};

const USAGE: &str = "usage:
  heapdrag run      <prog> [input ints...]
  heapdrag compile  <prog.hdj> -o <out.hdasm>
  heapdrag profile  <prog> -o <out.log> [--log-format text|binary]
                    [--interval-kb N] [input ints...]
  heapdrag report   <log file | -> [--top N] [--shards N] [--chunk-records N]
                    (`analyze` is an alias; `-` streams the trace from stdin)
  heapdrag inspect  <log file | -> <rank> [--shards N]   (lifetime histograms of the rank-th site)
  heapdrag timeline <prog> [input ints...]
  heapdrag optimize <prog> -o <out.hdasm> [input ints...]

common flags:
  --metrics-out <path>   write a metrics snapshot on exit (JSON; Prometheus
                         text format if <path> ends in .prom)
  --verbose-metrics      print per-shard parse/analyze timings to stderr

profile flags:
  --log-format <fmt>     trace encoding: `text` (heapdrag-log v1, the
                         default) or `binary` (HDLOG v2 frames, ~2x
                         smaller and faster to ingest); readers autodetect

log ingestion flags (report / analyze / inspect):
  --strict               abort at the first malformed log line (default)
  --salvage              drop corrupt lines, repair a missing end marker,
                         and append a salvage summary to the report
  --max-errors <N>       with --salvage: fail with E008 when more than N
                         errors accumulate

<prog> is either bytecode assembly (.hdasm) or mini-Java source (.hdj).";

struct Args {
    positional: Vec<String>,
    output: Option<String>,
    interval_kb: Option<u64>,
    top: usize,
    parallel: ParallelConfig,
    ingest: IngestConfig,
    strict_flag: bool,
    log_format: LogFormat,
    metrics_out: Option<String>,
    verbose_metrics: bool,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        output: None,
        interval_kb: None,
        top: 10,
        parallel: ParallelConfig::sequential(),
        ingest: IngestConfig::strict(),
        strict_flag: false,
        log_format: LogFormat::default(),
        metrics_out: None,
        verbose_metrics: false,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                args.output = Some(it.next().ok_or("-o needs a path")?.clone());
            }
            "--interval-kb" => {
                let v = it.next().ok_or("--interval-kb needs a number")?;
                args.interval_kb = Some(v.parse().map_err(|_| "bad --interval-kb")?);
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a number")?;
                args.top = v.parse().map_err(|_| "bad --top")?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a number")?;
                args.parallel.shards = v.parse().map_err(|_| "bad --shards")?;
            }
            "--chunk-records" => {
                let v = it.next().ok_or("--chunk-records needs a number")?;
                args.parallel.chunk_records = v.parse().map_err(|_| "bad --chunk-records")?;
            }
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?.clone());
            }
            "--verbose-metrics" => {
                args.verbose_metrics = true;
            }
            "--salvage" => {
                args.ingest.mode = IngestMode::Salvage;
            }
            "--strict" => {
                args.strict_flag = true;
            }
            "--log-format" => {
                let v = it.next().ok_or("--log-format needs text|binary")?;
                args.log_format = v.parse()?;
            }
            "--max-errors" => {
                let v = it.next().ok_or("--max-errors needs a number")?;
                args.ingest.max_errors = Some(v.parse().map_err(|_| "bad --max-errors")?);
            }
            other => args.positional.push(other.to_string()),
        }
    }
    if args.strict_flag && args.ingest.is_salvage() {
        return Err("--strict and --salvage are mutually exclusive".into());
    }
    if args.ingest.max_errors.is_some() && !args.ingest.is_salvage() {
        return Err("--max-errors requires --salvage".into());
    }
    Ok(args)
}

/// Builds the [`Pipeline`] the log-reading commands share from the parsed
/// command-line flags.
fn pipeline_for(parallel: &ParallelConfig, ingest: &IngestConfig) -> Pipeline {
    let mut pipe = Pipeline::options()
        .shards(parallel.shards)
        .chunk_records(parallel.chunk_records);
    if ingest.is_salvage() {
        pipe = pipe.salvage(ingest.max_errors);
    }
    pipe
}

/// Opens the trace source for the log-reading commands: a file path, or
/// stdin when the path is `-`. The streaming pipeline does its own
/// block-sized reads, so no buffering layer is needed here.
fn open_trace(path: &str) -> Result<Box<dyn std::io::Read>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdin().lock()))
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Box::new(file))
    }
}

/// Publishes the log-I/O metrics every log-reading command emits: total
/// bytes by detected format, decode wall-clock, and the streaming
/// `heapdrag_ingest_*` family (buffer high-water mark, backpressure
/// stalls).
fn publish_log_io(
    registry: &Registry,
    salvage: &SalvageSummary,
    stats: &heapdrag::core::StreamStats,
    decode_elapsed: std::time::Duration,
) {
    registry
        .counter(&format!(
            "heapdrag_log_bytes_total{{format=\"{}\"}}",
            salvage.format
        ))
        .add(stats.bytes_read);
    registry
        .histogram("heapdrag_log_decode_us")
        .observe_duration(decode_elapsed);
    stats.publish_metrics(registry);
}

/// Streams and analyzes a trace in bounded memory under the configured
/// sharding and ingest mode — the `report`/`analyze` path. The trace
/// format (text `heapdrag-log v1` or HDLOG v2 binary) is autodetected
/// from the stream's first bytes; `-` reads from stdin. Records fold
/// into per-site aggregates as chunks decode, so no record vector is
/// ever materialised. Stage instrumentation goes into `registry` (when
/// one is attached via `--metrics-out`) and is printed to stderr only
/// under `--verbose-metrics`. In salvage mode the report's
/// [`SalvageSummary`] says what was dropped or repaired and the
/// `heapdrag_salvage_*` family is published.
fn analyze_log_stream(
    path: &str,
    parallel: &ParallelConfig,
    ingest: &IngestConfig,
    registry: Option<&Registry>,
    verbose: bool,
) -> Result<StreamReport, String> {
    let reader = open_trace(path)?;
    let decode_start = std::time::Instant::now();
    let streamed = pipeline_for(parallel, ingest)
        .analyze_reader(reader)
        .map_err(|e| e.to_string())?;
    let decode_elapsed = decode_start.elapsed();
    if verbose {
        eprint!("{}", streamed.parse_metrics.render("parse"));
        eprint!("{}", streamed.analyze_metrics.render("analyze"));
    }
    if let Some(registry) = registry {
        publish_log_io(registry, &streamed.salvage, &streamed.stats, decode_elapsed);
        streamed.parse_metrics.publish("parse", registry);
        streamed.analyze_metrics.publish("analyze", registry);
        streamed.publish_metrics(registry);
        streamed.report.publish_metrics(registry);
        if streamed.salvage.salvage {
            streamed.salvage.publish_metrics(registry);
        }
    }
    Ok(streamed)
}

/// Like [`analyze_log_stream`] but materialises the record vector —
/// `inspect` needs the raw records to build per-site lifetime
/// histograms. The trace still streams in through the bounded-memory
/// reader; only the kept records are retained.
fn ingest_log_stream(
    path: &str,
    parallel: &ParallelConfig,
    ingest: &IngestConfig,
    registry: Option<&Registry>,
    verbose: bool,
) -> Result<
    (
        heapdrag::core::log::ParsedLog,
        heapdrag::core::DragReport,
        SalvageSummary,
    ),
    String,
> {
    let reader = open_trace(path)?;
    let pipe = pipeline_for(parallel, ingest);
    let decode_start = std::time::Instant::now();
    let (ingested, stats) = pipe.ingest_reader(reader).map_err(|e| e.to_string())?;
    let decode_elapsed = decode_start.elapsed();
    let (parsed, parse_metrics, salvage) = (ingested.log, ingested.metrics, ingested.salvage);
    let (report, analyze_metrics) =
        pipe.analyze_records(&parsed.records, |c| Some(SiteId(c.0)));
    if verbose {
        eprint!("{}", parse_metrics.render("parse"));
        eprint!("{}", analyze_metrics.render("analyze"));
    }
    if let Some(registry) = registry {
        publish_log_io(registry, &salvage, &stats, decode_elapsed);
        parse_metrics.publish("parse", registry);
        analyze_metrics.publish("analyze", registry);
        parsed.publish_metrics(registry);
        report.publish_metrics(registry);
        if salvage.salvage {
            salvage.publish_metrics(registry);
        }
    }
    Ok((parsed, report, salvage))
}

fn load_program(path: &str) -> Result<Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = if path.ends_with(".hdj") {
        heapdrag::lang::compile_source(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        assemble(&text).map_err(|e| format!("{path}: {e}"))?
    };
    heapdrag::vm::verify::verify_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn input_ints(args: &[String]) -> Result<Vec<i64>, String> {
    args.iter()
        .map(|a| a.parse().map_err(|_| format!("bad input int `{a}`")))
        .collect()
}

fn run_main() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let command = raw.first().cloned().ok_or(USAGE)?;
    let args = parse_args(&raw[1..])?;
    let registry = args.metrics_out.as_ref().map(|_| Registry::new());
    let config = {
        let mut c = VmConfig::profiling();
        if let Some(kb) = args.interval_kb {
            c.deep_gc_interval = Some(kb * 1024);
        }
        c
    };

    match command.as_str() {
        "run" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let mut vm = Vm::new(&program, RawConfig::default());
            if let Some(r) = &registry {
                vm.attach_metrics(r);
            }
            let outcome = vm.run(&input).map_err(|e| e.to_string())?;
            for v in &outcome.output {
                println!("{v}");
            }
            eprintln!(
                "[{} steps, {} bytes allocated, {} objects]",
                outcome.steps, outcome.heap.allocated_bytes, outcome.heap.allocated_objects
            );
        }
        "profile" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("profile needs -o <log>")?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let run =
                profile_with(&program, &input, config, registry.as_ref()).map_err(|e| e.to_string())?;
            let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
            let mut writer = std::io::BufWriter::new(file);
            let encode_start = std::time::Instant::now();
            let log_bytes = run
                .write_log_to(&program, args.log_format, &mut writer)
                .and_then(|n| {
                    use std::io::Write;
                    writer.flush()?;
                    Ok(n)
                })
                .map_err(|e| format!("{out}: {e}"))?;
            if let Some(r) = &registry {
                r.counter(&format!(
                    "heapdrag_log_bytes_total{{format=\"{}\"}}",
                    args.log_format
                ))
                .add(log_bytes);
                r.histogram("heapdrag_log_encode_us")
                    .observe_duration(encode_start.elapsed());
            }
            eprintln!(
                "profiled: {} objects, {} deep GCs, end time {} bytes -> {out} ({} log, {log_bytes} bytes)",
                run.records.len(),
                run.outcome.deep_gcs,
                run.outcome.end_time,
                args.log_format
            );
        }
        "compile" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("compile needs -o <file>")?;
            let program = load_program(prog_path)?;
            std::fs::write(out, disassemble(&program)).map_err(|e| e.to_string())?;
            eprintln!(
                "compiled {prog_path} -> {out} ({} classes, {} methods, {} instructions)",
                program.classes.len(),
                program.methods.len(),
                program.code_size()
            );
        }
        "report" | "analyze" => {
            let log_path = args.positional.first().ok_or(USAGE)?;
            let streamed = analyze_log_stream(
                log_path,
                &args.parallel,
                &args.ingest,
                registry.as_ref(),
                args.verbose_metrics,
            )?;
            print!("{}", render(&streamed.report, &streamed, args.top));
            if streamed.salvage.salvage {
                print!("\n{}", streamed.salvage.render_footer());
            }
        }
        "inspect" => {
            let log_path = args.positional.first().ok_or(USAGE)?;
            let rank: usize = args
                .positional
                .get(1)
                .ok_or("inspect needs a site rank (1 = highest drag)")?
                .parse()
                .map_err(|_| "bad rank")?;
            let (parsed, report, _salvage) = ingest_log_stream(
                log_path,
                &args.parallel,
                &args.ingest,
                registry.as_ref(),
                args.verbose_metrics,
            )?;
            let entry = report
                .by_nested_site
                .get(rank.saturating_sub(1))
                .ok_or_else(|| format!("only {} sites", report.by_nested_site.len()))?;
            use heapdrag::core::ChainNamer;
            println!("site #{rank}: {}", parsed.chain_name(entry.site));
            println!(
                "pattern: {}   suggested rewriting: {}\n",
                entry.stats.pattern,
                entry.stats.suggested_transform()
            );
            let histogram =
                heapdrag::core::LifetimeHistogram::for_site(&parsed.records, entry.site, 1024);
            print!("{}", histogram.render());
        }
        "timeline" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let program = load_program(prog_path)?;
            let input = input_ints(&args.positional[1..])?;
            let run =
                profile_with(&program, &input, config, registry.as_ref()).map_err(|e| e.to_string())?;
            let timeline = Timeline::from_run(&run);
            print!("{}", timeline.ascii_chart(12));
        }
        "optimize" => {
            let prog_path = args.positional.first().ok_or(USAGE)?;
            let out = args.output.as_deref().ok_or("optimize needs -o <file>")?;
            let mut program = load_program(prog_path)?;
            let original = program.clone();
            let input = input_ints(&args.positional[1..])?;
            let outcome = optimize_iteratively(
                &mut program,
                &input,
                config,
                OptimizerOptions::default(),
                3,
            )
            .map_err(|e| e.to_string())?;
            for a in &outcome.applied {
                eprintln!("applied [{}] {}", a.kind, a.detail);
            }
            // Behavioural check before writing anything.
            let before = Vm::new(&original, RawConfig::default())
                .run(&input)
                .map_err(|e| e.to_string())?;
            let after = Vm::new(&program, RawConfig::default())
                .run(&input)
                .map_err(|e| e.to_string())?;
            if before.output != after.output {
                return Err("optimizer changed program output; refusing to write".into());
            }
            std::fs::write(out, disassemble(&program)).map_err(|e| e.to_string())?;
            eprintln!(
                "optimized program written to {out} ({} rewrites; allocation {} -> {} bytes)",
                outcome.applied.len(),
                before.heap.allocated_bytes,
                after.heap.allocated_bytes
            );
        }
        "report-sites" | "help" | "--help" | "-h" => {
            println!("{USAGE}");
        }
        other => return Err(format!("unknown command `{other}`\n{USAGE}")),
    }

    if let (Some(path), Some(registry)) = (&args.metrics_out, &registry) {
        let rendered = if path.ends_with(".prom") {
            registry.render_prometheus()
        } else {
            registry.render_json()
        };
        std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics snapshot -> {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("heapdrag: {e}");
            ExitCode::FAILURE
        }
    }
}
