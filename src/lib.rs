//! # heapdrag
//!
//! Drag-based heap profiling and space-saving program transformation — a
//! from-scratch reproduction of *Heap Profiling for Space-Efficient Java*
//! (Shaham, Kolodner & Sagiv, PLDI 2001).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`vm`] — the bytecode VM with a handle-indirected heap, byte-clock,
//!   mark-sweep (and generational) GC, and heap-event instrumentation;
//! * [`core`] — the drag profiler: on-line trailer recording, the log
//!   format, and the off-line allocation-site analyzer;
//! * [`analysis`] — the §5 static analyses (liveness, usage,
//!   indirect-usage, call graph, exceptions, purity, stack maps);
//! * [`transform`] — the three mechanical rewritings (assign-null,
//!   dead-code removal, lazy allocation) and the profile-guided optimizer;
//! * [`workloads`] — the nine-benchmark evaluation suite;
//! * [`lang`] — a typed mini-Java front end compiling to the VM;
//! * [`obs`] — zero-dependency observability (counters, gauges, log2
//!   histograms, span timers) behind a registry that renders Prometheus
//!   text and stable JSON; both pipeline phases publish into it and the
//!   CLI dumps a snapshot via `--metrics-out`.
//!
//! ## Quick start
//!
//! ```
//! use heapdrag::core::{profile, DragAnalyzer, ProgramNamer, VmConfig};
//! use heapdrag::vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), heapdrag::vm::VmError> {
//! // Build a program that drags a big buffer across unrelated work.
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_method("main", None, true, 1, 3);
//! {
//!     let mut m = b.begin_body(main);
//!     m.push_int(4000).mark("big buffer").new_array().store(1);
//!     m.load(1).push_int(0).push_int(1).astore(); // last use
//!     m.push_int(0).store(2);
//!     m.label("work");
//!     m.load(2).push_int(100).cmpge().branch("done");
//!     m.push_int(32).new_array().pop(); // unrelated allocation
//!     m.load(2).push_int(1).add().store(2);
//!     m.jump("work");
//!     m.label("done").ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let program = b.finish()?;
//!
//! // Phase 1: profile. Phase 2: analyze and report.
//! let run = profile(&program, &[], VmConfig::profiling())?;
//! let report = DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
//! let text = heapdrag::core::render(
//!     &report,
//!     &ProgramNamer { program: &program, sites: &run.sites },
//!     5,
//! );
//! assert!(text.contains("big buffer"));
//! # Ok(())
//! # }
//! ```

pub mod fleet;

pub use heapdrag_analysis as analysis;
pub use heapdrag_core as core;
pub use heapdrag_lang as lang;
pub use heapdrag_obs as obs;
pub use heapdrag_transform as transform;
pub use heapdrag_vm as vm;
pub use heapdrag_workloads as workloads;
