//! Cross-validation of the off-line curve reconstruction against the VM's
//! own deep-GC samples: at every sample time, the reachable size computed
//! from the object records must equal what the collector observed.

use heapdrag::core::{profile, Timeline, VmConfig};
use heapdrag::workloads::all_workloads;

#[test]
fn reconstruction_matches_vm_samples_exactly() {
    for w in all_workloads() {
        for program in [w.original(), w.revised()] {
            let input = (w.default_input)();
            let run = profile(&program, &input, VmConfig::profiling()).expect("runs");
            let times: Vec<u64> = run.samples.iter().map(|s| s.time).collect();
            let reconstructed = Timeline::from_records(&run.records, &times);
            for (i, (sample, point)) in run.samples.iter().zip(&reconstructed.points).enumerate()
            {
                // Two deep GCs can share one byte-clock tick (e.g. a
                // periodic GC immediately followed by the exit GC with no
                // allocation in between). The records can only express the
                // post-last-GC state of a tick, so compare exactly there
                // and require consistency (collector ≥ records) earlier in
                // the tick.
                let last_of_tick = run
                    .samples
                    .get(i + 1)
                    .is_none_or(|next| next.time != sample.time);
                if last_of_tick {
                    assert_eq!(
                        sample.reachable_bytes, point.reachable,
                        "{}: reachable at t={} (collector vs records)",
                        w.name, sample.time
                    );
                } else {
                    assert!(
                        sample.reachable_bytes >= point.reachable,
                        "{}: earlier same-tick sample can only be larger",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn in_use_never_exceeds_reachable_at_any_sample() {
    for w in all_workloads() {
        let input = (w.default_input)();
        let run = profile(&w.original(), &input, VmConfig::profiling()).expect("runs");
        let t = Timeline::from_run(&run);
        for p in &t.points {
            assert!(
                p.in_use <= p.reachable,
                "{} at t={}: in-use {} > reachable {}",
                w.name,
                p.time,
                p.in_use,
                p.reachable
            );
        }
    }
}

#[test]
fn integrals_bracket_the_sampled_curves() {
    // The reachable integral (exact, from records) must be at least the
    // trapezoid mass of the sampled in-use curve — a coarse but effective
    // sanity relation between the two measurement paths.
    let w = heapdrag::workloads::workload_by_name("euler").unwrap();
    let input = (w.default_input)();
    let run = profile(&w.original(), &input, VmConfig::profiling()).expect("runs");
    let integrals = heapdrag::core::Integrals::from_records(&run.records);
    assert!(integrals.reachable >= integrals.in_use);
    assert!(integrals.drag() > 0, "euler definitely has drag");
}
