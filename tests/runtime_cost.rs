//! Table 4's qualitative claim as a test: under the generational
//! collector, the revised variants never cost meaningfully *more* than
//! the originals (the paper's savings are small but mostly positive; a
//! couple of benchmarks regress fractionally, as its javac/analyzer do).

use heapdrag::vm::{Vm, VmConfig};
use heapdrag::workloads::all_workloads;

fn runtime_config() -> VmConfig {
    VmConfig {
        generational: true,
        nursery_bytes: 64 * 1024,
        gc_trigger: Some(768 * 1024),
        ..VmConfig::default()
    }
}

#[test]
fn revised_variants_never_cost_meaningfully_more() {
    for w in all_workloads() {
        let input = (w.default_input)();
        let original = Vm::new(&w.original(), runtime_config())
            .run(&input)
            .expect("original runs");
        let revised = Vm::new(&w.revised(), runtime_config())
            .run(&input)
            .expect("revised runs");
        assert_eq!(original.output, revised.output, "{}", w.name);
        let ratio = revised.cost_units() as f64 / original.cost_units() as f64;
        assert!(
            ratio < 1.05,
            "{}: revised cost ratio {ratio:.3} (orig {}, revised {})",
            w.name,
            original.cost_units(),
            revised.cost_units()
        );
    }
}

#[test]
fn db_variants_cost_identically() {
    let w = heapdrag::workloads::workload_by_name("db").unwrap();
    let input = (w.default_input)();
    let a = Vm::new(&w.original(), runtime_config()).run(&input).unwrap();
    let b = Vm::new(&w.revised(), runtime_config()).run(&input).unwrap();
    assert_eq!(a.cost_units(), b.cost_units());
    assert_eq!(a.steps, b.steps);
}

#[test]
fn generational_mode_actually_runs_minor_collections() {
    let w = heapdrag::workloads::workload_by_name("jess").unwrap();
    let input = (w.default_input)();
    let outcome = Vm::new(&w.original(), runtime_config())
        .run(&input)
        .unwrap();
    assert!(
        outcome.heap.minor_collections > 0,
        "nursery collections happened: {:?}",
        outcome.heap
    );
}
