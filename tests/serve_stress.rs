//! Seeded stress schedules for the serve layer: random session mixes —
//! clean and fault-mutated traces, strict and salvage policies, random
//! shard counts, interleaved cancels, occasional over-budget rejects —
//! against a randomly sized shared pool. Every case must finish inside a
//! bounded-time watchdog (no deadlocks), panic-free, with every session
//! in a terminal state and the `heapdrag_serve_*` counters reconciling
//! *exactly* against the final per-session states.

use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

use heapdrag::core::{
    Pipeline, ServeConfig, ServeManager, SessionId, SessionSource, SessionSpec, SessionState,
};
use heapdrag::obs::Registry;
use heapdrag_testkit::{check, inject, Fault, Rng};

/// The clean synthetic trace the fault mutators chew on.
fn clean_log() -> String {
    let mut text = String::from("heapdrag-log v1\n");
    for c in 0..6 {
        text.push_str(&format!("chain {c} Main.site{c}@{c}\n"));
    }
    for i in 0u64..300 {
        text.push_str(&format!(
            "obj {i} {} {} {} {} {} {} {} 0\n",
            2 + i % 3,
            8 + (i % 17) * 24,
            i * 5,
            i * 5 + 350 + (i % 7) * 40,
            i * 5 + 90,
            i % 6,
            i % 6,
        ));
    }
    text.push_str("end 2000\n");
    text
}

/// One pre-drawn session in a schedule. All randomness is drawn before
/// the watchdog thread starts so the case stays deterministic per seed.
struct PlannedSession {
    bytes: Vec<u8>,
    shards: usize,
    salvage: bool,
    /// Cancel this session right after submitting the *next* one.
    cancel: bool,
}

struct Plan {
    pool_workers: usize,
    drivers: usize,
    budget_chunks: u64,
    sessions: Vec<PlannedSession>,
}

fn draw_plan(clean: &str, rng: &mut Rng) -> Plan {
    let sessions = rng.vec(6, 14, |rng| {
        let faulted = rng.ratio(2, 5);
        let bytes = if faulted {
            let fault = *rng.choose(&Fault::ALL);
            inject(clean, fault, rng).0.into_bytes()
        } else {
            clean.as_bytes().to_vec()
        };
        PlannedSession {
            bytes,
            // Up to 8 shards (cost 16) against budgets as low as 6, so
            // some sessions are legitimately rejected at admission.
            shards: rng.range_usize(1, 9),
            salvage: rng.bool(),
            cancel: rng.ratio(1, 5),
        }
    });
    Plan {
        pool_workers: rng.range_usize(1, 4),
        drivers: rng.range_usize(1, 4),
        budget_chunks: rng.range_u64(6, 13),
        sessions,
    }
}

/// Runs one schedule and returns the per-state tallies plus the final
/// metrics snapshot; every assertion that needs the manager lives here
/// so the watchdog thread owns it end to end.
fn run_plan(plan: Plan) {
    let registry = Registry::new();
    let manager = ServeManager::new(ServeConfig {
        pool_workers: plan.pool_workers,
        drivers: plan.drivers,
        budget_chunks: plan.budget_chunks,
        max_queue: 1024,
        pipeline: Pipeline::options().chunk_records(32),
        registry: registry.clone(),
    });
    let mut ids: Vec<SessionId> = Vec::new();
    let mut pending_cancel: Option<SessionId> = None;
    for s in &plan.sessions {
        if let Some(id) = pending_cancel.take() {
            // Cancel the previous session while this submission races it:
            // it may already be running, done, or still queued — all legal.
            manager.cancel(id);
        }
        let mut pipe = Pipeline::options().shards(s.shards).chunk_records(32);
        if s.salvage {
            pipe = pipe.salvage(None);
        }
        let id = manager.submit(
            SessionSpec::new(
                format!("stress-{}", ids.len()),
                SessionSource::Bytes(s.bytes.clone()),
            )
            .pipeline(pipe),
        );
        if s.cancel {
            pending_cancel = Some(id);
        }
        ids.push(id);
    }
    if let Some(id) = pending_cancel {
        manager.cancel(id);
    }
    manager.wait_idle();

    // Every session reached a terminal state, and the counters reconcile
    // exactly with the final states — no lost or double-counted session.
    let mut by_state = std::collections::HashMap::new();
    for s in manager.sessions() {
        assert!(s.state.is_terminal(), "{} stuck in {}", s.id, s.state);
        *by_state.entry(s.state).or_insert(0u64) += 1;
        if s.state == SessionState::Completed {
            assert!(s.stats.is_some(), "{} completed without stats", s.id);
            // A completed session's report must render (and deterministically).
            let a = manager.report(s.id, 5).expect("report renders");
            let b = manager.report(s.id, 5).expect("report renders");
            assert_eq!(a, b);
        }
    }
    let count = |state| by_state.get(&state).copied().unwrap_or(0);
    let snap = registry.snapshot();
    let total = plan.sessions.len() as u64;
    assert_eq!(snap.counters["heapdrag_serve_sessions_submitted_total"], total);
    assert_eq!(
        snap.counters["heapdrag_serve_sessions_completed_total"],
        count(SessionState::Completed)
    );
    assert_eq!(
        snap.counters["heapdrag_serve_sessions_failed_total"],
        count(SessionState::Failed)
    );
    assert_eq!(
        snap.counters["heapdrag_serve_sessions_canceled_total"],
        count(SessionState::Canceled)
    );
    assert_eq!(
        snap.counters["heapdrag_serve_admission_rejections_total"],
        count(SessionState::Rejected)
    );
    assert_eq!(
        count(SessionState::Completed)
            + count(SessionState::Failed)
            + count(SessionState::Canceled)
            + count(SessionState::Rejected),
        total,
        "states must partition the fleet"
    );

    // Admission accounting drained to zero and never exceeded the budget.
    assert_eq!(snap.gauges["heapdrag_serve_active_sessions"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_queued_sessions"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_inflight_chunks"], 0);
    let budget = i64::try_from(plan.budget_chunks).unwrap();
    assert!(
        snap.gauges["heapdrag_serve_inflight_chunks_peak"] <= budget,
        "in-flight peak {} exceeded budget {budget}",
        snap.gauges["heapdrag_serve_inflight_chunks_peak"]
    );

    // No decode job panicked: faults degrade to per-chunk errors, never
    // to a pool panic.
    assert_eq!(snap.gauges["heapdrag_serve_pool_panics"], 0);

    // The fleet report renders whatever the mix was.
    let fleet = manager.fleet_report(5);
    assert!(fleet.starts_with("=== fleet drag report:"), "{fleet}");
}

#[test]
fn random_session_schedules_never_deadlock_and_reconcile_exactly() {
    let clean = clean_log();
    check("serve-stress", 24, |rng: &mut Rng| {
        let plan = draw_plan(&clean, rng);
        // Bounded-time watchdog: the whole schedule — submissions,
        // cancels, drain, reconciliation — must finish well under the
        // deadline or we call it a deadlock.
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            run_plan(plan);
            let _ = tx.send(());
        });
        match rx.recv_timeout(Duration::from_secs(60)) {
            Ok(()) => handle.join().expect("stress case panicked"),
            Err(RecvTimeoutError::Disconnected) => {
                handle.join().expect("stress case panicked");
            }
            Err(RecvTimeoutError::Timeout) => {
                panic!("serve stress case did not finish within 60s (deadlock?)")
            }
        }
    });
}
