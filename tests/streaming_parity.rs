//! Streaming-vs-in-memory parity: the bounded-memory streaming pipeline
//! (`Pipeline::analyze_reader` / `Pipeline::ingest_reader`) must produce
//! byte-identical user-facing artifacts — rendered report plus salvage
//! footer — to the in-memory path, for every workload, shard count,
//! trace format, and fault policy; and it must do so whatever the read
//! geometry, including 1-byte and misaligned-chunk readers. Finally, the
//! memory bound itself is asserted: streaming a trace two orders of
//! magnitude larger than the chunk budget must keep
//! `peak_buffered_bytes` under 4 × shards × chunk-bytes.

use std::io::Read;

use heapdrag::core::{LogFormat, Pipeline, ProfileRun, ReportSections};
use heapdrag::obs::Registry;
use heapdrag::vm::{Program, SiteId};
use heapdrag::workloads::workload_by_name;
use heapdrag_testkit::{check, inject, Fault, Rng, StutterReader, TrickleReader};

const WORKLOADS: [&str; 3] = ["jess", "jack", "juru"];
const SHARDS: [usize; 3] = [1, 4, 7];

fn encode(run: &ProfileRun, program: &Program, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    Pipeline::options()
        .format(format)
        .write_to(run, program, &mut buf)
        .expect("writes");
    buf
}

fn pipe(shards: usize, salvage: bool) -> Pipeline {
    let p = Pipeline::options().shards(shards).chunk_records(64);
    if salvage {
        p.salvage(None)
    } else {
        p
    }
}

/// The user-facing artifact of `heapdrag report`, via the in-memory path.
fn rendered_in_memory(pipe: &Pipeline, bytes: &[u8]) -> String {
    let ingested = pipe.ingest_bytes(bytes).expect("ingests");
    let (report, _) = pipe.analyze_records(&ingested.log.records, |c| Some(SiteId(c.0)));
    let mut sections = ReportSections::standard(&report, &ingested.log);
    if ingested.salvage.salvage {
        sections = sections.salvage_footer(&ingested.salvage);
    }
    sections.render()
}

/// The same artifact via the fully streaming path.
fn rendered_streaming(pipe: &Pipeline, reader: impl Read) -> String {
    let streamed = pipe.analyze_reader(reader).expect("streams");
    let mut sections = ReportSections::standard(&streamed.report, &streamed);
    if streamed.salvage.salvage {
        sections = sections.salvage_footer(&streamed.salvage);
    }
    sections.render()
}

#[test]
fn streaming_report_is_byte_identical_for_every_workload_shard_format_and_mode() {
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("workload exists");
        let program = w.original();
        let run = profile(&program, name);
        for format in [LogFormat::Text, LogFormat::Binary] {
            let bytes = encode(&run, &program, format);
            for shards in SHARDS {
                for salvage in [false, true] {
                    let pipe = pipe(shards, salvage);
                    let want = rendered_in_memory(&pipe, &bytes);
                    let got = rendered_streaming(&pipe, &bytes[..]);
                    assert_eq!(
                        got, want,
                        "{name}: {format} at {shards} shards (salvage={salvage})"
                    );
                }
            }
        }
    }
}

fn profile(program: &Program, name: &str) -> ProfileRun {
    let w = workload_by_name(name).expect("workload exists");
    heapdrag::core::profile(program, &(w.default_input)(), heapdrag::core::VmConfig::profiling())
        .unwrap_or_else(|e| panic!("{name} profiles: {e}"))
}

/// A deterministic synthetic text trace small enough that 1-byte reads
/// stay fast, big enough that chunking and sharding engage.
fn synthetic_text_log() -> String {
    let mut text = String::from("heapdrag-log v1\n");
    for c in 0..6 {
        text.push_str(&format!("chain {c} Main.site{c}@{c}\n"));
    }
    for i in 0u64..400 {
        let (last, uchain) = if i.is_multiple_of(5) {
            ("-".to_string(), "-".to_string())
        } else {
            ((i * 5 + 90).to_string(), ((i % 6).to_string()))
        };
        text.push_str(&format!(
            "obj {i} {} {} {} {} {last} {} {uchain} {}\n",
            2 + i % 3,
            8 + (i % 17) * 24,
            i * 5,
            i * 5 + 350 + (i % 7) * 40,
            i % 6,
            u8::from(i.is_multiple_of(9)),
        ));
        if i.is_multiple_of(25) {
            text.push_str(&format!("gc {} {} {}\n", i * 5 + 10, 4000 + i * 11, 40 + i));
        }
    }
    text.push_str("end 2500\n");
    text
}

#[test]
fn pathological_read_geometry_does_not_change_the_report() {
    // The worst read geometries: one byte at a time, and a prime-size
    // cycle that misaligns every chunk — over both formats and both
    // fault policies. The report must not notice.
    let text = synthetic_text_log();
    let w = workload_by_name("juru").expect("workload exists");
    let program = w.original();
    let run = profile(&program, "juru");
    let binary = encode(&run, &program, LogFormat::Binary);
    for bytes in [text.as_bytes(), &binary[..]] {
        for salvage in [false, true] {
            let pipe = pipe(4, salvage);
            let want = rendered_in_memory(&pipe, bytes);
            let trickled = rendered_streaming(&pipe, TrickleReader::new(bytes, 1));
            assert_eq!(trickled, want, "1-byte reads (salvage={salvage})");
            let stuttered = rendered_streaming(&pipe, StutterReader::new(bytes));
            assert_eq!(stuttered, want, "misaligned reads (salvage={salvage})");
        }
    }
}

#[test]
fn corrupted_traces_stream_identically_at_every_shard_count() {
    // Every fault mutator, streamed through a misaligning reader: no
    // panics, and the salvage outcome — ParsedLog, SalvageSummary, the
    // whole `Ingested` — is identical to the in-memory path and invariant
    // across shard counts.
    let clean = synthetic_text_log();
    check("streaming-fault-parity", 48, |rng: &mut Rng| {
        let fault = *rng.choose(&Fault::ALL);
        let (text, _) = inject(&clean, fault, rng);
        let baseline = pipe(1, true).ingest_bytes(text.as_bytes());
        for shards in SHARDS {
            let streamed = pipe(shards, true)
                .ingest_reader(StutterReader::new(text.as_bytes()));
            match (&baseline, &streamed) {
                (Ok(want), Ok((got, _))) => {
                    assert_eq!(got.log, want.log, "{fault:?} at {shards} shards");
                    assert_eq!(got.salvage, want.salvage, "{fault:?} at {shards} shards");
                }
                (Err(want), Err(got)) => {
                    assert_eq!(
                        got.as_log().expect("log error"),
                        want.as_log().expect("log error"),
                        "{fault:?} at {shards} shards"
                    );
                }
                (want, got) => panic!(
                    "{fault:?} at {shards} shards: in-memory {want:?} vs streamed {got:?}"
                ),
            }
        }
    });
}

#[test]
fn truncated_traces_recover_a_prefix_through_the_streaming_reader() {
    // Prefix recovery: cutting the trace at any byte and salvaging through
    // the streaming reader keeps exactly a prefix of the clean record
    // sequence (the torn tail unit is dropped, nothing is reordered or
    // invented).
    let clean = synthetic_text_log();
    let clean_records = pipe(1, false)
        .ingest_bytes(clean.as_bytes())
        .expect("clean log ingests")
        .log
        .records;
    check("streaming-prefix-recovery", 32, |rng: &mut Rng| {
        let cut = rng.range_usize(1, clean.len());
        let (ingested, _) = pipe(4, true)
            .ingest_reader(TrickleReader::new(&clean.as_bytes()[..cut], 3))
            .expect("salvage succeeds on a truncated log");
        let got = &ingested.log.records;
        assert!(
            got.len() <= clean_records.len()
                && clean_records[..got.len()] == got[..],
            "salvaged records must be a prefix of the clean sequence \
             (cut at byte {cut}, kept {})",
            got.len()
        );
    });
}

/// An `io::Read` that synthesizes a text trace on the fly — the input
/// never exists in memory, so the only buffering is the pipeline's own.
struct SyntheticTraceReader {
    pending: Vec<u8>,
    off: usize,
    next_obj: u64,
    bytes_out: u64,
    target: u64,
    done: bool,
}

impl SyntheticTraceReader {
    fn new(target: u64) -> Self {
        let mut header = b"heapdrag-log v1\n".to_vec();
        for c in 0..8 {
            header.extend_from_slice(format!("chain {c} Gen.site{c}@{c}\n").as_bytes());
        }
        SyntheticTraceReader {
            pending: header,
            off: 0,
            next_obj: 0,
            bytes_out: 0,
            target,
            done: false,
        }
    }

    fn refill(&mut self) {
        self.pending.clear();
        self.off = 0;
        if self.bytes_out >= self.target {
            if !self.done {
                self.pending.extend_from_slice(b"end 999999999\n");
                self.done = true;
            }
            return;
        }
        use std::fmt::Write;
        let mut s = String::with_capacity(64 * 1024);
        for _ in 0..1024 {
            let i = self.next_obj;
            self.next_obj += 1;
            let created = i * 13;
            writeln!(
                s,
                "obj {i} {} {} {created} {} {} {} {} 0",
                i % 5,
                8 + (i % 31) * 16,
                created + 400 + (i % 11) * 50,
                created + 100,
                i % 8,
                i % 8,
            )
            .unwrap();
            if i.is_multiple_of(512) {
                writeln!(s, "gc {created} {} {}", i * 9 + 4096, i + 1).unwrap();
            }
        }
        self.pending.extend_from_slice(s.as_bytes());
    }
}

impl Read for SyntheticTraceReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.off == self.pending.len() {
            self.refill();
            if self.pending.is_empty() {
                return Ok(0);
            }
        }
        let n = buf.len().min(self.pending.len() - self.off);
        buf[..n].copy_from_slice(&self.pending[self.off..self.off + n]);
        self.off += n;
        self.bytes_out += n as u64;
        Ok(n)
    }
}

#[test]
fn peak_buffered_bytes_stays_bounded_on_a_64_mib_trace() {
    // The acceptance bound of the streaming engine: a trace of >= 64 MiB
    // (here ~1.3 M records, synthesized on the fly so the input itself is
    // never in memory) must stream with the buffer high-water mark below
    // 4 x shards x chunk-bytes. The fold keeps only per-site aggregates,
    // so this is also the peak footprint of the whole analysis, modulo
    // the distinct-site table.
    const TARGET: u64 = 64 * 1024 * 1024;
    let pipe = Pipeline::options().shards(4).chunk_records(4096);
    let streamed = pipe
        .analyze_reader(SyntheticTraceReader::new(TARGET))
        .expect("synthetic trace streams");
    assert!(
        streamed.stats.bytes_read >= TARGET,
        "trace must be >= 64 MiB, read {}",
        streamed.stats.bytes_read
    );
    assert!(streamed.records >= 1_000_000, "records folded: {}", streamed.records);
    let bound = 4 * 4 * streamed.stats.max_chunk_bytes;
    assert!(
        streamed.stats.peak_buffered_bytes < bound,
        "peak {} must stay under 4 x shards x chunk-bytes = {bound}",
        streamed.stats.peak_buffered_bytes
    );

    // The gauges the ISSUE names must carry the numbers out.
    let registry = Registry::new();
    streamed.stats.publish_metrics(&registry);
    let snap = registry.snapshot();
    assert_eq!(
        snap.gauges["heapdrag_ingest_peak_buffered_bytes"],
        i64::try_from(streamed.stats.peak_buffered_bytes).unwrap()
    );
    assert_eq!(
        snap.gauges["heapdrag_ingest_backpressure_stalls"],
        i64::try_from(streamed.stats.backpressure_stalls).unwrap()
    );
    assert_eq!(snap.counters["heapdrag_ingest_bytes_total"], streamed.stats.bytes_read);
}
