//! Fault-injection property suite for the salvage ingester.
//!
//! Each property runs 256 seeded cases per fault kind (replayable with
//! `TESTKIT_SEED`/`TESTKIT_CASES`), corrupting a synthetic log with the
//! `heapdrag-testkit` mutators and asserting the ingestion contract:
//!
//! * **Salvage never panics** and — barring an empty input — never errors
//!   without a `--max-errors` bound, for any shard count; the salvaged
//!   `ParsedLog` and `SalvageSummary` are identical at 1/4/7 shards.
//! * **Strict mode agrees across shard counts**: every shard count
//!   returns the same `Ok` log or the same first error (code, line, byte,
//!   message).
//! * **Structural faults only lose data, never invent it**: every record
//!   surviving truncate/delete-line/duplicate-chunk/torn-tail is verbatim
//!   from the clean log, so each salvaged record's drag — and the total —
//!   is bounded by the clean run's. (Flip-byte can legally *alter* a
//!   record, so it is only covered by the no-panic and parity properties.)
//! * **Truncation salvages at least the intact prefix**: every complete
//!   `obj` line before the cut yields a kept record.

use std::collections::HashMap;

use heapdrag::core::log::Ingested;
use heapdrag::core::{ObjectRecord, Pipeline};
use heapdrag::vm::ObjectId;
use heapdrag_testkit::{check, inject, Fault, Rng};

/// Shard counts every property sweeps. `chunk_records` is pinned because
/// error chunk indices are a function of the chunk size (the scan decides
/// chunking), while the results must not depend on the worker count.
const SHARDS: [usize; 3] = [1, 4, 7];

fn pipe(shards: usize) -> Pipeline {
    Pipeline::options().shards(shards).chunk_records(32)
}

/// A deterministic synthetic log: ~400 records with varied sizes,
/// lifetimes, optional fields, and interleaved deep-GC samples — big
/// enough that chunking engages and any fault lands somewhere
/// interesting. The `end` marker is last, as `write_log` emits it.
fn clean_log() -> String {
    let mut text = String::from("heapdrag-log v1\nchain 0 Main.main@1 \"buf\"\nchain 1 Main.work@9\n");
    for i in 0u64..400 {
        text.push_str(&format!(
            "obj {} {} {} {} {} {} {} {} {}\n",
            i,
            2 + i % 3,
            8 + (i % 17) * 24,
            i * 5,
            i * 5 + 350 + (i % 7) * 40,
            if i % 5 == 0 { "-".to_string() } else { (i * 5 + 90).to_string() },
            i % 2,
            if i % 5 == 0 { "-".to_string() } else { (i % 2).to_string() },
            u8::from(i % 9 == 0),
        ));
        if i % 25 == 0 {
            text.push_str(&format!("gc {} {} {}\n", i * 5 + 10, 4000 + i * 11, 40 + i));
        }
    }
    text.push_str("end 2500\n");
    text
}

fn salvage(text: &str, shards: usize) -> Result<Ingested, heapdrag::core::LogError> {
    pipe(shards)
        .salvage(None)
        .ingest_bytes(text)
        .map_err(|e| e.as_log().expect("log error").clone())
}

fn strict(text: &str, shards: usize) -> Result<Ingested, heapdrag::core::LogError> {
    pipe(shards)
        .ingest_bytes(text)
        .map_err(|e| e.as_log().expect("log error").clone())
}

fn total_drag(records: &[ObjectRecord]) -> u128 {
    records.iter().map(|r| r.drag()).sum()
}

/// One corrupted case: applies `fault` to the clean log with the case's
/// `rng` and returns the corrupted text.
fn corrupt(clean: &str, fault: Fault, rng: &mut Rng) -> String {
    inject(clean, fault, rng).0
}

#[test]
fn salvage_never_panics_and_is_shard_invariant_under_every_fault() {
    let clean = clean_log();
    for fault in Fault::ALL {
        check(
            &format!("salvage-no-panic[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let text = corrupt(&clean, fault, rng);
                let baseline = salvage(&text, 1).unwrap_or_else(|e| {
                    panic!("{}: salvage must succeed, got {e}", fault.name())
                });
                for shards in [4, 7] {
                    let got = salvage(&text, shards).expect("salvage succeeds");
                    assert_eq!(got.log, baseline.log, "{}: shards {shards}", fault.name());
                    assert_eq!(
                        got.salvage, baseline.salvage,
                        "{}: shards {shards}",
                        fault.name()
                    );
                }
            },
        );
    }
}

#[test]
fn strict_mode_agrees_across_shard_counts_under_every_fault() {
    let clean = clean_log();
    for fault in Fault::ALL {
        check(
            &format!("strict-parity[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let text = corrupt(&clean, fault, rng);
                let results: Vec<_> = SHARDS.iter().map(|&s| strict(&text, s)).collect();
                match &results[0] {
                    Ok(first) => {
                        for r in &results[1..] {
                            let r = r.as_ref().expect("all shard counts parse");
                            assert_eq!(r.log, first.log, "{}", fault.name());
                        }
                    }
                    Err(first) => {
                        for r in &results[1..] {
                            let e = r.as_ref().expect_err("all shard counts fail");
                            assert_eq!(
                                (e.code, e.line, e.byte, &e.message),
                                (first.code, first.line, first.byte, &first.message),
                                "{}",
                                fault.name()
                            );
                        }
                    }
                }
            },
        );
    }
}

#[test]
fn structural_faults_never_invent_records_and_drag_is_a_subset() {
    let clean_text = clean_log();
    let clean = salvage(&clean_text, 1).expect("clean log ingests");
    assert!(clean.salvage.is_clean(), "the builder emits a clean log");
    let clean_drag = total_drag(&clean.log.records);
    let by_id: HashMap<ObjectId, &ObjectRecord> =
        clean.log.records.iter().map(|r| (r.object, r)).collect();

    for fault in Fault::ALL.into_iter().filter(|f| f.is_structural()) {
        check(
            &format!("salvage-subset[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let text = corrupt(&clean_text, fault, rng);
                let got = salvage(&text, 4).expect("salvage succeeds");
                for r in &got.log.records {
                    let original = by_id.get(&r.object).unwrap_or_else(|| {
                        panic!("{}: salvaged unknown object {:?}", fault.name(), r.object)
                    });
                    assert_eq!(&r, original, "{}: record altered", fault.name());
                }
                assert!(
                    total_drag(&got.log.records) <= clean_drag,
                    "{}: salvaged drag exceeds the clean run's",
                    fault.name()
                );
            },
        );
    }
}

#[test]
fn truncation_salvages_at_least_the_intact_prefix() {
    let clean_text = clean_log();
    check("truncate-prefix-recovery", 256, |rng: &mut Rng| {
        let (text, report) = inject(&clean_text, Fault::TruncateAtByte, rng);
        let intact_objs = clean_text[..report.offset]
            .split_inclusive('\n')
            .filter(|l| l.ends_with('\n') && l.starts_with("obj "))
            .count();
        let got = salvage(&text, 4).expect("salvage succeeds");
        assert!(
            got.log.records.len() >= intact_objs,
            "salvaged {} records from a prefix holding {intact_objs} complete obj lines",
            got.log.records.len()
        );
    });
}

#[test]
fn max_errors_bounds_salvage_under_heavy_corruption() {
    // Stacked faults accumulate errors; a zero budget must reject any
    // corrupted log with E008 while the unbounded ingest still succeeds.
    let clean_text = clean_log();
    check("max-errors-bound", 64, |rng: &mut Rng| {
        let mut text = corrupt(&clean_text, Fault::DeleteLine, rng);
        text = corrupt(&text, Fault::TruncateAtByte, rng);
        let unbounded = salvage(&text, 4).expect("unbounded salvage succeeds");
        let bounded = pipe(4).salvage(Some(0)).ingest_bytes(&text);
        if unbounded.salvage.is_clean() {
            // Deleting a line can excise a whole record cleanly; nothing
            // to bound in that case.
            assert!(bounded.is_ok());
        } else {
            let e = bounded.expect_err("zero budget rejects corruption");
            let e = e.as_log().expect("log error");
            assert_eq!(e.code, heapdrag::core::ErrorCode::TooManyErrors);
        }
    });
}
