//! Property tests over the profiler and analyzer: invariants of object
//! records, integrals, partitions, and savings arithmetic on arbitrary
//! (well-formed) record sets.

use heapdrag::core::{DragAnalyzer, Integrals, ObjectRecord, SavingsReport, Timeline};
use heapdrag::vm::{ChainId, ObjectId, SiteId};
use heapdrag_testkit::{check, Rng};

fn record(rng: &mut Rng) -> ObjectRecord {
    let created = rng.range_u64(0, 200_000);
    // Enforce created <= last_use <= freed by construction.
    let last_use = created + rng.range_u64(0, 50_000);
    let freed = last_use + rng.range_u64(0, 50_000);
    let used = rng.bool();
    let site = rng.range_u32(0, 12);
    ObjectRecord {
        object: ObjectId(rng.range_u64(0, 1000)),
        class: heapdrag::vm::ClassId(0),
        size: rng.range_u64(1, 4096) * 8,
        created,
        freed,
        last_use: used.then_some(last_use),
        alloc_site: ChainId(site),
        last_use_site: used.then_some(ChainId(site + 100)),
        at_exit: rng.bool(),
    }
}

fn records(rng: &mut Rng, min: usize, max: usize) -> Vec<ObjectRecord> {
    rng.vec(min, max, record)
}

#[test]
fn per_record_identities() {
    check("per_record_identities", 128, |rng| {
        let r = record(rng);
        assert_eq!(r.reachable_product(), r.in_use_product() + r.drag());
        assert!(r.in_use_time() <= r.reachable_time());
        assert!(r.drag_time() <= r.reachable_time());
        assert!(r.is_never_used(u64::MAX) || r.last_use.is_some());
    });
}

#[test]
fn integrals_equal_sum_of_site_stats() {
    check("integrals_equal_sum_of_site_stats", 128, |rng| {
        let records = records(rng, 0, 60);
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let totals = Integrals::from_records(&records);
        assert_eq!(report.totals, totals);
        let site_drag: u128 = report.by_nested_site.iter().map(|e| e.stats.drag).sum();
        let site_reach: u128 = report.by_nested_site.iter().map(|e| e.stats.reachable).sum();
        assert_eq!(site_drag, totals.drag());
        assert_eq!(site_reach, totals.reachable);
        // The pair partition covers the same mass.
        let pair_drag: u128 = report.by_alloc_and_last_use.iter().map(|e| e.stats.drag).sum();
        assert_eq!(pair_drag, totals.drag());
        // Sorted descending by drag.
        assert!(report
            .by_nested_site
            .windows(2)
            .all(|w| w[0].stats.drag >= w[1].stats.drag));
    });
}

#[test]
fn object_counts_partition_exactly() {
    check("object_counts_partition_exactly", 128, |rng| {
        let records = records(rng, 0, 60);
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let by_site: u64 = report.by_nested_site.iter().map(|e| e.stats.objects).sum();
        let by_pair: u64 = report.by_alloc_and_last_use.iter().map(|e| e.stats.objects).sum();
        assert_eq!(by_site, records.len() as u64);
        assert_eq!(by_pair, records.len() as u64);
    });
}

#[test]
fn timeline_curves_are_consistent() {
    check("timeline_curves_are_consistent", 128, |rng| {
        let records = records(rng, 1, 40);
        let times = rng.vec(1, 20, |r| r.range_u64(0, 300_000));
        let t = Timeline::from_records(&records, &times);
        let total: u64 = records.iter().map(|r| r.size).sum();
        for p in &t.points {
            assert!(p.in_use <= p.reachable, "at t={}", p.time);
            assert!(p.reachable <= total);
        }
    });
}

#[test]
fn savings_arithmetic_is_exact() {
    check("savings_arithmetic_is_exact", 128, |rng| {
        let a = records(rng, 1, 40);
        let b = records(rng, 1, 40);
        let ia = Integrals::from_records(&a);
        let ib = Integrals::from_records(&b);
        let s = SavingsReport::new(ia, ib);
        // space saving of x vs x is 0; antisymmetry-ish sanity.
        let self_s = SavingsReport::new(ia, ia);
        assert!(self_s.space_saving_pct().abs() < 1e-9);
        assert!(self_s.drag_saving_pct().abs() < 1e-9);
        if ia.reachable > 0 {
            let frac = 1.0 - ib.reachable as f64 / ia.reachable as f64;
            assert!((s.space_saving_pct() - frac * 100.0).abs() < 1e-6);
        }
        assert_eq!(s.beats_original_in_use(), ib.reachable < ia.in_use);
    });
}
