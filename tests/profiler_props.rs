//! Property tests over the profiler and analyzer: invariants of object
//! records, integrals, partitions, and savings arithmetic on arbitrary
//! (well-formed) record sets.

use heapdrag::core::{DragAnalyzer, Integrals, ObjectRecord, SavingsReport, Timeline};
use heapdrag::vm::{ChainId, ObjectId, SiteId};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = ObjectRecord> {
    (
        0u64..1000,
        0u64..200_000,
        0u64..200_000,
        0u64..200_000,
        1u64..4096,
        0u32..12,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(
            |(id, created, d_use, d_free, size, site, used, at_exit)| {
                // Enforce created <= last_use <= freed by construction.
                let last_use = created + d_use % 50_000;
                let freed = last_use + d_free % 50_000;
                ObjectRecord {
                    object: ObjectId(id),
                    class: heapdrag::vm::ClassId(0),
                    size: size * 8,
                    created,
                    freed,
                    last_use: used.then_some(last_use),
                    alloc_site: ChainId(site),
                    last_use_site: used.then_some(ChainId(site + 100)),
                    at_exit,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn per_record_identities(r in record_strategy()) {
        prop_assert_eq!(r.reachable_product(), r.in_use_product() + r.drag());
        prop_assert!(r.in_use_time() <= r.reachable_time());
        prop_assert!(r.drag_time() <= r.reachable_time());
        prop_assert!(r.is_never_used(u64::MAX) || r.last_use.is_some());
    }

    #[test]
    fn integrals_equal_sum_of_site_stats(records in proptest::collection::vec(record_strategy(), 0..60)) {
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let totals = Integrals::from_records(&records);
        prop_assert_eq!(report.totals, totals);
        let site_drag: u128 = report.by_nested_site.iter().map(|e| e.stats.drag).sum();
        let site_reach: u128 = report.by_nested_site.iter().map(|e| e.stats.reachable).sum();
        prop_assert_eq!(site_drag, totals.drag());
        prop_assert_eq!(site_reach, totals.reachable);
        // The pair partition covers the same mass.
        let pair_drag: u128 = report.by_alloc_and_last_use.iter().map(|e| e.stats.drag).sum();
        prop_assert_eq!(pair_drag, totals.drag());
        // Sorted descending by drag.
        prop_assert!(report
            .by_nested_site
            .windows(2)
            .all(|w| w[0].stats.drag >= w[1].stats.drag));
    }

    #[test]
    fn object_counts_partition_exactly(records in proptest::collection::vec(record_strategy(), 0..60)) {
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let by_site: u64 = report.by_nested_site.iter().map(|e| e.stats.objects).sum();
        let by_pair: u64 = report.by_alloc_and_last_use.iter().map(|e| e.stats.objects).sum();
        prop_assert_eq!(by_site, records.len() as u64);
        prop_assert_eq!(by_pair, records.len() as u64);
    }

    #[test]
    fn timeline_curves_are_consistent(
        records in proptest::collection::vec(record_strategy(), 1..40),
        times in proptest::collection::vec(0u64..300_000, 1..20),
    ) {
        let t = Timeline::from_records(&records, &times);
        let total: u64 = records.iter().map(|r| r.size).sum();
        for p in &t.points {
            prop_assert!(p.in_use <= p.reachable, "at t={}", p.time);
            prop_assert!(p.reachable <= total);
        }
    }

    #[test]
    fn savings_arithmetic_is_exact(
        a in proptest::collection::vec(record_strategy(), 1..40),
        b in proptest::collection::vec(record_strategy(), 1..40),
    ) {
        let ia = Integrals::from_records(&a);
        let ib = Integrals::from_records(&b);
        let s = SavingsReport::new(ia, ib);
        // space saving of x vs x is 0; antisymmetry-ish sanity.
        let self_s = SavingsReport::new(ia, ia);
        prop_assert!(self_s.space_saving_pct().abs() < 1e-9);
        prop_assert!(self_s.drag_saving_pct().abs() < 1e-9);
        if ia.reachable > 0 {
            let frac = 1.0 - ib.reachable as f64 / ia.reachable as f64;
            prop_assert!((s.space_saving_pct() - frac * 100.0).abs() < 1e-6);
        }
        prop_assert_eq!(s.beats_original_in_use(), ib.reachable < ia.in_use);
    }
}
