//! CLI argument validation: numeric flags must reject zero and garbage
//! with a stable one-line error on stderr and a nonzero exit — never be
//! accepted silently. Also pins the `live` flag surface: window specs,
//! `--advance` coupling, and that valid invocations still run.

use std::process::Command;

fn heapdrag(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_heapdrag"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr_line(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).trim_end().to_string()
}

#[test]
fn numeric_flags_reject_zero_and_garbage_with_stable_one_line_errors() {
    let flags = [
        "--interval-kb",
        "--top",
        "--shards",
        "--chunk-records",
        "--pool",
        "--drivers",
        "--budget-chunks",
        "--rounds",
        "--advance",
        "--cold-after",
        "--every",
        "--ring",
    ];
    for flag in flags {
        for bad in ["0", "nope", "-3", "1.5", ""] {
            let out = heapdrag(&["report", "whatever.log", flag, bad]);
            assert!(
                !out.status.success(),
                "{flag} {bad:?} must be rejected, got success"
            );
            let err = stderr_line(&out);
            assert_eq!(
                err,
                format!("heapdrag: bad {flag}: expected a positive integer, got `{bad}`"),
                "{flag} {bad:?}: unstable error line"
            );
            assert!(!err.contains('\n'), "{flag}: error must be one line");
        }
    }
}

#[test]
fn window_specs_accept_unbounded_and_positive_bytes_only() {
    for flag in ["--window", "--live-window"] {
        for bad in ["0", "forever", "-1"] {
            let out = heapdrag(&["live", "x", flag, bad]);
            assert!(!out.status.success(), "{flag} {bad:?} must be rejected");
            assert_eq!(
                stderr_line(&out),
                format!("heapdrag: bad {flag}: expected a positive integer, got `{bad}`")
            );
        }
    }
    // `unbounded` parses; the command then fails on the missing target,
    // not on the flag.
    let out = heapdrag(&["live", "/nonexistent.hdasm", "--window", "unbounded"]);
    assert!(!out.status.success());
    assert!(
        stderr_line(&out).contains("/nonexistent.hdasm"),
        "failure must be about the target, not the window spec"
    );
}

#[test]
fn advance_requires_a_rolling_window() {
    let out = heapdrag(&["live", "x", "--advance", "64"]);
    assert!(!out.status.success());
    assert_eq!(
        stderr_line(&out),
        "heapdrag: --advance requires a rolling --window <bytes>"
    );
    // With a rolling window the same flag parses (failure, if any, comes
    // later, from the bogus target).
    let out = heapdrag(&["live", "/nonexistent.hdasm", "--window", "4096", "--advance", "64"]);
    assert!(!out.status.success());
    assert!(stderr_line(&out).contains("/nonexistent.hdasm"));
}

#[test]
fn a_valid_live_invocation_runs_a_workload_by_name() {
    let out = heapdrag(&["live", "juru", "--every", "65536", "--snapshot-out", "/dev/null"]);
    assert!(
        out.status.success(),
        "live juru failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== drag report ==="));
    assert!(stdout.contains("--- coldness: per-site idle intervals"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("live:"), "summary line: {stderr}");
}

#[test]
fn strict_and_salvage_stay_mutually_exclusive() {
    let out = heapdrag(&["report", "x.log", "--strict", "--salvage"]);
    assert!(!out.status.success());
    assert_eq!(
        stderr_line(&out),
        "heapdrag: --strict and --salvage are mutually exclusive"
    );
}
