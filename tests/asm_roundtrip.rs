//! Assembler/disassembler round-trips over the real benchmark programs:
//! the textual form of every workload must reassemble into a program with
//! identical behaviour.

use heapdrag::vm::asm::assemble;
use heapdrag::vm::disasm::disassemble;
use heapdrag::vm::{Vm, VmConfig};
use heapdrag::workloads::all_workloads;

#[test]
fn every_workload_roundtrips_through_assembly() {
    for w in all_workloads() {
        let original = w.original();
        let text = disassemble(&original);
        let reassembled = assemble(&text)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}", w.name));
        let input = (w.default_input)();
        let out1 = Vm::new(&original, VmConfig::default())
            .run(&input)
            .expect("original runs");
        let out2 = Vm::new(&reassembled, VmConfig::default())
            .run(&input)
            .expect("reassembled runs");
        assert_eq!(out1.output, out2.output, "{}", w.name);
        assert_eq!(
            out1.heap.allocated_bytes, out2.heap.allocated_bytes,
            "{}: same allocation behaviour",
            w.name
        );
    }
}

#[test]
fn disassembly_is_stable() {
    // Disassembling the reassembled program gives the same text (a fixed
    // point after one round).
    let w = heapdrag::workloads::workload_by_name("jess").unwrap();
    let p1 = w.original();
    let t1 = disassemble(&p1);
    let p2 = assemble(&t1).expect("assembles");
    let t2 = disassemble(&p2);
    assert_eq!(t1, t2);
}
