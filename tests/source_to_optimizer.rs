//! The whole system, end to end, starting from *source code*: compile
//! mini-Java, profile it, let the static analyses + profile-guided
//! optimizer rewrite the bytecode, and verify the savings — the paper's
//! § 1.2 "profile-based optimizer" vision over a real front end.

use heapdrag::core::{profile, Integrals, SavingsReport, VmConfig};
use heapdrag::lang::compile_source;
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag::vm::{Vm, VmConfig as RawConfig};

fn optimize_and_measure(src: &str, input: &[i64]) -> (SavingsReport, Vec<String>) {
    let original = compile_source(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    let mut optimized = original.clone();
    let outcome = optimize_iteratively(
        &mut optimized,
        input,
        VmConfig::profiling(),
        OptimizerOptions::default(),
        3,
    )
    .expect("optimizer runs");
    // Behaviour must be preserved.
    let o1 = Vm::new(&original, RawConfig::default()).run(input).unwrap();
    let o2 = Vm::new(&optimized, RawConfig::default()).run(input).unwrap();
    assert_eq!(o1.output, o2.output, "behaviour preserved");
    heapdrag::vm::verify::verify_program(&optimized).expect("still verifier-clean");

    let before = profile(&original, input, VmConfig::profiling()).unwrap();
    let after = profile(&optimized, input, VmConfig::profiling()).unwrap();
    let savings = SavingsReport::new(
        Integrals::from_records(&before.records),
        Integrals::from_records(&after.records),
    );
    let applied = outcome
        .applied
        .iter()
        .map(|a| format!("{}", a.kind))
        .collect();
    (savings, applied)
}

#[test]
fn dead_reference_in_source_is_nulled_automatically() {
    // The juru shape, written in mini-Java: a buffer dragged across a
    // tail that never reads it.
    let src = r#"
def main(input: int[]) {
    var buffer: int[] = new int[20000];
    buffer[3] = 77;
    var acc: int = buffer[3];
    var i: int = 0;
    while (i < 2000) {
        var scratch: int[] = new int[12];
        scratch[0] = i;
        i = i + 1;
    }
    print acc;
}
"#;
    let (savings, applied) = optimize_and_measure(src, &[]);
    assert!(
        applied.iter().any(|k| k == "assigning null"),
        "assign-null fired: {applied:?}"
    );
    assert!(
        savings.drag_saving_pct() > 30.0,
        "buffer drag removed: {:.1}%",
        savings.drag_saving_pct()
    );
}

#[test]
fn never_used_allocation_in_source_is_removed() {
    // The raytrace shape: objects initialised via a constructor and never
    // read again.
    let src = r#"
class Shade {
    field rgb: int;
    def init(rgb: int) { this.rgb = rgb; }
}
def main(input: int[]) {
    var i: int = 0;
    var acc: int = 0;
    while (i < 300) {
        var s: Shade = new Shade(i);
        s = null;
        acc = acc + i;
        var scratch: int[] = new int[8];
        scratch[0] = acc;
        i = i + 1;
    }
    print acc;
}
"#;
    let original = compile_source(src).unwrap();
    let mut optimized = original.clone();
    let outcome = optimize_iteratively(
        &mut optimized,
        &[],
        VmConfig::profiling(),
        OptimizerOptions::default(),
        2,
    )
    .unwrap();
    assert!(
        outcome
            .applied
            .iter()
            .any(|a| format!("{}", a.kind) == "code removal"),
        "dead-code removal fired: {:?}",
        outcome.applied
    );
    let o1 = Vm::new(&original, RawConfig::default()).run(&[]).unwrap();
    let o2 = Vm::new(&optimized, RawConfig::default()).run(&[]).unwrap();
    assert_eq!(o1.output, o2.output);
    assert!(
        o2.heap.allocated_bytes < o1.heap.allocated_bytes,
        "shade allocations eliminated: {} -> {}",
        o1.heap.allocated_bytes,
        o2.heap.allocated_bytes
    );
}

#[test]
fn constructor_table_in_source_goes_lazy() {
    // The jack shape in source: a constructor eagerly allocating a table
    // that is rarely consulted.
    let src = r#"
class Table {
    field slots: int[];
    def init() { this.slots = new int[2000]; }
}
class Parser {
    field table: Table;
    def init() { this.table = new Table; }
    def lookup(k: int): int {
        return this.table.slots[k];
    }
}
def main(input: int[]) {
    var g: int = 0;
    var acc: int = 0;
    while (g < 10) {
        var p: Parser = new Parser;
        // tokenize: churn that never consults the table
        var t: int = 0;
        while (t < 120) {
            var tok: int[] = new int[6];
            tok[0] = t;
            acc = acc + tok[0];
            t = t + 1;
        }
        if (g == 7) {
            acc = acc + p.lookup(5);
        }
        g = g + 1;
    }
    print acc;
}
"#;
    let (savings, applied) = optimize_and_measure(src, &[]);
    assert!(
        applied.iter().any(|k| k == "lazy allocation"),
        "lazy allocation fired: {applied:?}"
    );
    assert!(
        savings.drag_saving_pct() > 25.0,
        "table drag removed: {:.1}%",
        savings.drag_saving_pct()
    );
}

#[test]
fn static_analyses_type_source_compiled_bytecode_precisely() {
    // The global type fixpoint resolves chained field reads in compiled
    // source, so the §5 analyses see class-precise receivers.
    let src = r#"
class Inner { field n: int; }
class Outer {
    field inner: Inner;
    def init() { this.inner = new Inner; }
}
def main(input: int[]) {
    var o: Outer = new Outer;
    print o.inner.n;
}
"#;
    let p = compile_source(src).unwrap();
    let cg = heapdrag::analysis::CallGraph::build(&p);
    let usage = heapdrag::analysis::UsageAnalysis::build(&p, &cg);
    let outer = p.class_by_name("Outer").unwrap();
    let inner = p.class_by_name("Inner").unwrap();
    assert!(
        usage.field_is_read(&p, (outer, 0)),
        "Outer.inner read through the chain"
    );
    assert!(usage.field_is_read(&p, (inner, 0)), "Inner.n read");
}

#[test]
fn write_only_source_field_found_by_usage_analysis() {
    let src = r#"
class Node {
    field used: int;
    field debugTag: int;
    def init(v: int) { this.used = v; this.debugTag = v * 2; }
}
def main(input: int[]) {
    var n: Node = new Node(4);
    print n.used;
}
"#;
    let p = compile_source(src).unwrap();
    let cg = heapdrag::analysis::CallGraph::build(&p);
    let usage = heapdrag::analysis::UsageAnalysis::build(&p, &cg);
    let node = p.class_by_name("Node").unwrap();
    let wo = usage.write_only_fields(&p);
    // Field indices follow declaration order: used=0, debugTag=1.
    assert!(wo.contains(&(node, 1)), "debugTag write-only: {wo:?}");
    assert!(!wo.contains(&(node, 0)));
}
