//! The differential metrics oracle: the on-line phase's reconciliation
//! counters (published by the profiler while the VM runs) must agree
//! *exactly* with the counters the off-line phase re-derives from the log
//! file — and the off-line side must publish the same numbers for every
//! shard count, because the sharded ingest is deterministic.
//!
//! Any drift here means an event was double-counted, dropped, or counted
//! on a hot path that races the observer — exactly the bugs a metrics
//! layer exists to catch.

use heapdrag::core::{profile_with, Pipeline, ProfileRun, ReportSections, VmConfig};
use heapdrag::obs::{Registry, Snapshot};
use heapdrag::vm::{OpcodeClass, Program, SiteId};
use heapdrag::workloads::workload_by_name;

fn write_log(run: &ProfileRun, program: &Program) -> String {
    let mut buf = Vec::new();
    Pipeline::options().write_to(run, program, &mut buf).expect("writes");
    String::from_utf8(buf).expect("text log is utf-8")
}

/// The counters both phases publish under identical names.
const RECONCILED_COUNTERS: [&str; 5] = [
    "heapdrag_objects_created_total",
    "heapdrag_alloc_bytes_total",
    "heapdrag_objects_reclaimed_total",
    "heapdrag_objects_at_exit_total",
    "heapdrag_deep_gc_samples_total",
];

const END_TIME_GAUGE: &str = "heapdrag_end_time_bytes";

/// Workloads exercised by the oracle: one collection-heavy benchmark
/// (`jess`), one with large at-exit residue (`jack`), and one
/// allocation-site-diverse one (`juru`).
const WORKLOADS: [&str; 3] = ["jess", "jack", "juru"];

fn reconciled(snapshot: &Snapshot) -> Vec<(String, i64)> {
    let mut out: Vec<(String, i64)> = RECONCILED_COUNTERS
        .iter()
        .map(|&k| {
            let v = *snapshot
                .counters
                .get(k)
                .unwrap_or_else(|| panic!("snapshot is missing counter `{k}`"));
            (k.to_string(), i64::try_from(v).unwrap())
        })
        .collect();
    let end = *snapshot
        .gauges
        .get(END_TIME_GAUGE)
        .unwrap_or_else(|| panic!("snapshot is missing gauge `{END_TIME_GAUGE}`"));
    out.push((END_TIME_GAUGE.to_string(), end));
    out
}

/// Runs the off-line phase over `log_text` with `shards` workers into a
/// fresh registry, publishing everything the CLI's `report` command would.
fn offline_snapshot(log_text: &str, shards: usize) -> Snapshot {
    let registry = Registry::new();
    let pipe = Pipeline::options().shards(shards);
    let ingested = pipe.ingest_bytes(log_text).expect("log parses");
    let (parsed, parse_metrics) = (ingested.log, ingested.metrics);
    let (report, analyze_metrics) =
        pipe.analyze_records(&parsed.records, |c| Some(SiteId(c.0)));
    parse_metrics.publish("parse", &registry);
    analyze_metrics.publish("analyze", &registry);
    parsed.publish_metrics(&registry);
    report.publish_metrics(&registry);
    registry.snapshot()
}

#[test]
fn online_metrics_reconcile_with_offline_for_every_workload_and_shard_count() {
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("workload exists");
        let program = w.original();
        let input = (w.default_input)();

        let online = Registry::new();
        let run = profile_with(&program, &input, VmConfig::profiling(), Some(&online))
            .expect("profiles");
        let online_snap = online.snapshot();
        let want = reconciled(&online_snap);

        // The on-line counters agree with the run itself.
        assert!(
            run.outcome.deep_gcs > 0,
            "{name}: workload too small to exercise deep GC sampling"
        );
        assert_eq!(
            online_snap.counters["heapdrag_objects_created_total"],
            run.records.len() as u64,
            "{name}: created == records"
        );
        assert_eq!(
            online_snap.counters["heapdrag_deep_gc_samples_total"],
            run.samples.len() as u64,
            "{name}: samples counter == sample list"
        );

        let log_text = write_log(&run, &program);
        for shards in [1usize, 4, 7] {
            let offline_snap = offline_snapshot(&log_text, shards);
            let got = reconciled(&offline_snap);
            assert_eq!(
                want, got,
                "{name}: off-line metrics at --shards {shards} must reconcile with on-line"
            );
        }
    }
}

#[test]
fn offline_reconcilable_surface_is_shard_invariant() {
    // Beyond matching the on-line side, every non-timing off-line metric
    // (counts, group sizes, report gauges) must be identical across shard
    // counts. Timing metrics (`*_us` histograms/gauges) are wall-clock and
    // are excluded.
    let w = workload_by_name("jess").expect("workload exists");
    let run = profile_with(
        &w.original(),
        &(w.default_input)(),
        VmConfig::profiling(),
        None,
    )
    .expect("profiles");
    let log_text = write_log(&run, &w.original());

    let stable = |snap: &Snapshot| -> Vec<(String, i64)> {
        let mut out: Vec<(String, i64)> = Vec::new();
        for (k, v) in &snap.counters {
            // Shard/chunk counts — and per-shard *touched-group* counts,
            // where a group spanning two shards is counted twice —
            // legitimately differ with the worker count; record and
            // sample totals must not.
            if k.ends_with("_shards_total") || k.ends_with("_groups_total") {
                continue;
            }
            out.push((k.clone(), i64::try_from(*v).unwrap()));
        }
        for (k, v) in &snap.gauges {
            if k.ends_with("_us") {
                continue;
            }
            out.push((k.clone(), *v));
        }
        out
    };

    let baseline = offline_snapshot(&log_text, 1);
    let want = stable(&baseline);
    assert!(
        !want.is_empty(),
        "stable surface should contain reconciliation and report metrics"
    );
    for shards in [4usize, 7] {
        let got = stable(&offline_snapshot(&log_text, shards));
        assert_eq!(want, got, "--shards {shards} changed a non-timing metric");
    }
}

#[test]
fn salvaged_corrupt_logs_are_shard_invariant_end_to_end() {
    // Salvage parity: deterministic corruptions of a real workload's log
    // must produce the same ParsedLog, the same SalvageSummary, the same
    // `heapdrag_salvage_*` metric snapshot, and a byte-identical rendered
    // report at --shards 1/4/7. The chunk size is pinned because error
    // chunk indices follow the chunking, which the scan (not the worker
    // count) decides.
    let w = workload_by_name("jess").expect("workload exists");
    let run = profile_with(
        &w.original(),
        &(w.default_input)(),
        VmConfig::profiling(),
        None,
    )
    .expect("profiles");
    let clean = write_log(&run, &w.original());

    // Three deterministic corruptions: a 60% truncation, a deleted record
    // line mid-file, and a duplicated block of lines.
    let truncated = clean[..clean.len() * 60 / 100].to_string();
    let deleted = {
        let lines: Vec<&str> = clean.split_inclusive('\n').collect();
        let mut out = String::new();
        for (i, l) in lines.iter().enumerate() {
            if i != lines.len() / 2 {
                out.push_str(l);
            }
        }
        out
    };
    let duplicated = {
        let lines: Vec<&str> = clean.split_inclusive('\n').collect();
        let mid = lines.len() / 3;
        let mut out: String = lines[..mid + 4].concat();
        out.push_str(&lines[mid..mid + 4].concat());
        out.push_str(&lines[mid + 4..].concat());
        out
    };

    for (what, text) in [
        ("truncated", &truncated),
        ("deleted-line", &deleted),
        ("duplicated-block", &duplicated),
    ] {
        let ingest = |shards: usize| {
            let pipe = Pipeline::options()
                .shards(shards)
                .chunk_records(256)
                .salvage(None);
            let ingested = pipe.ingest_bytes(text).expect("salvage succeeds");
            let (report, _) =
                pipe.analyze_records(&ingested.log.records, |c| Some(SiteId(c.0)));
            let rendered = ReportSections::standard(&report, &ingested.log).render()
                + &ingested.salvage.render_footer();
            let registry = Registry::new();
            ingested.salvage.publish_metrics(&registry);
            (ingested.log, ingested.salvage, rendered, registry.render_json())
        };
        let baseline = ingest(1);
        // Deleting or duplicating a *complete* well-formed line can be
        // invisible (a missing record) or only show as duplicates; a 60%
        // byte truncation always tears a line and loses the end marker.
        if what == "truncated" {
            assert!(
                !baseline.1.is_clean(),
                "{what}: corruption must be visible to salvage"
            );
        }
        for shards in [4usize, 7] {
            let got = ingest(shards);
            assert_eq!(got.0, baseline.0, "{what}: ParsedLog at --shards {shards}");
            assert_eq!(
                got.1, baseline.1,
                "{what}: SalvageSummary at --shards {shards}"
            );
            assert_eq!(
                got.2, baseline.2,
                "{what}: rendered report at --shards {shards}"
            );
            assert_eq!(
                got.3, baseline.3,
                "{what}: salvage metrics at --shards {shards}"
            );
        }
    }
}

#[test]
fn vm_level_metrics_agree_with_run_outcome() {
    let w = workload_by_name("juru").expect("workload exists");
    let registry = Registry::new();
    let run = profile_with(
        &w.original(),
        &(w.default_input)(),
        VmConfig::profiling(),
        Some(&registry),
    )
    .expect("profiles");
    let snap = registry.snapshot();

    let dispatch_total: u64 = OpcodeClass::ALL
        .iter()
        .filter_map(|c| {
            snap.counters
                .get(&format!("vm_dispatch_total{{class=\"{}\"}}", c.name()))
        })
        .sum();
    assert_eq!(
        dispatch_total, run.outcome.steps,
        "per-class dispatch counters must sum to the step count"
    );
    assert_eq!(
        snap.counters["vm_deep_gc_total"],
        run.outcome.deep_gcs,
        "deep-GC counter matches the outcome"
    );
    assert_eq!(
        snap.counters["vm_heap_alloc_bytes_total"],
        run.outcome.heap.allocated_bytes,
        "allocated-bytes counter matches the heap stats"
    );
    assert_eq!(
        snap.counters["vm_heap_alloc_objects_total"],
        run.outcome.heap.allocated_objects,
        "allocated-objects counter matches the heap stats"
    );
}
