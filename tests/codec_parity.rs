//! Cross-format parity: the same `ProfileRun` encoded as text
//! "heapdrag-log v1" and as binary HDLOG v2 must autodetect correctly and
//! ingest to identical `ParsedLog`s — and byte-identical rendered drag
//! reports — at every shard count. This is the tentpole invariant of the
//! codec abstraction: the format is a transport detail, never visible in
//! the analysis.

use heapdrag::core::{profile, DragAnalyzer, LogFormat, Pipeline, ReportSections, VmConfig};
use heapdrag::vm::SiteId;
use heapdrag::workloads::workload_by_name;

const WORKLOADS: [&str; 3] = ["jess", "jack", "juru"];
const SHARDS: [usize; 3] = [1, 4, 7];

fn pipe(shards: usize) -> Pipeline {
    Pipeline::options().shards(shards).chunk_records(64)
}

fn encode(run: &heapdrag::core::ProfileRun, program: &heapdrag::vm::Program, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    Pipeline::options()
        .format(format)
        .write_to(run, program, &mut buf)
        .expect("writes");
    buf
}

#[test]
fn text_and_binary_logs_ingest_identically_at_every_shard_count() {
    for name in WORKLOADS {
        let w = workload_by_name(name).expect("workload exists");
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling())
            .unwrap_or_else(|e| panic!("{name} profiles: {e}"));

        let text = encode(&run, &program, LogFormat::Text);
        let binary = encode(&run, &program, LogFormat::Binary);
        assert_eq!(LogFormat::detect(&text), LogFormat::Text);
        assert_eq!(LogFormat::detect(&binary), LogFormat::Binary);
        assert!(
            binary.len() < text.len(),
            "{name}: the binary encoding is smaller"
        );

        let mut reports = Vec::new();
        for shards in SHARDS {
            let t = pipe(shards)
                .ingest_bytes(&text)
                .unwrap_or_else(|e| panic!("{name}: text ingests at {shards} shards: {e}"));
            let b = pipe(shards)
                .ingest_bytes(&binary)
                .unwrap_or_else(|e| panic!("{name}: binary ingests at {shards} shards: {e}"));
            assert_eq!(t.log, b.log, "{name}: ParsedLogs differ at {shards} shards");
            assert_eq!(t.salvage.format, LogFormat::Text);
            assert_eq!(b.salvage.format, LogFormat::Binary);
            assert!(t.salvage.is_clean() && b.salvage.is_clean());

            // Render the full drag report from each and require bytes.
            let render_of = |log: &heapdrag::core::ParsedLog| {
                let analysis =
                    DragAnalyzer::new().analyze(&log.records, |c| Some(SiteId(c.0)));
                ReportSections::standard(&analysis, log).render()
            };
            let rt = render_of(&t.log);
            assert_eq!(
                rt,
                render_of(&b.log),
                "{name}: reports differ across formats at {shards} shards"
            );
            reports.push(rt);
        }
        assert!(
            reports.windows(2).all(|w| w[0] == w[1]),
            "{name}: the report depends on the shard count"
        );

        // Salvage mode on clean input is format-agnostic too, apart from
        // the reported input format itself.
        let ts = pipe(4).salvage(None).ingest_bytes(&text).expect("salvage text");
        let bs = pipe(4).salvage(None).ingest_bytes(&binary).expect("salvage binary");
        assert_eq!(ts.log, bs.log, "{name}: salvage-mode logs differ");
        assert!(
            ts.salvage.render_footer().contains("input format:       text"),
            "{name}: text footer names its format"
        );
        assert!(
            bs.salvage.render_footer().contains("input format:       binary"),
            "{name}: binary footer names its format"
        );
    }
}
