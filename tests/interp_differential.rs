//! Differential harness: the fast pre-decoded interpreter must be
//! *observably identical* to the reference `step()` loop. "Observably"
//! means everything a user of the tool can see: program output, step
//! counts, per-opcode-class dispatch tallies, heap statistics, the
//! profiler's object records and GC samples, and the encoded trace in
//! both log formats — byte for byte.
//!
//! Two layers:
//!
//! 1. every built-in workload on both of its inputs (the programs the
//!    paper's tables are built from), and
//! 2. a seeded property sweep over random programs from
//!    `heapdrag_testkit::genprog` — megamorphic call sites, exception
//!    unwinds, finalizers and stack-edge shapes the workloads never hit.
//!    Replay a failure with `TESTKIT_SEED=<seed> TESTKIT_CASES=1`.

use heapdrag::core::{
    profile, DragAnalyzer, LogFormat, Pipeline, ProfileRun, ReportSections, VmConfig,
};
use heapdrag::vm::{InterpreterKind, Program, SiteId, Vm};
use heapdrag::workloads::all_workloads;
use heapdrag_testkit::{check, random_program, Rng};

fn with_kind(mut config: VmConfig, kind: InterpreterKind) -> VmConfig {
    config.interpreter = kind;
    config
}

fn encode(run: &ProfileRun, program: &Program, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    Pipeline::options()
        .format(format)
        .write_to(run, program, &mut buf)
        .expect("encoding a profile run cannot fail on a Vec");
    buf
}

/// Renders the end-user drag report from encoded log bytes.
fn report(bytes: &[u8]) -> String {
    let parsed = Pipeline::options()
        .ingest_bytes(bytes)
        .expect("round-trip ingest");
    let analysis = DragAnalyzer::new().analyze(&parsed.log.records, |c| Some(SiteId(c.0)));
    ReportSections::standard(&analysis, &parsed.log).render()
}

/// Asserts fast and reference interpreters agree on one (program, input,
/// profiling-config) triple, across every observable surface.
fn assert_profiled_parity(program: &Program, input: &[i64], config: VmConfig, what: &str) {
    let fast = profile(program, input, with_kind(config.clone(), InterpreterKind::Fast));
    let reference = profile(
        program,
        input,
        with_kind(config, InterpreterKind::Reference),
    );
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.outcome, r.outcome, "{what}: outcomes differ");
            for format in [LogFormat::Text, LogFormat::Binary] {
                let fb = encode(&f, program, format);
                let rb = encode(&r, program, format);
                assert_eq!(fb, rb, "{what}: {format:?} logs are not byte-identical");
                assert_eq!(report(&fb), report(&rb), "{what}: drag reports differ");
            }
        }
        (Err(f), Err(r)) => assert_eq!(f, r, "{what}: errors differ"),
        (f, r) => panic!(
            "{what}: interpreters disagree on success: fast={:?} reference={:?}",
            f.map(|p| p.outcome),
            r.map(|p| p.outcome)
        ),
    }
}

/// Asserts parity of a plain (unobserved, NullObserver-path) run.
fn assert_plain_parity(program: &Program, input: &[i64], config: VmConfig, what: &str) {
    let fast = Vm::new(program, with_kind(config.clone(), InterpreterKind::Fast)).run(input);
    let reference = Vm::new(program, with_kind(config, InterpreterKind::Reference)).run(input);
    assert_eq!(fast, reference, "{what}: plain runs differ");
}

#[test]
fn every_workload_is_interpreter_invariant() {
    for w in all_workloads() {
        let program = w.original();
        for (tag, input) in [
            ("default", (w.default_input)()),
            ("alternate", (w.alternate_input)()),
        ] {
            let what = format!("{} ({tag} input)", w.name);
            assert_plain_parity(&program, &input, VmConfig::default(), &what);
            assert_profiled_parity(&program, &input, VmConfig::profiling(), &what);
        }
    }
}

/// A profiling configuration scaled down to generated-program heaps, so
/// deep GCs (and with them finalizers, sampling, and the batched use
/// flush) actually fire; half the cases run the generational collector.
fn small_heap_config(generational: bool) -> VmConfig {
    let mut c = VmConfig::profiling();
    c.deep_gc_interval = Some(4 * 1024);
    c.gc_trigger = Some(16 * 1024);
    c.generational = generational;
    c.nursery_bytes = 2 * 1024;
    c
}

#[test]
fn random_programs_are_interpreter_invariant() {
    check("fast/reference differential", 256, |rng: &mut Rng| {
        let (program, input) = random_program(rng);
        let generational = rng.bool();
        assert_plain_parity(&program, &input, VmConfig::default(), "random plain");
        assert_profiled_parity(
            &program,
            &input,
            small_heap_config(generational),
            "random profiled",
        );
    });
}

#[test]
fn step_budget_exhaustion_is_interpreter_invariant() {
    // Truncating the same program at every budget N must fail (or
    // succeed) identically — this walks the budget boundary through the
    // middle of fused superinstruction pairs.
    let mut rng = Rng::new(0xd1ff);
    let (program, input, full) = loop {
        let (p, i) = random_program(&mut rng);
        if let Ok(o) = Vm::new(&p, VmConfig::default()).run(&i) {
            break (p, i, o);
        }
    };
    let last = full.steps;
    for budget in (1..=last.min(64)).chain([last - 1, last, last + 1]) {
        let config = VmConfig {
            max_steps: Some(budget),
            ..VmConfig::default()
        };
        assert_plain_parity(&program, &input, config, &format!("budget {budget}"));
    }
}
