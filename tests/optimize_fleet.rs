//! End-to-end tests of the fleet optimizer (`heapdrag optimize-fleet`):
//! the closed profile → rank → rewrite → verify → re-profile loop.
//!
//! Pinned here:
//!
//! * the scoreboard is **deterministic**: byte-identical text and JSON at
//!   shard counts 1/4/7 and pool sizes 1/4;
//! * rejected rewrites are **reported, not swallowed**, and never reach
//!   disk (the `rejected-by-verify` leg, driven by an injected verifier);
//! * the full nine-workload fleet reduces drag on at least three
//!   workloads with every rewrite verified or rejected — the paper's
//!   loop, closed mechanically.

use heapdrag::fleet::{optimize_fleet, FleetOptions, InputSelection, Scoreboard};
use heapdrag::transform::{Equivalence, RewriteOutcome};
use heapdrag::vm::error::VmError;
use heapdrag::vm::program::Program;
use heapdrag::vm::retain::RetainConfig;

fn fleet(workloads: &[&str], shards: usize, pool: usize, inputs: InputSelection) -> Scoreboard {
    let options = FleetOptions {
        workloads: workloads.iter().map(|s| s.to_string()).collect(),
        inputs,
        shards,
        pool_workers: pool,
        ..FleetOptions::default()
    };
    optimize_fleet(&options, None).expect("fleet run")
}

#[test]
fn scoreboard_is_byte_identical_across_shards_and_pools() {
    let workloads = ["jess", "juru", "analyzer"];
    let baseline = fleet(&workloads, 1, 1, InputSelection::Both);
    let base_text = baseline.render_text();
    let base_json = baseline.render_json();
    assert!(
        baseline.jobs.iter().all(|j| j.error.is_none()),
        "baseline jobs failed: {base_text}"
    );

    for (shards, pool) in [(4, 4), (7, 1), (7, 4), (1, 4)] {
        let board = fleet(&workloads, shards, pool, InputSelection::Both);
        assert_eq!(
            base_text,
            board.render_text(),
            "text scoreboard diverged at shards={shards} pool={pool}"
        );
        assert_eq!(
            base_json,
            board.render_json(),
            "json scoreboard diverged at shards={shards} pool={pool}"
        );
    }
}

#[test]
fn unknown_workload_is_an_error_not_a_job() {
    let options = FleetOptions {
        workloads: vec!["jess".into(), "nope".into()],
        ..FleetOptions::default()
    };
    let err = optimize_fleet(&options, None).unwrap_err();
    assert!(err.contains("nope"), "unhelpful error: {err}");
}

/// A verifier that rejects every rewrite: whatever the optimizer applies
/// must be reverted, reported as `rejected-by-verify`, and kept off disk.
fn reject_everything(
    _original: &Program,
    _revised: &Program,
    inputs: &[Vec<i64>],
) -> Result<Equivalence, VmError> {
    Ok(Equivalence::Different {
        input: inputs.first().cloned().unwrap_or_default(),
        original: vec![0],
        revised: vec![1],
    })
}

#[test]
fn rejected_rewrites_are_reported_and_never_written() {
    let options = FleetOptions {
        workloads: vec!["jess".into(), "juru".into()],
        verify: reject_everything,
        ..FleetOptions::default()
    };
    let board = optimize_fleet(&options, None).expect("fleet run");

    let rejected: usize = board
        .jobs
        .iter()
        .map(|j| j.outcome_count(RewriteOutcome::RejectedByVerify))
        .sum();
    assert!(rejected > 0, "the stub verifier never fired");

    for j in &board.jobs {
        assert!(j.error.is_none(), "{}/{} failed: {:?}", j.workload, j.input, j.error);
        // Every rejection is reported with the apply detail *and* the
        // revert reason — not swallowed.
        for a in &j.attempts {
            assert_ne!(
                a.outcome,
                RewriteOutcome::Applied,
                "a rewrite survived a rejecting verifier: {a:?}"
            );
            if a.outcome == RewriteOutcome::RejectedByVerify {
                assert!(
                    a.detail.contains("reverted"),
                    "rejection lacks revert detail: {a:?}"
                );
            }
        }
        // Nothing committed → the profile never changes and there is no
        // revised program to write.
        assert!(j.applied.is_empty());
        assert!(j.revised.is_none());
        assert_eq!(j.before, j.after, "{}/{} drag moved", j.workload, j.input);
    }

    // The scoreboard surfaces the rejections…
    let text = board.render_text();
    assert!(text.contains("rejected-by-verify"), "{text}");
    // …and write_revised refuses to write anything.
    let dir = std::env::temp_dir().join(format!("heapdrag-fleet-reject-{}", std::process::id()));
    let written = board.write_revised(&dir).expect("write_revised");
    assert!(written.is_empty(), "rejected rewrites reached disk: {written:?}");
    let leftover = std::fs::read_dir(&dir).expect("dir exists").count();
    assert_eq!(leftover, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The retaining-path acceptance loop: on `analyzer`, the drag-heavy
/// vector-element sites are rooted in `static analyzer.Mutability.graph`,
/// but their reference locals are all still live at the last use — so
/// liveness-driven assign-null has nothing to insert and the site no-ops.
/// With retain sampling on, the sampled path names the static holder and
/// the optimizer places `pushnull; putstatic` after the profile's
/// dominant last use instead — a rewrite it could not place before, and
/// still gated by the output-differential verifier like every other.
#[test]
fn path_anchoring_places_assign_null_where_liveness_cannot() {
    let base_options = FleetOptions {
        workloads: vec!["analyzer".into()],
        inputs: InputSelection::Default,
        ..FleetOptions::default()
    };
    let baseline = optimize_fleet(&base_options, None).expect("baseline fleet run");
    assert_eq!(baseline.total_path_anchored(), 0);
    assert!(
        baseline.jobs[0]
            .attempts
            .iter()
            .any(|a| a.detail.contains("no dead reference locals found")),
        "precondition lost: liveness now places every assign-null on analyzer:\n{}",
        baseline.render_text()
    );
    assert!(
        !baseline.render_text().contains("path-anchored"),
        "scoreboard mentions path anchoring without sampling:\n{}",
        baseline.render_text()
    );

    let retain_options = FleetOptions {
        retain: RetainConfig::from_rate(0.25),
        ..base_options
    };
    let board = optimize_fleet(&retain_options, None).expect("retain fleet run");
    let job = &board.jobs[0];
    assert!(job.error.is_none(), "{:?}", job.error);
    assert!(
        board.total_path_anchored() >= 1,
        "no path-anchored assign-null placed:\n{}",
        board.render_text()
    );
    for a in job.attempts.iter().filter(|a| a.path_anchored) {
        assert_eq!(a.outcome, RewriteOutcome::Applied, "{a:?}");
        assert!(
            a.detail.contains("path-anchored: nulled static analyzer.Mutability.graph"),
            "{a:?}"
        );
    }
    // The placement is reported in both renderings…
    let text = board.render_text();
    assert!(
        text.contains("path-anchored assign-null:"),
        "scoreboard line missing:\n{text}"
    );
    assert!(board.render_json().contains("\"path_anchored\": true"));
    // …and the committed program still passes the output-differential
    // check on both stock inputs, like every fleet rewrite.
    let revised = job.revised.as_ref().expect("rewrites were committed");
    let w = heapdrag::workloads::workload_by_name("analyzer").unwrap();
    let verdict = heapdrag::transform::check_equivalence(
        &w.original(),
        revised,
        &[(w.default_input)(), (w.alternate_input)()],
    )
    .expect("revised program runs");
    assert_eq!(verdict, Equivalence::Same);

    // Sampling is seeded: the whole retain-driven scoreboard is
    // reproducible byte-for-byte.
    let again = optimize_fleet(&retain_options, None).expect("repeat fleet run");
    assert_eq!(board.render_text(), again.render_text());
    assert_eq!(board.render_json(), again.render_json());
}

#[test]
fn full_fleet_reduces_drag_with_every_rewrite_verified() {
    let board = fleet(&[], 4, 4, InputSelection::Default);
    assert_eq!(board.jobs.len(), 9, "all nine workloads");
    assert!(
        board.jobs.iter().all(|j| j.error.is_none()),
        "jobs failed:\n{}",
        board.render_text()
    );
    assert!(
        board.jobs_with_reduction() >= 3,
        "expected ≥3 workloads with nonzero drag reduction:\n{}",
        board.render_text()
    );
    for j in &board.jobs {
        // Every attempt carries the stable taxonomy; every *applied* one
        // passed the output-differential check by construction, so the
        // committed program must agree with the original on both inputs.
        for a in &j.attempts {
            assert!(matches!(
                a.outcome.as_str(),
                "applied" | "rejected-by-analysis" | "rejected-by-verify" | "no-op"
            ));
        }
        assert_eq!(
            j.outcome_count(RewriteOutcome::Applied),
            j.applied.len(),
            "{}/{} taxonomy out of sync",
            j.workload,
            j.input
        );
        if let Some(revised) = &j.revised {
            let w = heapdrag::workloads::workload_by_name(&j.workload).unwrap();
            let verdict = heapdrag::transform::check_equivalence(
                &w.original(),
                revised,
                &[(w.default_input)(), (w.alternate_input)()],
            )
            .expect("revised program runs");
            assert_eq!(verdict, Equivalence::Same, "{}/{}", j.workload, j.input);
        } else {
            assert!(j.applied.is_empty());
        }
    }

    // Metrics fold: publishing the scoreboard must reconcile with it.
    let registry = heapdrag::obs::Registry::new();
    board.publish_metrics(&registry);
    let snapshot = registry.render_prometheus();
    assert!(snapshot.contains("heapdrag_optimize_jobs_total 9"), "{snapshot}");
    let applied: usize = board.jobs.iter().map(|j| j.applied.len()).sum();
    assert!(
        snapshot.contains(&format!(
            "heapdrag_optimize_attempts_total{{outcome=\"applied\"}} {applied}"
        )),
        "{snapshot}"
    );
}
