//! The automated pipeline over the whole suite: profile → optimize →
//! verify → re-profile. The optimizer must never change behaviour and
//! never regress space on any benchmark/input.

use heapdrag::core::{profile, Integrals, SavingsReport, VmConfig};
use heapdrag::transform::optimizer::{optimize_iteratively, OptimizerOptions};
use heapdrag::transform::{check_equivalence, Equivalence};
use heapdrag::workloads::all_workloads;

#[test]
fn optimizer_preserves_behaviour_on_all_benchmarks_and_inputs() {
    for w in all_workloads() {
        let original = w.original();
        let default_input = (w.default_input)();
        let mut optimized = original.clone();
        optimize_iteratively(
            &mut optimized,
            &default_input,
            VmConfig::profiling(),
            OptimizerOptions::default(),
            2,
        )
        .expect("optimizer runs");

        // Verified not only on the profiled input but also on the
        // alternate one (the paper's multiple-input check, §3.2).
        let inputs = vec![default_input, (w.alternate_input)()];
        let eq = check_equivalence(&original, &optimized, &inputs).expect("both run");
        assert_eq!(eq, Equivalence::Same, "{}", w.name);
    }
}

#[test]
fn optimizer_never_regresses_space() {
    for w in all_workloads() {
        let original = w.original();
        let input = (w.default_input)();
        let mut optimized = original.clone();
        optimize_iteratively(
            &mut optimized,
            &input,
            VmConfig::profiling(),
            OptimizerOptions::default(),
            2,
        )
        .expect("optimizer runs");
        let before = profile(&original, &input, VmConfig::profiling()).expect("runs");
        let after = profile(&optimized, &input, VmConfig::profiling()).expect("runs");
        let s = SavingsReport::new(
            Integrals::from_records(&before.records),
            Integrals::from_records(&after.records),
        );
        assert!(
            s.space_saving_pct() > -1.0,
            "{}: space saving {:.2}% must not regress",
            w.name,
            s.space_saving_pct()
        );
    }
}

#[test]
fn manual_revisions_beat_or_match_no_op_on_every_benchmark() {
    // The Table 2 relation: every revised variant's reachable integral is
    // at most the original's (db: equal).
    for w in all_workloads() {
        let input = (w.default_input)();
        let o = profile(&w.original(), &input, VmConfig::profiling()).expect("runs");
        let r = profile(&w.revised(), &input, VmConfig::profiling()).expect("runs");
        let io = Integrals::from_records(&o.records);
        let ir = Integrals::from_records(&r.records);
        assert!(
            ir.reachable <= io.reachable,
            "{}: revised reachable {} vs original {}",
            w.name,
            ir.reachable,
            io.reachable
        );
    }
}
