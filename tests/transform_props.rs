//! Property tests for the transformations: on randomly generated
//! programs, assign-null and dead-code removal must preserve output while
//! never increasing the space-time integrals.

use heapdrag::core::{profile, Integrals, VmConfig};
use heapdrag::transform::{assign_null_program, remove_all_dead_allocations};
use heapdrag::vm::builder::ProgramBuilder;
use heapdrag::vm::class::Visibility;
use heapdrag::vm::{Program, Vm, VmConfig as RawConfig};
use heapdrag_testkit::{check, Rng};

/// One statement of the generated programs (ints in locals 1–2, refs in
/// locals 3–5).
#[derive(Debug, Clone)]
enum Stmt {
    SetInt(u16, i32),
    Add(u16, u16),
    AllocUseObj { local: u16, v: i32 },
    AllocDeadObj { local: u16 },
    ReadField { from: u16, into: u16 },
    Drop(u16),
    Print(u16),
    Churn(u8),
}

fn stmt(rng: &mut Rng) -> Stmt {
    match rng.range_u32(0, 8) {
        0 => Stmt::SetInt(rng.range_u16(1, 3), rng.range_i32(-50, 50)),
        1 => Stmt::Add(rng.range_u16(1, 3), rng.range_u16(1, 3)),
        2 => Stmt::AllocUseObj {
            local: rng.range_u16(3, 6),
            v: rng.range_i32(-20, 20),
        },
        3 => Stmt::AllocDeadObj {
            local: rng.range_u16(3, 6),
        },
        4 => Stmt::ReadField {
            from: rng.range_u16(3, 6),
            into: rng.range_u16(1, 3),
        },
        5 => Stmt::Drop(rng.range_u16(3, 6)),
        6 => Stmt::Print(rng.range_u16(1, 3)),
        _ => Stmt::Churn(rng.range_u8(1, 30)),
    }
}

fn stmts(rng: &mut Rng, max: usize) -> Vec<Stmt> {
    rng.vec(0, max, stmt)
}

fn build(stmts: &[Stmt], branch_stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new();
    let class = b
        .begin_class("T.Obj")
        .field("f", Visibility::Private)
        .finish();
    let main = b.declare_method("main", None, true, 1, 6);
    {
        let mut m = b.begin_body(main);
        for l in 1..=2 {
            m.push_int(0).store(l);
        }
        for l in 3..=5 {
            m.new_obj(class).store(l);
            m.load(l).push_int(0).putfield(0);
        }
        let emit = |m: &mut heapdrag::vm::builder::MethodBuilder<'_>, stmts: &[Stmt], tag: usize| {
            for (k, s) in stmts.iter().enumerate() {
                match s {
                    Stmt::SetInt(l, v) => {
                        m.push_int(*v as i64).store(*l);
                    }
                    Stmt::Add(a, b2) => {
                        m.load(*a).load(*b2).add().store(*a);
                    }
                    Stmt::AllocUseObj { local, v } => {
                        m.new_obj(class).store(*local);
                        m.load(*local).push_int(*v as i64).putfield(0);
                    }
                    Stmt::AllocDeadObj { local } => {
                        // Allocated, stored, then overwritten by null —
                        // dynamic drag, and (if nothing reads it) a
                        // dead-code-removal candidate after nulling.
                        m.new_obj(class).store(*local);
                        m.push_null().store(*local);
                    }
                    Stmt::ReadField { from, into } => {
                        let skip = format!("s{tag}_{k}");
                        m.load(*from).branch_if_null(skip.clone());
                        m.load(*from).getfield(0).store(*into);
                        m.label(skip);
                    }
                    Stmt::Drop(l) => {
                        m.push_null().store(*l);
                    }
                    Stmt::Print(l) => {
                        m.load(*l).print();
                    }
                    Stmt::Churn(n) => {
                        m.push_int(*n as i64).new_array().pop();
                    }
                }
            }
        };
        emit(&mut m, stmts, 0);
        m.load(1).load(2).cmple().branch("taken");
        m.jump("merge");
        m.label("taken");
        emit(&mut m, branch_stmts, 1);
        m.label("merge");
        m.load(1).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("generated program links")
}

#[test]
fn assign_null_preserves_output_and_saves_space() {
    check("assign_null_preserves_output_and_saves_space", 40, |rng| {
        let original = build(&stmts(rng, 20), &stmts(rng, 8));
        let mut revised = original.clone();
        assign_null_program(&mut revised);
        revised.link().expect("still well-formed");

        let a = Vm::new(&original, RawConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&revised, RawConfig::default()).run(&[]).expect("runs");
        assert_eq!(&a.output, &b.output);

        // Space-time never regresses under fine-grained collection.
        let mut cfg = VmConfig::profiling();
        cfg.deep_gc_interval = Some(256);
        let po = profile(&original, &[], cfg.clone()).expect("profiles");
        let pr = profile(&revised, &[], cfg).expect("profiles");
        let io = Integrals::from_records(&po.records);
        let ir = Integrals::from_records(&pr.records);
        assert!(
            ir.reachable <= io.reachable,
            "reachable {} -> {}",
            io.reachable,
            ir.reachable
        );
        assert_eq!(io.in_use, ir.in_use, "uses unchanged");
    });
}

#[test]
fn dead_code_removal_preserves_output() {
    check("dead_code_removal_preserves_output", 40, |rng| {
        let original = build(&stmts(rng, 20), &stmts(rng, 8));
        let mut revised = original.clone();
        let removed = remove_all_dead_allocations(&mut revised);
        revised.link().expect("still well-formed");
        let a = Vm::new(&original, RawConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&revised, RawConfig::default()).run(&[]).expect("runs");
        assert_eq!(&a.output, &b.output);
        assert!(
            b.heap.allocated_bytes <= a.heap.allocated_bytes,
            "removal never allocates more"
        );
        // Note: a strict decrease is NOT guaranteed — a removed allocation
        // may sit on a path the input never executes.
        let _ = removed;
    });
}

#[test]
fn transforms_compose() {
    check("transforms_compose", 40, |rng| {
        let original = build(&stmts(rng, 16), &[]);
        let mut revised = original.clone();
        assign_null_program(&mut revised);
        remove_all_dead_allocations(&mut revised);
        assign_null_program(&mut revised);
        revised.link().expect("still well-formed");
        heapdrag::vm::verify::verify_program(&revised)
            .expect("transformed program passes the bytecode verifier");
        let a = Vm::new(&original, RawConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&revised, RawConfig::default()).run(&[]).expect("runs");
        assert_eq!(a.output, b.output);
    });
}
