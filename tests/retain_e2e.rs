//! End-to-end properties of retaining-path sampling: VM mark → tag-05
//! frames / `retain` lines → salvage → per-site report → byte-identical
//! renderings, on a stock workload.
//!
//! Pinned here:
//!
//! * **rate 0 is absence**: `RetainConfig::from_rate(0.0)` is `None`, and
//!   a run configured that way writes a log byte-identical to a run that
//!   never heard of sampling — old readers and golden diffs are safe;
//! * **sampling is seeded**: two runs with the same config draw the same
//!   samples and write byte-identical logs;
//! * **format parity**: text and binary logs of the same run decode to
//!   the same retains and render byte-identical reports;
//! * **shard/chunk invariance**: the retaining-path section is
//!   byte-identical at 1/4/7 shards and across chunk sizes;
//! * **pre-retain logs still work**: a log without tag-05 frames parses
//!   with no retains and no `retains kept:` salvage line;
//! * **faults only lose samples, never invent them**: under every
//!   structural frame fault, salvaged retains are a subset of the clean
//!   run's, and salvage never panics.

use heapdrag::core::codec::LogFormat;
use heapdrag::core::log::Ingested;
use heapdrag::core::{profile_with, Pipeline, ReportSections, RetainRecord, VmConfig};
use heapdrag::vm::retain::RetainConfig;
use heapdrag::workloads::{workload_by_name, Variant};
use heapdrag_testkit::{check, inject_binary, BinaryFault, Rng};

/// Sampling rate used throughout: high enough that the juru run draws a
/// few hundred samples, so every property has material to bite on.
const RATE: f64 = 0.25;

fn juru_run(retain: Option<RetainConfig>) -> (heapdrag::vm::program::Program, heapdrag::core::ProfileRun) {
    let w = workload_by_name("juru").expect("stock workload");
    let program = (w.build)(Variant::Original);
    let input = (w.default_input)();
    let mut config = VmConfig::profiling();
    config.retain = retain;
    let run = profile_with(&program, &input, config, None).expect("profile");
    (program, run)
}

fn log_bytes(program: &heapdrag::vm::program::Program, run: &heapdrag::core::ProfileRun, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    run.write_log_to(program, format, &mut buf).expect("write log");
    buf
}

fn ingest(bytes: &[u8], shards: usize, chunk: usize) -> Ingested {
    Pipeline::options()
        .shards(shards)
        .chunk_records(chunk)
        .salvage(None)
        .ingest_bytes(bytes)
        .expect("ingest")
}

/// Renders the full report (summary + top sites + sure bets + retaining
/// paths) from an ingested log, the way `heapdrag report` does.
fn render(ingested: &Ingested) -> String {
    let (mut report, _) = Pipeline::options()
        .analyze_records(&ingested.log.records, |_| None);
    report.attach_retains(&ingested.log.retains);
    ReportSections::standard(&report, &ingested.log).render()
}

#[test]
fn rate_zero_means_byte_identical_logs() {
    assert!(RetainConfig::from_rate(0.0).is_none(), "rate 0 is absence");
    assert!(RetainConfig::from_rate(-1.0).is_none());

    let (program, plain) = juru_run(None);
    let (_, zeroed) = juru_run(RetainConfig::from_rate(0.0));
    assert!(plain.retains.is_empty() && zeroed.retains.is_empty());
    for format in [LogFormat::Text, LogFormat::Binary] {
        assert_eq!(
            log_bytes(&program, &plain, format),
            log_bytes(&program, &zeroed, format),
            "{format:?} log differs at rate 0"
        );
    }
}

#[test]
fn sampling_is_seeded_and_reproducible() {
    let (program, a) = juru_run(RetainConfig::from_rate(RATE));
    let (_, b) = juru_run(RetainConfig::from_rate(RATE));
    assert!(!a.retains.is_empty(), "rate {RATE} drew no samples");
    assert_eq!(a.retains, b.retains, "same seed, same draws");
    assert_eq!(
        log_bytes(&program, &a, LogFormat::Binary),
        log_bytes(&program, &b, LogFormat::Binary)
    );

    // A different seed is a genuinely different stream (with ~232 draws
    // the chance of an identical sample set is negligible) — the knob is
    // wired through, not decorative.
    let (_, c) = juru_run(RetainConfig::from_rate_seeded(RATE, 1));
    assert_ne!(a.retains, c.retains, "seed is ignored");
}

#[test]
fn text_and_binary_logs_agree_end_to_end() {
    let (program, run) = juru_run(RetainConfig::from_rate(RATE));
    let text = ingest(&log_bytes(&program, &run, LogFormat::Text), 1, 64);
    let binary = ingest(&log_bytes(&program, &run, LogFormat::Binary), 1, 64);
    assert!(text.salvage.is_clean() && binary.salvage.is_clean());
    assert_eq!(text.log.retains, run.retains, "text roundtrip lost samples");
    assert_eq!(binary.log.retains, run.retains, "binary roundtrip lost samples");
    assert_eq!(render(&text), render(&binary));
    let rendered = render(&text);
    assert!(
        rendered.contains("--- retaining paths: sampled holders at deep-GC marks ---"),
        "section missing:\n{rendered}"
    );
}

#[test]
fn retaining_report_is_shard_and_chunk_invariant() {
    let (program, run) = juru_run(RetainConfig::from_rate(RATE));
    let bytes = log_bytes(&program, &run, LogFormat::Binary);
    let baseline = ingest(&bytes, 1, 64);
    let want = render(&baseline);
    for (shards, chunk) in [(4, 64), (7, 64), (1, 7), (7, 501)] {
        let got = ingest(&bytes, shards, chunk);
        assert_eq!(got.log.retains, baseline.log.retains, "shards={shards} chunk={chunk}");
        assert_eq!(render(&got), want, "shards={shards} chunk={chunk}");
    }
}

#[test]
fn logs_without_retain_frames_parse_with_no_retain_surface() {
    let (program, run) = juru_run(None);
    for format in [LogFormat::Text, LogFormat::Binary] {
        let ingested = ingest(&log_bytes(&program, &run, format), 4, 64);
        assert!(ingested.salvage.is_clean());
        assert!(ingested.log.retains.is_empty());
        assert_eq!(ingested.salvage.retains_kept, 0);
        assert!(
            !ingested.salvage.render_footer().contains("retains kept"),
            "footer mentions retains on a pre-retain log"
        );
        let rendered = render(&ingested);
        assert!(
            !rendered.contains("retaining paths"),
            "report grew a retaining section without samples:\n{rendered}"
        );
    }
}

#[test]
fn structural_faults_never_invent_retain_samples() {
    let (program, run) = juru_run(RetainConfig::from_rate(RATE));
    let clean = log_bytes(&program, &run, LogFormat::Binary);
    let baseline = ingest(&clean, 1, 64);
    assert_eq!(baseline.log.retains, run.retains);
    let is_known = |r: &RetainRecord| run.retains.contains(r);

    for fault in BinaryFault::ALL.into_iter().filter(|f| f.is_structural()) {
        check(
            &format!("retain-salvage-subset[{}]", fault.name()),
            128,
            |rng: &mut Rng| {
                let (bytes, _) = inject_binary(&clean, fault, rng);
                let got = Pipeline::options()
                    .shards(4)
                    .chunk_records(64)
                    .salvage(None)
                    .ingest_bytes(&bytes)
                    .expect("salvage never fails");
                // A frame-duplication fault may replay a window of up to 8
                // intact frames, so the count can exceed the clean run's
                // by at most that window — never by more.
                assert!(
                    got.log.retains.len() <= run.retains.len() + 8,
                    "{}: salvage kept {} retains, clean run had {}",
                    fault.name(),
                    got.log.retains.len(),
                    run.retains.len()
                );
                assert_eq!(got.salvage.retains_kept, got.log.retains.len() as u64);
                for r in &got.log.retains {
                    assert!(
                        is_known(r),
                        "{}: salvage invented a retain sample: {r:?}",
                        fault.name()
                    );
                }
                // The report still renders — possibly without the
                // retaining section, never with a corrupted one.
                let _ = render(&got);
            },
        );
    }
}
