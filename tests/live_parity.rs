//! Live-vs-post-mortem differential suite: with an unbounded window, the
//! in-process live path (VM → SPSC ring → `DragEngine`) must reproduce
//! the file-logging post-mortem path *byte-identically* — the rebuilt
//! trailer records, the GC samples, and the rendered report — for all
//! nine workloads, against the `report` output at both trace formats and
//! shards 1/4/7. And it must do so while actually being live: every run
//! asserts at least one intermediate snapshot carrying coldness data,
//! zero ring drops, and zero unmatched events.

use heapdrag::core::{
    profile, run_live, LiveOptions, LogFormat, Pipeline, ProfileRun, ReportSections, VmConfig,
};
use heapdrag::vm::Program;
use heapdrag::workloads::all_workloads;

fn encode(run: &ProfileRun, program: &Program, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    Pipeline::options()
        .format(format)
        .write_to(run, program, &mut buf)
        .expect("writes");
    buf
}

#[test]
fn unbounded_live_reproduces_the_post_mortem_report_for_all_nine_workloads() {
    let workloads = all_workloads();
    assert_eq!(workloads.len(), 9, "the paper's nine benchmarks");
    for w in workloads {
        let program = w.original();
        let input = (w.default_input)();
        let run = profile(&program, &input, VmConfig::profiling())
            .unwrap_or_else(|e| panic!("{}: profiles: {e}", w.name));

        // Snapshot four times over the run so "live" is not vacuous.
        let every = (run.outcome.end_time / 4).max(1);
        let mut snapshots = Vec::new();
        let live = run_live(
            &program,
            &input,
            VmConfig::profiling(),
            &LiveOptions {
                every,
                keep_records: true,
                ..LiveOptions::default()
            },
            None,
            |s: &str| snapshots.push(s.to_string()),
        )
        .unwrap_or_else(|e| panic!("{}: live run: {e}", w.name));

        assert_eq!(live.dropped, 0, "{}: ring dropped events", w.name);
        assert_eq!(live.unmatched, 0, "{}: unmatched events", w.name);
        assert!(live.snapshots >= 1, "{}: no intermediate snapshot", w.name);
        assert!(
            !live.coldness.is_empty(),
            "{}: no per-site coldness data",
            w.name
        );
        assert!(
            snapshots.iter().all(|s| s.contains("cold (idle >=")),
            "{}: snapshots lack the coldness line",
            w.name
        );

        // Trailer-level parity: the records the consumer rebuilt from raw
        // heap events are exactly the ones the file-logging profiler
        // buffered, in the same order — and so are the GC samples.
        let (records, samples) = live.collected.as_ref().expect("keep_records was set");
        assert_eq!(records, &run.records, "{}: record parity", w.name);
        assert_eq!(samples, &run.samples, "{}: sample parity", w.name);
        assert_eq!(live.end_time, run.outcome.end_time, "{}", w.name);

        // Report-level parity: the live final report starts with the
        // exact bytes `report` prints (the coldness section follows),
        // whichever trace format carried the log and at any shard count.
        let final_text = ReportSections::standard(&live.report, &live)
            .coldness(&live.coldness)
            .render();
        for format in [LogFormat::Text, LogFormat::Binary] {
            let bytes = encode(&run, &program, format);
            for shards in [1usize, 4, 7] {
                let streamed = Pipeline::options()
                    .shards(shards)
                    .analyze_reader(&bytes[..])
                    .unwrap_or_else(|e| panic!("{}: {format} streams: {e}", w.name));
                let want = ReportSections::standard(&streamed.report, &streamed).render();
                assert!(
                    final_text.starts_with(&want),
                    "{}: live final report diverges from `report` \
                     ({format}, {shards} shards)\n--- report ---\n{want}\n--- live ---\n{final_text}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn the_engine_survives_event_streams_with_dropped_allocs() {
    // When the ring overflows, the consumer sees use/free events whose
    // alloc event is gone. The engine must count them as unmatched —
    // exactly — and keep folding, snapshotting, and summarising without
    // panicking, under any seeded pattern of drops and window modes.
    use heapdrag::core::{DragEngine, EngineConfig, WindowSpec};
    use heapdrag::vm::{ChainId, ClassId, ObjectId, SiteId};
    use heapdrag_testkit::{check, Rng};

    check("engine-dropped-allocs", 64, |rng: &mut Rng| {
        let window = if rng.bool() {
            WindowSpec::Rolling {
                window: rng.range_u64(512, 8192),
                advance: rng.range_u64(64, 512),
            }
        } else {
            WindowSpec::Unbounded
        };
        let mut engine = DragEngine::live(
            EngineConfig {
                window,
                ..EngineConfig::default()
            },
            |c: ChainId| Some(SiteId(c.0)),
        );
        let mut clock = 0u64;
        let mut expect_unmatched = 0u64;
        let mut folded = 0u64;
        for i in 0..rng.range_u64(1, 200) {
            let object = ObjectId(i);
            let size = rng.range_u64(8, 256);
            let known = rng.ratio(3, 4);
            clock += size;
            if known {
                engine.observe_alloc(object, ClassId(0), ChainId(i as u32 % 5), size, clock);
            }
            for _ in 0..rng.range_usize(0, 4) {
                clock += rng.range_u64(0, 64);
                engine.observe_use(object, ChainId(i as u32 % 3), clock);
                expect_unmatched += u64::from(!known);
            }
            if rng.ratio(4, 5) {
                clock += rng.range_u64(0, 64);
                let rec = engine.observe_free(object, clock, false);
                assert_eq!(rec.is_some(), known, "free folds iff the alloc arrived");
                expect_unmatched += u64::from(!known);
                folded += u64::from(known);
            }
        }
        folded += engine.flush_residents(clock).len() as u64;
        assert_eq!(engine.unmatched(), expect_unmatched, "unmatched is exact");
        assert_eq!(engine.records(), folded, "only complete objects fold");
        let snap = engine.snapshot();
        assert_eq!(snap.resident_objects, 0, "flush drained every resident");
        let _ = engine.coldness_summary();
    });
}

#[test]
fn live_snapshots_are_deterministic_when_nothing_is_dropped() {
    let w = all_workloads().into_iter().next().expect("a workload");
    let program = w.original();
    let input = (w.default_input)();
    let run_once = || {
        let mut snapshots = Vec::new();
        let live = run_live(
            &program,
            &input,
            VmConfig::profiling(),
            &LiveOptions {
                every: 64 * 1024,
                ..LiveOptions::default()
            },
            None,
            |s: &str| snapshots.push(s.to_string()),
        )
        .expect("live run");
        assert_eq!(live.dropped, 0);
        let final_text = ReportSections::standard(&live.report, &live)
            .coldness(&live.coldness)
            .render();
        (snapshots, final_text)
    };
    let (snaps_a, final_a) = run_once();
    let (snaps_b, final_b) = run_once();
    assert_eq!(snaps_a, snaps_b, "snapshot streams must be identical");
    assert_eq!(final_a, final_b, "final reports must be identical");
    assert!(!snaps_a.is_empty());
}
