//! End-to-end check of the two-phase tool: phase 1 writes the log file,
//! phase 2 parses it and must reach the same analysis as the in-memory
//! path, for every benchmark.

use heapdrag::core::{profile, DragAnalyzer, ParsedLog, Pipeline, ProfileRun, VmConfig};
use heapdrag::vm::{Program, SiteId};
use heapdrag::workloads::all_workloads;

fn log_roundtrip(run: &ProfileRun, program: &Program) -> ParsedLog {
    let mut buf = Vec::new();
    Pipeline::options().write_to(run, program, &mut buf).expect("writes");
    Pipeline::options().ingest_bytes(&buf).expect("log parses").log
}

#[test]
fn log_roundtrip_preserves_records_and_analysis() {
    for w in all_workloads() {
        let program = w.original();
        let input = (w.default_input)();
        let run = profile(&program, &input, VmConfig::profiling()).expect("runs");

        let parsed = log_roundtrip(&run, &program);

        assert_eq!(parsed.records, run.records, "{}: records roundtrip", w.name);
        assert_eq!(parsed.samples, run.samples, "{}: samples roundtrip", w.name);
        assert_eq!(parsed.end_time, run.outcome.end_time);

        // The off-line analysis over the parsed log matches the in-memory
        // one (modulo the coarse-site partition, which needs the site
        // table — compare the nested partition, which doesn't).
        let mem = DragAnalyzer::new().analyze(&run.records, |c| Some(SiteId(c.0)));
        let file = DragAnalyzer::new().analyze(&parsed.records, |c| Some(SiteId(c.0)));
        assert_eq!(
            mem.by_nested_site, file.by_nested_site,
            "{}: same drag report from the log",
            w.name
        );
        assert_eq!(mem.totals, file.totals);
    }
}

#[test]
fn log_names_cover_all_sites_in_records() {
    let w = heapdrag::workloads::workload_by_name("jess").unwrap();
    let program = w.original();
    let run = profile(&program, &(w.default_input)(), VmConfig::profiling()).expect("runs");
    let parsed = log_roundtrip(&run, &program);
    use heapdrag::core::ChainNamer;
    for r in &parsed.records {
        let name = parsed.chain_name(r.alloc_site);
        assert!(
            !name.starts_with("<chain"),
            "alloc site {:?} has a readable name, got {name}",
            r.alloc_site
        );
    }
}
