//! Fault-injection property suite for salvage ingestion of HDLOG v2
//! binary logs — the binary twin of `salvage_props.rs`.
//!
//! Each property runs 256 seeded cases per fault kind (replayable with
//! `TESTKIT_SEED`/`TESTKIT_CASES`), corrupting a synthetic binary log
//! with the `heapdrag-testkit` frame-level mutators and asserting the
//! same ingestion contract the text suite does:
//!
//! * **Salvage never panics** under any frame-level fault, for any shard
//!   count; the salvaged `ParsedLog` and `SalvageSummary` are identical
//!   at 1/4/7 shards.
//! * **Strict mode agrees across shard counts**: same `Ok` log or the
//!   same first error (code, frame, byte, message) everywhere.
//! * **Structural faults only lose data, never invent it**: a fault that
//!   removes or repeats intact frames (truncation, checksum flip, frame
//!   delete/duplicate) can only yield records verbatim from the clean
//!   log, so the salvaged total drag is bounded by the clean run's.
//!   (A payload flip or corrupted length prefix can — once in 2^16 —
//!   survive the checksum as a *different* record, so those two are only
//!   covered by the no-panic and parity properties.)
//! * **Truncation salvages at least the intact frame prefix**: every
//!   complete `obj` frame before the cut yields a kept record, and the
//!   summary still reports the binary input format.

use std::collections::HashMap;

use heapdrag::core::log::Ingested;
use heapdrag::core::{
    BinarySink, ErrorCode, GcSample, LogFormat, ObjectRecord, Pipeline, TraceSink,
};
use heapdrag::vm::{ChainId, ClassId, ObjectId};
use heapdrag_testkit::{check, complete_frames, inject_binary, BinaryFault, Rng};

/// Shard counts every property sweeps; `chunk_records` is pinned for the
/// same reason as in the text suite (chunking is the scan's decision,
/// results must not depend on the worker count).
const SHARDS: [usize; 3] = [1, 4, 7];
/// The `obj` frame tag of the HDLOG v2 grammar.
const TAG_OBJ: u8 = 0x02;

fn pipe(shards: usize) -> Pipeline {
    Pipeline::options().shards(shards).chunk_records(32)
}

/// A deterministic synthetic HDLOG v2 log, the frame-for-line mirror of
/// the text suite's `clean_log()`: ~400 obj frames with varied sizes,
/// lifetimes, and optional fields, interleaved deep-GC samples, the end
/// frame last — big enough that chunking engages and any fault lands
/// somewhere interesting.
fn clean_log() -> Vec<u8> {
    let mut buf = Vec::new();
    let mut sink = BinarySink::new(&mut buf);
    sink.begin().unwrap();
    sink.chain(ChainId(0), "Main.main@1 \"buf\"").unwrap();
    sink.chain(ChainId(1), "Main.work@9").unwrap();
    for i in 0u64..400 {
        sink.record(&ObjectRecord {
            object: ObjectId(i),
            class: ClassId(2 + (i % 3) as u32),
            size: 8 + (i % 17) * 24,
            created: i * 5,
            freed: i * 5 + 350 + (i % 7) * 40,
            last_use: if i % 5 == 0 { None } else { Some(i * 5 + 90) },
            alloc_site: ChainId((i % 2) as u32),
            last_use_site: if i % 5 == 0 {
                None
            } else {
                Some(ChainId((i % 2) as u32))
            },
            at_exit: i % 9 == 0,
        })
        .unwrap();
        if i % 25 == 0 {
            sink.sample(&GcSample {
                time: i * 5 + 10,
                reachable_bytes: 4000 + i * 11,
                reachable_count: 40 + i,
            })
            .unwrap();
        }
    }
    sink.end(2500).unwrap();
    buf
}

fn salvage(bytes: &[u8], shards: usize) -> Result<Ingested, heapdrag::core::LogError> {
    pipe(shards)
        .salvage(None)
        .ingest_bytes(bytes)
        .map_err(|e| e.as_log().expect("log error").clone())
}

fn strict(bytes: &[u8], shards: usize) -> Result<Ingested, heapdrag::core::LogError> {
    pipe(shards)
        .ingest_bytes(bytes)
        .map_err(|e| e.as_log().expect("log error").clone())
}

fn total_drag(records: &[ObjectRecord]) -> u128 {
    records.iter().map(|r| r.drag()).sum()
}

#[test]
fn testkit_walker_agrees_with_the_codec() {
    // The testkit carries its own magic and frame walker so it stays
    // dependency-free; this pins them to the codec under test.
    assert_eq!(
        heapdrag_testkit::fault::HDLOG2_MAGIC,
        heapdrag::core::codec::binary::MAGIC
    );
    let clean = clean_log();
    let frames = complete_frames(&clean);
    assert_eq!(frames.last().unwrap().1, clean.len(), "walker spans the log");
    let objs = frames.iter().filter(|&&(_, _, tag)| tag == TAG_OBJ).count();
    let parsed = strict(&clean, 1).expect("clean log parses strictly");
    assert!(parsed.salvage.is_clean());
    assert_eq!(parsed.salvage.format, LogFormat::Binary);
    assert_eq!(objs, parsed.log.records.len());
}

#[test]
fn salvage_never_panics_and_is_shard_invariant_under_every_binary_fault() {
    let clean = clean_log();
    for fault in BinaryFault::ALL {
        check(
            &format!("binary-salvage-no-panic[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let (bytes, _) = inject_binary(&clean, fault, rng);
                let baseline = salvage(&bytes, 1).unwrap_or_else(|e| {
                    panic!("{}: salvage must succeed, got {e}", fault.name())
                });
                for shards in [4, 7] {
                    let got = salvage(&bytes, shards).expect("salvage succeeds");
                    assert_eq!(got.log, baseline.log, "{}: shards {shards}", fault.name());
                    assert_eq!(
                        got.salvage, baseline.salvage,
                        "{}: shards {shards}",
                        fault.name()
                    );
                }
            },
        );
    }
}

#[test]
fn strict_mode_agrees_across_shard_counts_under_every_binary_fault() {
    let clean = clean_log();
    for fault in BinaryFault::ALL {
        check(
            &format!("binary-strict-parity[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let (bytes, _) = inject_binary(&clean, fault, rng);
                let results: Vec<_> = SHARDS.iter().map(|&s| strict(&bytes, s)).collect();
                match &results[0] {
                    Ok(first) => {
                        for r in &results[1..] {
                            let r = r.as_ref().expect("all shard counts parse");
                            assert_eq!(r.log, first.log, "{}", fault.name());
                        }
                    }
                    Err(first) => {
                        for r in &results[1..] {
                            let e = r.as_ref().expect_err("all shard counts fail");
                            assert_eq!(
                                (e.code, e.line, e.byte, &e.message),
                                (first.code, first.line, first.byte, &first.message),
                                "{}",
                                fault.name()
                            );
                        }
                    }
                }
            },
        );
    }
}

#[test]
fn structural_binary_faults_never_invent_records_and_drag_is_a_subset() {
    let clean = clean_log();
    let baseline = salvage(&clean, 1).expect("clean log ingests");
    assert!(baseline.salvage.is_clean(), "the sink emits a clean log");
    let clean_drag = total_drag(&baseline.log.records);
    let by_id: HashMap<ObjectId, &ObjectRecord> = baseline
        .log
        .records
        .iter()
        .map(|r| (r.object, r))
        .collect();

    for fault in BinaryFault::ALL.into_iter().filter(|f| f.is_structural()) {
        check(
            &format!("binary-salvage-subset[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let (bytes, _) = inject_binary(&clean, fault, rng);
                let got = salvage(&bytes, 4).expect("salvage succeeds");
                for r in &got.log.records {
                    let original = by_id.get(&r.object).unwrap_or_else(|| {
                        panic!("{}: salvaged unknown object {:?}", fault.name(), r.object)
                    });
                    assert_eq!(&r, original, "{}: record altered", fault.name());
                }
                assert!(
                    total_drag(&got.log.records) <= clean_drag,
                    "{}: salvaged drag exceeds the clean run's",
                    fault.name()
                );
            },
        );
    }
}

#[test]
fn truncation_salvages_at_least_the_intact_frame_prefix() {
    let clean = clean_log();
    let frames = complete_frames(&clean);
    for fault in [BinaryFault::TruncateAtByte, BinaryFault::TruncateMidFrame] {
        check(
            &format!("binary-truncate-prefix-recovery[{}]", fault.name()),
            256,
            |rng: &mut Rng| {
                let (bytes, report) = inject_binary(&clean, fault, rng);
                let intact_objs = frames
                    .iter()
                    .filter(|&&(_, end, tag)| tag == TAG_OBJ && end <= report.offset)
                    .count();
                let got = salvage(&bytes, 4).expect("salvage succeeds");
                assert!(
                    got.log.records.len() >= intact_objs,
                    "{}: salvaged {} records from a prefix holding {intact_objs} complete obj frames",
                    fault.name(),
                    got.log.records.len()
                );
                // A cut inside the 8 magic bytes demotes the input to an
                // unrecognised text log; past them it is still binary and
                // the summary must say so.
                if bytes.starts_with(&heapdrag_testkit::fault::HDLOG2_MAGIC) {
                    assert_eq!(got.salvage.format, LogFormat::Binary);
                }
            },
        );
    }
}

#[test]
fn max_errors_bounds_binary_salvage() {
    // A flipped checksum byte always yields at least one E011, so a zero
    // error budget must reject the log while unbounded salvage succeeds.
    let clean = clean_log();
    check("binary-max-errors-bound", 64, |rng: &mut Rng| {
        let (bytes, report) = inject_binary(&clean, BinaryFault::FlipChecksumByte, rng);
        assert!(report.len > 0, "the clean log always has frames to flip");
        let unbounded = salvage(&bytes, 4).expect("unbounded salvage succeeds");
        assert!(!unbounded.salvage.is_clean());
        let bounded = pipe(4).salvage(Some(0)).ingest_bytes(&bytes);
        let e = bounded.expect_err("zero budget rejects corruption");
        let e = e.as_log().expect("log error");
        assert_eq!(e.code, ErrorCode::TooManyErrors);
    });
}
