//! The serve acceptance test: 64 concurrent sessions — mixed text/binary
//! traces, mixed strict/salvage policies, mixed shard counts, interleaved
//! submission orders — through one shared decode pool must yield
//!
//! 1. per-session reports byte-identical to single-shot [`Pipeline`]
//!    runs of the same trace,
//! 2. a fleet-aggregate report invariant under arrival order and pool
//!    size (1, 4, and 7 workers), and
//! 3. transit memory bounded by the admission budget, asserted through
//!    `heapdrag_ingest_peak_buffered_bytes` and the
//!    `heapdrag_serve_inflight_chunks_peak` gauge,
//!
//! with the `heapdrag_serve_*` counters reconciling exactly at idle.

use std::io::Read;

use heapdrag::core::serve::session_cost;
use heapdrag::core::{
    LogFormat, Pipeline, ProfileRun, ReportSections, ServeConfig, ServeManager, SessionId,
    SessionSource,
    SessionSpec, SessionState,
};
use heapdrag::obs::Registry;
use heapdrag::vm::Program;
use heapdrag::workloads::workload_by_name;

const POOL_SIZES: [usize; 3] = [1, 4, 7];
const BUDGET: u64 = 32;

fn profile(program: &Program, name: &str) -> ProfileRun {
    let w = workload_by_name(name).expect("workload exists");
    heapdrag::core::profile(program, &(w.default_input)(), heapdrag::core::VmConfig::profiling())
        .unwrap_or_else(|e| panic!("{name} profiles: {e}"))
}

fn encode(run: &ProfileRun, program: &Program, format: LogFormat) -> Vec<u8> {
    let mut buf = Vec::new();
    Pipeline::options()
        .format(format)
        .write_to(run, program, &mut buf)
        .expect("writes");
    buf
}

/// The same deterministic synthetic trace shape `streaming_parity` uses,
/// sized so chunking engages at `chunk_records(64)`.
fn synthetic_text_log() -> String {
    let mut text = String::from("heapdrag-log v1\n");
    for c in 0..6 {
        text.push_str(&format!("chain {c} Main.site{c}@{c}\n"));
    }
    for i in 0u64..400 {
        let (last, uchain) = if i.is_multiple_of(5) {
            ("-".to_string(), "-".to_string())
        } else {
            ((i * 5 + 90).to_string(), (i % 6).to_string())
        };
        text.push_str(&format!(
            "obj {i} {} {} {} {} {last} {} {uchain} {}\n",
            2 + i % 3,
            8 + (i % 17) * 24,
            i * 5,
            i * 5 + 350 + (i % 7) * 40,
            i % 6,
            u8::from(i.is_multiple_of(9)),
        ));
        if i.is_multiple_of(25) {
            text.push_str(&format!("gc {} {} {}\n", i * 5 + 10, 4000 + i * 11, 40 + i));
        }
    }
    text.push_str("end 2500\n");
    text
}

/// One distinct (trace, pipeline) combination, with the single-shot
/// expected report computed once up front.
struct Spec {
    name: String,
    bytes: Vec<u8>,
    pipe: Pipeline,
    shards: usize,
    want: String,
}

impl Spec {
    fn new(name: &str, bytes: Vec<u8>, shards: usize, salvage: bool) -> Spec {
        let mut pipe = Pipeline::options().shards(shards).chunk_records(64);
        if salvage {
            pipe = pipe.salvage(None);
        }
        // The single-shot baseline: exactly what `heapdrag report` renders.
        let streamed = pipe.analyze_reader(&bytes[..]).expect("single-shot run");
        let mut sections = ReportSections::standard(&streamed.report, &streamed);
        if streamed.salvage.salvage {
            sections = sections.salvage_footer(&streamed.salvage);
        }
        let want = sections.render();
        Spec {
            name: name.to_string(),
            bytes,
            pipe,
            shards,
            want,
        }
    }
}

/// The 8 distinct session shapes; 64 sessions = 8 rounds over these.
fn build_specs() -> Vec<Spec> {
    let w = workload_by_name("jess").expect("workload exists");
    let program = w.original();
    let run = profile(&program, "jess");
    let text = encode(&run, &program, LogFormat::Text);
    let binary = encode(&run, &program, LogFormat::Binary);
    let synth = synthetic_text_log().into_bytes();
    let truncated = synth[..synth.len() * 3 / 5].to_vec();
    vec![
        Spec::new("jess-text-s1-strict", text.clone(), 1, false),
        Spec::new("jess-text-s4-salvage", text, 4, true),
        Spec::new("jess-bin-s7-strict", binary.clone(), 7, false),
        Spec::new("jess-bin-s4-salvage", binary, 4, true),
        Spec::new("synth-s1-salvage", synth.clone(), 1, true),
        Spec::new("synth-s7-strict", synth.clone(), 7, false),
        Spec::new("synth-cut-s4-salvage", truncated, 4, true),
        Spec::new("synth-s2-strict", synth, 2, false),
    ]
}

/// Submits 64 sessions (8 rounds over the 8 specs, in `order`) to a
/// fresh manager with `pool` decode workers, waits for idle, checks every
/// per-session report against its single-shot baseline plus the memory
/// and accounting invariants, and returns the fleet report.
fn run_fleet(specs: &[Spec], pool: usize, order: &[usize]) -> String {
    let registry = Registry::new();
    let manager = ServeManager::new(ServeConfig {
        pool_workers: pool,
        drivers: 4,
        budget_chunks: BUDGET,
        pipeline: Pipeline::options().chunk_records(64),
        registry: registry.clone(),
        ..ServeConfig::default()
    });
    let mut submitted: Vec<(SessionId, usize)> = Vec::new();
    for &spec_index in order {
        let spec = &specs[spec_index];
        let id = manager.submit(
            SessionSpec::new(
                spec.name.clone(),
                SessionSource::Bytes(spec.bytes.clone()),
            )
            .pipeline(spec.pipe),
        );
        submitted.push((id, spec_index));
    }
    assert_eq!(submitted.len(), 64);
    manager.wait_idle();

    // 1. Per-session byte-identity against the single-shot baseline.
    for &(id, spec_index) in &submitted {
        let spec = &specs[spec_index];
        assert_eq!(
            manager.state(id),
            Some(SessionState::Completed),
            "{} ({id}) at pool {pool}",
            spec.name
        );
        let got = manager.report(id, 10).expect("completed session reports");
        assert_eq!(got, spec.want, "{} ({id}) at pool {pool}", spec.name);
    }

    // 3. The memory bound. Per session, the streaming engine never holds
    // more than its admission cost in decoded chunks plus one read block
    // of scanner carry; the fleet-wide in-flight peak stays within the
    // budget the sessions were admitted against.
    let mut max_peak = 0u64;
    for s in manager.sessions() {
        let stats = s.stats.as_ref().expect("completed session has stats");
        let spec = &specs[submitted.iter().find(|(id, _)| *id == s.id).unwrap().1];
        assert_eq!(s.cost, session_cost(spec.shards), "{}", spec.name);
        let bound = s.cost * stats.max_chunk_bytes
            + 2 * heapdrag::core::stream::READ_BLOCK as u64;
        assert!(
            stats.peak_buffered_bytes <= bound,
            "{}: peak {} over bound {bound} at pool {pool}",
            spec.name,
            stats.peak_buffered_bytes
        );
        max_peak = max_peak.max(stats.peak_buffered_bytes);
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.gauges["heapdrag_ingest_peak_buffered_bytes"],
        i64::try_from(max_peak).unwrap(),
        "the registry gauge carries the fleet-wide high-water mark"
    );
    let inflight_peak = snap.gauges["heapdrag_serve_inflight_chunks_peak"];
    assert!(
        inflight_peak > 0 && inflight_peak <= i64::try_from(BUDGET).unwrap(),
        "in-flight peak {inflight_peak} must stay within the budget {BUDGET}"
    );

    // Accounting reconciles exactly at idle.
    assert_eq!(snap.counters["heapdrag_serve_sessions_submitted_total"], 64);
    assert_eq!(snap.counters["heapdrag_serve_sessions_completed_total"], 64);
    assert_eq!(snap.counters["heapdrag_serve_sessions_failed_total"], 0);
    assert_eq!(snap.counters["heapdrag_serve_admission_rejections_total"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_active_sessions"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_queued_sessions"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_inflight_chunks"], 0);
    assert_eq!(snap.gauges["heapdrag_serve_pool_workers"], i64::try_from(pool).unwrap());

    manager.fleet_report(10)
}

#[test]
fn sixty_four_sessions_match_single_shot_runs_at_every_pool_size() {
    let specs = build_specs();
    // Two arrival orders: spec-major rounds, and the reverse (so the
    // last-submitted spec of one order is the first of the other).
    let forward: Vec<usize> = (0..64).map(|i| i % 8).collect();
    let reverse: Vec<usize> = forward.iter().rev().copied().collect();

    let mut fleets: Vec<String> = Vec::new();
    for pool in POOL_SIZES {
        for order in [&forward, &reverse] {
            fleets.push(run_fleet(&specs, pool, order));
        }
    }
    // 2. The fleet aggregate is invariant under pool size and arrival
    // order, down to the byte.
    let first = &fleets[0];
    assert!(first.starts_with("=== fleet drag report: 64 sessions merged"));
    for (i, fleet) in fleets.iter().enumerate() {
        assert_eq!(fleet, first, "fleet report {i} diverged");
    }
}

/// A reader that panics the *driver* would be a manager bug; what the
/// pool must tolerate is a panicking decode job. Raw panicking jobs on
/// the shared pool — the worst case of a poisoned decode — must not
/// perturb concurrently running sessions (E010-style isolation: the
/// panic is contained and counted, everyone else's bytes are identical).
#[test]
fn panicking_pool_jobs_do_not_perturb_live_sessions() {
    let specs = build_specs();
    let registry = Registry::new();
    let manager = ServeManager::new(ServeConfig {
        pool_workers: 2,
        drivers: 2,
        budget_chunks: BUDGET,
        pipeline: Pipeline::options().chunk_records(64),
        registry: registry.clone(),
        ..ServeConfig::default()
    });
    let mut submitted = Vec::new();
    for round in 0..4 {
        for (spec_index, spec) in specs.iter().enumerate() {
            let id = manager.submit(
                SessionSpec::new(
                    format!("{}-{round}", spec.name),
                    SessionSource::Bytes(spec.bytes.clone()),
                )
                .pipeline(spec.pipe),
            );
            submitted.push((id, spec_index));
            // Interleave a hostile job between every submission.
            manager.pool().execute(Box::new(|| panic!("poisoned decode job")));
        }
    }
    manager.wait_idle();
    for (id, spec_index) in submitted {
        assert_eq!(manager.state(id), Some(SessionState::Completed));
        assert_eq!(
            manager.report(id, 10).expect("completed"),
            specs[spec_index].want,
            "session {id} perturbed by a panicking pool job"
        );
    }
    // Hostile jobs may still be queued behind real decode work; give the
    // pool a moment to drain them before counting.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while manager.pool().panics() < 32 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(manager.pool().panics(), 32, "every hostile job was contained");
}

/// Admission control under pressure: sessions whose combined cost
/// exceeds the budget queue rather than run, the queue drains in FIFO
/// order, and the in-flight gauge never exceeds the budget.
#[test]
fn admission_queues_sessions_beyond_the_budget_and_drains_them_all() {
    let synth = synthetic_text_log().into_bytes();
    let registry = Registry::new();
    let manager = ServeManager::new(ServeConfig {
        pool_workers: 2,
        drivers: 6,
        // cost(4 shards) = 8, so only one 4-shard session runs at a time
        // even though six drivers are available.
        budget_chunks: 8,
        pipeline: Pipeline::options().shards(4).chunk_records(64),
        registry: registry.clone(),
        ..ServeConfig::default()
    });
    let ids: Vec<SessionId> = (0..12)
        .map(|i| {
            manager.submit(SessionSpec::new(
                format!("pressured-{i}"),
                SessionSource::Bytes(synth.clone()),
            ))
        })
        .collect();
    manager.wait_idle();
    for id in ids {
        assert_eq!(manager.state(id), Some(SessionState::Completed));
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counters["heapdrag_serve_sessions_completed_total"], 12);
    assert_eq!(snap.gauges["heapdrag_serve_inflight_chunks_peak"], 8);
    assert_eq!(snap.gauges["heapdrag_serve_inflight_chunks"], 0);
}

/// A socket-free sanity check that `SessionSource::Reader` behaves like
/// `Bytes`: the reader is only pulled once the session runs, and the
/// report is identical.
#[test]
fn reader_sources_report_identically_to_byte_sources() {
    struct SlowReader {
        bytes: Vec<u8>,
        off: usize,
    }
    impl Read for SlowReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(97).min(self.bytes.len() - self.off);
            buf[..n].copy_from_slice(&self.bytes[self.off..self.off + n]);
            self.off += n;
            Ok(n)
        }
    }
    let specs = build_specs();
    let manager = ServeManager::new(ServeConfig {
        pool_workers: 2,
        drivers: 2,
        budget_chunks: BUDGET,
        pipeline: Pipeline::options().chunk_records(64),
        ..ServeConfig::default()
    });
    let spec = &specs[1];
    let id = manager.submit(
        SessionSpec::new(
            "reader",
            SessionSource::Reader(Box::new(SlowReader {
                bytes: spec.bytes.clone(),
                off: 0,
            })),
        )
        .pipeline(spec.pipe),
    );
    manager.wait_idle();
    assert_eq!(manager.report(id, 10).expect("completed"), spec.want);
}
