//! End-to-end tests: compile mini-Java source, run it on the VM, check
//! output — plus type-error coverage and verifier/profiler integration.

use heapdrag_lang::compile_source;
use heapdrag_vm::interp::{Vm, VmConfig};

fn run(src: &str, input: &[i64]) -> Vec<i64> {
    let program = compile_source(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    heapdrag_vm::verify::verify_program(&program).expect("compiled code verifies");
    Vm::new(&program, VmConfig::default())
        .run(input)
        .unwrap_or_else(|e| panic!("run failed: {e}"))
        .output
}

fn compile_err(src: &str) -> String {
    compile_source(src).unwrap_err().to_string()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(
        run("def main(input: int[]) { print 2 + 3 * 4 - 6 / 2; }", &[]),
        vec![11]
    );
    assert_eq!(
        run("def main(input: int[]) { print -(3 - 10) % 4; }", &[]),
        vec![3]
    );
}

#[test]
fn input_array_and_length() {
    let src = r#"
def main(input: int[]) {
    var i: int = 0;
    var sum: int = 0;
    while (i < input.length) {
        sum = sum + input[i];
        i = i + 1;
    }
    print sum;
}
"#;
    assert_eq!(run(src, &[1, 2, 3, 4]), vec![10]);
    assert_eq!(run(src, &[]), vec![0]);
}

#[test]
fn classes_inheritance_and_virtual_dispatch() {
    let src = r#"
class Shape {
    field id: int;
    def init(id: int) { this.id = id; }
    def area(): int { return 0; }
}
class Square extends Shape {
    field side: int;
    def area(): int { return this.side * this.side; }
    def setSide(s: int) { this.side = s; }
}
def describe(s: Shape): int {
    return s.area();
}
def main(input: int[]) {
    var sq: Square = new Square(7);
    sq.setSide(5);
    var plain: Shape = new Shape(1);
    print describe(sq);     // dispatches to Square.area
    print describe(plain);  // Shape.area
    print sq.id;            // inherited field
}
"#;
    assert_eq!(run(src, &[]), vec![25, 0, 7]);
}

#[test]
fn recursion_and_early_returns() {
    let src = r#"
def fib(n: int): int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
def main(input: int[]) { print fib(10); }
"#;
    assert_eq!(run(src, &[]), vec![55]);
}

#[test]
fn statics_and_visibilities() {
    let src = r#"
private static counter: int = 10;
public static cache: int[];
def bump(): int {
    counter = counter + 1;
    return counter;
}
def main(input: int[]) {
    bump();
    bump();
    print counter;
    cache = new int[3];
    cache[2] = 9;
    print cache[2];
}
"#;
    assert_eq!(run(src, &[]), vec![12, 9]);
}

#[test]
fn arrays_of_objects_and_nested_arrays() {
    let src = r#"
class Node {
    field value: int;
    def init(v: int) { this.value = v; }
}
def main(input: int[]) {
    var nodes: Node[] = new Node[3];
    var i: int = 0;
    while (i < nodes.length) {
        nodes[i] = new Node(i * 10);
        i = i + 1;
    }
    print nodes[2].value;

    var grid: int[][] = new int[][2];
    grid[0] = new int[4];
    grid[1] = new int[4];
    grid[1][3] = 42;
    print grid[1][3];
}
"#;
    assert_eq!(run(src, &[]), vec![20, 42]);
}

#[test]
fn null_checks_and_reference_equality() {
    let src = r#"
class Box { field v: int; }
def main(input: int[]) {
    var a: Box = new Box;
    var b: Box = a;
    var c: Box = null;
    if (a == b) { print 1; } else { print 0; }
    if (a == c) { print 1; } else { print 0; }
    if (c == null) { print 1; } else { print 0; }
    a = null;
    if (a != null) { print 1; } else { print 0; }
}
"#;
    assert_eq!(run(src, &[]), vec![1, 0, 1, 0]);
}

#[test]
fn else_if_chains() {
    let src = r#"
def classify(n: int): int {
    if (n < 0) { return -1; }
    else if (n == 0) { return 0; }
    else { return 1; }
}
def main(input: int[]) {
    print classify(-5);
    print classify(0);
    print classify(9);
}
"#;
    assert_eq!(run(src, &[]), vec![-1, 0, 1]);
}

#[test]
fn void_method_calls_as_statements() {
    let src = r#"
class Counter {
    field n: int;
    def tick() { this.n = this.n + 1; }
    def get(): int { return this.n; }
}
def main(input: int[]) {
    var c: Counter = new Counter;
    c.tick();
    c.tick();
    c.tick();
    print c.get();
    c.get();   // value discarded
}
"#;
    assert_eq!(run(src, &[]), vec![3]);
}

// --- type errors -----------------------------------------------------------

#[test]
fn type_errors_are_reported_with_lines() {
    let e = compile_err("def main(input: int[]) {\n  print null;\n}");
    assert!(e.contains("line 2"), "{e}");
    assert!(e.contains("int"), "{e}");

    let e = compile_err("def main(input: int[]) { var x: int = null; }");
    assert!(e.contains("not assignable") || e.contains("initialise"), "{e}");

    let e = compile_err("def main(input: int[]) { print input; }");
    assert!(e.contains("print"), "{e}");

    let e = compile_err("def main(input: int[]) { print input[0] + null; }");
    assert!(e.contains("int"), "{e}");
}

#[test]
fn unknown_names_are_errors() {
    assert!(compile_err("def main(input: int[]) { print y; }").contains("unknown variable"));
    assert!(compile_err("def main(input: int[]) { f(); }").contains("unknown function"));
    assert!(compile_err("def main(input: int[]) { var p: P = null; }").contains("unknown class"));
    assert!(
        compile_err("class C { } def main(input: int[]) { var c: C = new C; print c.x; }")
            .contains("no field")
    );
    assert!(
        compile_err("class C { } def main(input: int[]) { var c: C = new C; c.m(); }")
            .contains("no method")
    );
}

#[test]
fn arity_and_constructor_errors() {
    let e = compile_err(
        "class C { def init(a: int) { } } def main(input: int[]) { var c: C = new C(1, 2); }",
    );
    assert!(e.contains("expects 1"), "{e}");
    let e = compile_err("class C { } def main(input: int[]) { var c: C = new C(5); }");
    assert!(e.contains("no `init`"), "{e}");
    let e = compile_err("def f(a: int) { } def main(input: int[]) { f(); }");
    assert!(e.contains("expects 1"), "{e}");
}

#[test]
fn return_path_checking() {
    let e = compile_err("def f(): int { if (1) { return 1; } } def main(input: int[]) { }");
    assert!(e.contains("without returning"), "{e}");
    let e = compile_err("def f() { return 1; } def main(input: int[]) { }");
    assert!(e.contains("void function"), "{e}");
    let e = compile_err("def f(): int { return 1; print 2; } def main(input: int[]) { }");
    assert!(e.contains("unreachable"), "{e}");
}

#[test]
fn main_signature_is_enforced() {
    assert!(compile_err("def notmain(input: int[]) { }").contains("no `main`"));
    assert!(compile_err("def main(a: int) { }").contains("must be declared"));
    assert!(compile_err("def main(input: int[]): int { return 1; }").contains("must be declared"));
}

#[test]
fn subtyping_is_checked_both_ways() {
    let src_ok = r#"
class A { }
class B extends A { }
def takeA(a: A) { }
def main(input: int[]) {
    takeA(new B);
}
"#;
    run(src_ok, &[]);
    let e = compile_err(
        "class A { }\nclass B extends A { }\ndef takeB(b: B) { }\ndef main(input: int[]) { takeB(new A); }",
    );
    assert!(e.contains("not assignable"), "{e}");
}

// --- integration with the profiler ------------------------------------------

#[test]
fn drag_reports_name_source_lines() {
    let src = r#"
def main(input: int[]) {
    var buffer: int[] = new int[5000];
    buffer[0] = 7;
    var i: int = 0;
    while (i < 500) {
        var scratch: int[] = new int[10];
        scratch[0] = i;
        i = i + 1;
        scratch = null;
        buffer = buffer;   // keep rooted across the loop
    }
    print buffer[0];
}
"#;
    let program = compile_source(src).unwrap();
    let run = heapdrag_core::profile(&program, &[], heapdrag_core::VmConfig::profiling()).unwrap();
    let report =
        heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
    let top = run
        .sites
        .format_chain(&program, report.by_nested_site[0].site);
    assert!(
        top.contains(": new int[]"),
        "top drag site names its source line: {top}"
    );
    // The buffer allocation on source line 3 is attributed to its line.
    let all_names: Vec<String> = report
        .by_nested_site
        .iter()
        .map(|e| run.sites.format_chain(&program, e.site))
        .collect();
    assert!(
        all_names.iter().any(|n| n.contains("L3: new int[]")),
        "some site carries the L3 label: {all_names:#?}"
    );
}

#[test]
fn boolean_operators_short_circuit() {
    let src = r#"
class Box { field v: int; }
def touch(b: Box): int { return b.v; }
def main(input: int[]) {
    var x: Box = null;
    // Without short-circuit, touch(x) would throw NullPointerException.
    if (x != null && touch(x) > 0) { print 1; } else { print 0; }
    var y: Box = new Box;
    y.v = 5;
    if (y == null || touch(y) == 5) { print 1; } else { print 0; }
    print !0;
    print !7;
    print (1 && 2) + (0 || 0) + (3 || 9);
}
"#;
    assert_eq!(run(src, &[]), vec![0, 1, 1, 0, 2]);
}

#[test]
fn boolean_operator_precedence() {
    // `a < b && c < d || e` parses as `((a<b) && (c<d)) || e`.
    let src = "def main(input: int[]) { print 1 < 2 && 3 < 2 || 1; }";
    assert_eq!(run(src, &[]), vec![1]);
    let e = compile_err("class C { } def main(input: int[]) { var c: C = new C; print c && 1; }");
    assert!(e.contains("int"), "{e}");
}
