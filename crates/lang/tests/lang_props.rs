//! Property tests for the front end: randomly generated well-typed
//! programs print → parse → compile → run deterministically, and the
//! printer/parser pair is a round-trip.

use heapdrag_lang::pretty::print_program;
use heapdrag_lang::{compile_source, lexer, parser};
use heapdrag_testkit::{check, Rng};
use heapdrag_vm::interp::{Vm, VmConfig};

/// Generator for well-typed statements over: int locals `a`, `b`; an
/// int-array local `xs`; a `Box` object local `bx` (class with int field
/// `v` and method `bump`).
#[derive(Debug, Clone)]
enum GenStmt {
    SetA(i32),
    AddAB,
    StoreXs(u8, i32),
    ReadXs(u8),
    NewBox(i32),
    Bump,
    ReadBox,
    PrintA,
    IfALtB(Vec<GenStmt>, Vec<GenStmt>),
    WhileCounted(u8, Vec<GenStmt>),
}

fn leaf(rng: &mut Rng) -> GenStmt {
    match rng.range_u32(0, 8) {
        0 => GenStmt::SetA(rng.range_i32(-50, 50)),
        1 => GenStmt::AddAB,
        2 => GenStmt::StoreXs(rng.range_u8(0, 8), rng.range_i32(-9, 9)),
        3 => GenStmt::ReadXs(rng.range_u8(0, 8)),
        4 => GenStmt::NewBox(rng.range_i32(-20, 20)),
        5 => GenStmt::Bump,
        6 => GenStmt::ReadBox,
        _ => GenStmt::PrintA,
    }
}

/// Depth-bounded recursive statement generator: at positive depth, one in
/// four draws nests an `if` or a counted `while` whose bodies recurse one
/// level shallower.
fn stmt(rng: &mut Rng, depth: u32) -> GenStmt {
    if depth > 0 && rng.ratio(1, 4) {
        if rng.bool() {
            let t = rng.vec(0, 3, |r| stmt(r, depth - 1));
            let e = rng.vec(0, 3, |r| stmt(r, depth - 1));
            GenStmt::IfALtB(t, e)
        } else {
            let n = rng.range_u8(1, 5);
            let body = rng.vec(0, 3, |r| stmt(r, depth - 1));
            GenStmt::WhileCounted(n, body)
        }
    } else {
        leaf(rng)
    }
}

fn stmts(rng: &mut Rng, max: usize) -> Vec<GenStmt> {
    rng.vec(0, max, |r| stmt(r, 2))
}

fn render(stmts: &[GenStmt], out: &mut String, counter: &mut usize) {
    for s in stmts {
        match s {
            GenStmt::SetA(v) => out.push_str(&format!("a = {v};\n")),
            GenStmt::AddAB => out.push_str("a = a + b;\nb = b + 1;\n"),
            GenStmt::StoreXs(i, v) => out.push_str(&format!("xs[{i}] = {v};\n")),
            GenStmt::ReadXs(i) => out.push_str(&format!("a = a + xs[{i}];\n")),
            GenStmt::NewBox(v) => out.push_str(&format!("bx = new Box({v});\n")),
            GenStmt::Bump => out.push_str("bx.bump();\n"),
            GenStmt::ReadBox => out.push_str("a = a + bx.v;\n"),
            GenStmt::PrintA => out.push_str("print a;\n"),
            GenStmt::IfALtB(t, e) => {
                out.push_str("if (a < b) {\n");
                render(t, out, counter);
                out.push_str("} else {\n");
                render(e, out, counter);
                out.push_str("}\n");
            }
            GenStmt::WhileCounted(n, body) => {
                *counter += 1;
                let c = format!("c{counter}");
                out.push_str(&format!("var {c}: int = 0;\nwhile ({c} < {n}) {{\n"));
                render(body, out, counter);
                out.push_str(&format!("{c} = {c} + 1;\n}}\n"));
            }
        }
    }
}

fn source_for(stmts: &[GenStmt]) -> String {
    let mut body = String::new();
    let mut counter = 0;
    render(stmts, &mut body, &mut counter);
    format!(
        r#"
class Box {{
    field v: int;
    def init(v: int) {{ this.v = v; }}
    def bump() {{ this.v = this.v + 1; }}
}}
def main(input: int[]) {{
    var a: int = 0;
    var b: int = 1;
    var xs: int[] = new int[8];
    var bx: Box = new Box(0);
{body}
    print a;
    print b;
    print bx.v;
}}
"#
    )
}

#[test]
fn generated_sources_compile_and_run_deterministically() {
    check("generated_sources_compile_and_run_deterministically", 32, |rng| {
        let src = source_for(&stmts(rng, 10));
        let program = compile_source(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        heapdrag_vm::verify::verify_program(&program).expect("verifier-clean");
        let a = Vm::new(&program, VmConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&program, VmConfig::profiling()).run(&[]).expect("runs");
        assert_eq!(a.output, b.output);
    });
}

#[test]
fn pretty_print_parse_is_a_fixed_point() {
    check("pretty_print_parse_is_a_fixed_point", 32, |rng| {
        let src = source_for(&stmts(rng, 10));
        let ast1 = parser::parse(&lexer::lex(&src).unwrap()).unwrap();
        let printed1 = print_program(&ast1);
        let ast2 = parser::parse(&lexer::lex(&printed1).unwrap())
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed1}"));
        let printed2 = print_program(&ast2);
        assert_eq!(printed1, printed2);
    });
}

#[test]
fn printed_source_behaves_identically() {
    check("printed_source_behaves_identically", 32, |rng| {
        let src = source_for(&stmts(rng, 8));
        let ast = parser::parse(&lexer::lex(&src).unwrap()).unwrap();
        let printed = print_program(&ast);
        let p1 = compile_source(&src).expect("original compiles");
        let p2 = compile_source(&printed)
            .unwrap_or_else(|e| panic!("printed source failed: {e}\n{printed}"));
        let o1 = Vm::new(&p1, VmConfig::default()).run(&[]).expect("runs");
        let o2 = Vm::new(&p2, VmConfig::default()).run(&[]).expect("runs");
        assert_eq!(o1.output, o2.output);
    });
}

/// The AST type parameter of [`TypeName::Array`] round-trips through the
/// printer too (regression guard for the `new int[][n]` suffix logic).
#[test]
fn nested_array_types_roundtrip() {
    let src = "def main(input: int[]) { var m: int[][][] = new int[][][2]; print m.length; }";
    let ast = parser::parse(&lexer::lex(src).unwrap()).unwrap();
    let printed = print_program(&ast);
    assert!(printed.contains("int[][][]"), "{printed}");
    let out = Vm::new(&compile_source(&printed).unwrap(), VmConfig::default())
        .run(&[])
        .unwrap();
    assert_eq!(out.output, vec![2]);
}
