//! Property tests for the front end: randomly generated well-typed
//! programs print → parse → compile → run deterministically, and the
//! printer/parser pair is a round-trip.

use heapdrag_lang::pretty::print_program;
use heapdrag_lang::{compile_source, lexer, parser};
use heapdrag_vm::interp::{Vm, VmConfig};
use proptest::prelude::*;

/// Generator for well-typed statements over: int locals `a`, `b`; an
/// int-array local `xs`; a `Box` object local `bx` (class with int field
/// `v` and method `bump`).
#[derive(Debug, Clone)]
enum GenStmt {
    SetA(i32),
    AddAB,
    StoreXs(u8, i32),
    ReadXs(u8),
    NewBox(i32),
    Bump,
    ReadBox,
    PrintA,
    IfALtB(Vec<GenStmt>, Vec<GenStmt>),
    WhileCounted(u8, Vec<GenStmt>),
}

fn leaf() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (-50..50i32).prop_map(GenStmt::SetA),
        Just(GenStmt::AddAB),
        (0..8u8, -9..9i32).prop_map(|(i, v)| GenStmt::StoreXs(i, v)),
        (0..8u8).prop_map(GenStmt::ReadXs),
        (-20..20i32).prop_map(GenStmt::NewBox),
        Just(GenStmt::Bump),
        Just(GenStmt::ReadBox),
        Just(GenStmt::PrintA),
    ]
}

fn stmt() -> impl Strategy<Value = GenStmt> {
    leaf().prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(t, e)| GenStmt::IfALtB(t, e)),
            (1..5u8, proptest::collection::vec(inner, 0..3))
                .prop_map(|(n, b)| GenStmt::WhileCounted(n, b)),
        ]
    })
}

fn render(stmts: &[GenStmt], out: &mut String, counter: &mut usize) {
    for s in stmts {
        match s {
            GenStmt::SetA(v) => out.push_str(&format!("a = {v};\n")),
            GenStmt::AddAB => out.push_str("a = a + b;\nb = b + 1;\n"),
            GenStmt::StoreXs(i, v) => out.push_str(&format!("xs[{i}] = {v};\n")),
            GenStmt::ReadXs(i) => out.push_str(&format!("a = a + xs[{i}];\n")),
            GenStmt::NewBox(v) => out.push_str(&format!("bx = new Box({v});\n")),
            GenStmt::Bump => out.push_str("bx.bump();\n"),
            GenStmt::ReadBox => out.push_str("a = a + bx.v;\n"),
            GenStmt::PrintA => out.push_str("print a;\n"),
            GenStmt::IfALtB(t, e) => {
                out.push_str("if (a < b) {\n");
                render(t, out, counter);
                out.push_str("} else {\n");
                render(e, out, counter);
                out.push_str("}\n");
            }
            GenStmt::WhileCounted(n, body) => {
                *counter += 1;
                let c = format!("c{counter}");
                out.push_str(&format!("var {c}: int = 0;\nwhile ({c} < {n}) {{\n"));
                render(body, out, counter);
                out.push_str(&format!("{c} = {c} + 1;\n}}\n"));
            }
        }
    }
}

fn source_for(stmts: &[GenStmt]) -> String {
    let mut body = String::new();
    let mut counter = 0;
    render(stmts, &mut body, &mut counter);
    format!(
        r#"
class Box {{
    field v: int;
    def init(v: int) {{ this.v = v; }}
    def bump() {{ this.v = this.v + 1; }}
}}
def main(input: int[]) {{
    var a: int = 0;
    var b: int = 1;
    var xs: int[] = new int[8];
    var bx: Box = new Box(0);
{body}
    print a;
    print b;
    print bx.v;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_sources_compile_and_run_deterministically(
        stmts in proptest::collection::vec(stmt(), 0..10)
    ) {
        let src = source_for(&stmts);
        let program = compile_source(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        heapdrag_vm::verify::verify_program(&program).expect("verifier-clean");
        let a = Vm::new(&program, VmConfig::default()).run(&[]).expect("runs");
        let b = Vm::new(&program, VmConfig::profiling()).run(&[]).expect("runs");
        prop_assert_eq!(a.output, b.output);
    }

    #[test]
    fn pretty_print_parse_is_a_fixed_point(
        stmts in proptest::collection::vec(stmt(), 0..10)
    ) {
        let src = source_for(&stmts);
        let ast1 = parser::parse(&lexer::lex(&src).unwrap()).unwrap();
        let printed1 = print_program(&ast1);
        let ast2 = parser::parse(&lexer::lex(&printed1).unwrap())
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed1}"));
        let printed2 = print_program(&ast2);
        prop_assert_eq!(printed1, printed2);
    }

    #[test]
    fn printed_source_behaves_identically(
        stmts in proptest::collection::vec(stmt(), 0..8)
    ) {
        let src = source_for(&stmts);
        let ast = parser::parse(&lexer::lex(&src).unwrap()).unwrap();
        let printed = print_program(&ast);
        let p1 = compile_source(&src).expect("original compiles");
        let p2 = compile_source(&printed)
            .unwrap_or_else(|e| panic!("printed source failed: {e}\n{printed}"));
        let o1 = Vm::new(&p1, VmConfig::default()).run(&[]).expect("runs");
        let o2 = Vm::new(&p2, VmConfig::default()).run(&[]).expect("runs");
        prop_assert_eq!(o1.output, o2.output);
    }
}

/// The AST type parameter of [`TypeName::Array`] round-trips through the
/// printer too (regression guard for the `new int[][n]` suffix logic).
#[test]
fn nested_array_types_roundtrip() {
    let src = "def main(input: int[]) { var m: int[][][] = new int[][][2]; print m.length; }";
    let ast = parser::parse(&lexer::lex(src).unwrap()).unwrap();
    let printed = print_program(&ast);
    assert!(printed.contains("int[][][]"), "{printed}");
    let out = Vm::new(&compile_source(&printed).unwrap(), VmConfig::default())
        .run(&[])
        .unwrap();
    assert_eq!(out.output, vec![2]);
}
