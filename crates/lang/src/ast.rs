//! The abstract syntax tree of the mini-Java language.

/// A type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeName {
    /// 64-bit integer.
    Int,
    /// An array with the given element type, e.g. `int[]`, `Point[]`.
    Array(Box<TypeName>),
    /// An instance of the named class (or a subclass), or null.
    Class(String),
}

impl std::fmt::Display for TypeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeName::Int => f.write_str("int"),
            TypeName::Array(e) => write!(f, "{e}[]"),
            TypeName::Class(c) => f.write_str(c),
        }
    }
}

/// Field/static visibility (mirrors the VM's, for Table 5 reporting and
/// analysis scoping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Vis {
    /// Declaring class only.
    #[default]
    Private,
    /// Same package.
    Package,
    /// Class and subclasses.
    Protected,
    /// Everywhere.
    Public,
}

/// A whole source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceProgram {
    /// Class declarations.
    pub classes: Vec<ClassDecl>,
    /// Top-level (free) functions; one must be `main`.
    pub funcs: Vec<FuncDecl>,
    /// Top-level static variables.
    pub statics: Vec<StaticDecl>,
}

/// `class Name (extends Super)? { fields… methods… }`
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass, if any.
    pub extends: Option<String>,
    /// Declared fields.
    pub fields: Vec<FieldDecl>,
    /// Instance methods (`this` is implicit parameter 0).
    pub methods: Vec<FuncDecl>,
    /// Declaration line.
    pub line: usize,
}

/// `vis? field name: type;`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Visibility (default private).
    pub vis: Vis,
    /// Declared type.
    pub ty: TypeName,
    /// Declaration line.
    pub line: usize,
}

/// `def name(params): ret? { … }` — top-level or inside a class.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function or method name.
    pub name: String,
    /// Parameters (name, type), excluding the implicit `this`.
    pub params: Vec<(String, TypeName)>,
    /// Return type; `None` is void.
    pub ret: Option<TypeName>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Declaration line.
    pub line: usize,
}

/// `vis? static name: type (= INT)?;`
#[derive(Debug, Clone, PartialEq)]
pub struct StaticDecl {
    /// Static variable name.
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// Declared type.
    pub ty: TypeName,
    /// Integer initialiser (class/arr statics start null).
    pub init: Option<i64>,
    /// Declaration line.
    pub line: usize,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x: T = e;` (type may be inferred from `e`).
    Var {
        /// Variable name.
        name: String,
        /// Optional annotation.
        ty: Option<TypeName>,
        /// Initialiser.
        init: Expr,
        /// Source line.
        line: usize,
    },
    /// `lvalue = e;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if (e) { … } else { … }`
    If {
        /// Condition (non-zero int is true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while (e) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `return e?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// `print e;`
    Print {
        /// The int to print.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// An expression evaluated for effect (e.g. a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or (if no local shadows it) a static.
    Name(String),
    /// `recv.field`
    Field {
        /// Receiver expression.
        recv: Expr,
        /// Field name.
        name: String,
    },
    /// `arr[idx]`
    Index {
        /// The array.
        arr: Expr,
        /// The element index.
        idx: Expr,
    },
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression. Every variant carries its source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, usize),
    /// `null`.
    Null(usize),
    /// `this` (inside methods).
    This(usize),
    /// A local variable or static.
    Name(String, usize),
    /// Unary minus.
    Neg(Box<Expr>, usize),
    /// Logical negation: `!e` is 1 when `e` is 0, else 0.
    Not(Box<Expr>, usize),
    /// Short-circuit `lhs && rhs` (0/1-valued).
    And(Box<Expr>, Box<Expr>, usize),
    /// Short-circuit `lhs || rhs` (0/1-valued).
    Or(Box<Expr>, Box<Expr>, usize),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// `recv.field`
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: usize,
    },
    /// `arr[idx]`
    Index {
        /// The array.
        arr: Box<Expr>,
        /// The index.
        idx: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// `arr.length`
    Length {
        /// The array.
        arr: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// `recv.m(args)` (virtual) or `f(args)` (free function).
    Call {
        /// Receiver; `None` for free-function calls.
        recv: Option<Box<Expr>>,
        /// Method or function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `new C(args)` — allocates and, when `C` declares `init`, calls it.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `new T[len]`.
    NewArray {
        /// Element type.
        elem: TypeName,
        /// Element count.
        len: Box<Expr>,
        /// Source line.
        line: usize,
    },
}

impl Expr {
    /// The source line of the expression.
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_, l)
            | Expr::Null(l)
            | Expr::This(l)
            | Expr::Name(_, l)
            | Expr::Neg(_, l)
            | Expr::Not(_, l)
            | Expr::And(_, _, l)
            | Expr::Or(_, _, l) => *l,
            Expr::Binary { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Length { line, .. }
            | Expr::Call { line, .. }
            | Expr::New { line, .. }
            | Expr::NewArray { line, .. } => *line,
        }
    }
}
