//! # heapdrag-lang
//!
//! A typed mini-Java front end for the heapdrag VM: classes with fields
//! and (virtually dispatched) methods, single inheritance, typed arrays,
//! statics with visibilities, `new` with `init` constructors, `if`/
//! `while`/`return`/`print` — compiled to verified heapdrag bytecode with
//! source-line site labels, so drag reports point back at source lines.
//!
//! ```
//! use heapdrag_lang::compile_source;
//! use heapdrag_vm::interp::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile_source(
//!     r#"
//!     class Point {
//!         field x: int;
//!         field y: int;
//!         def init(a: int, b: int) { this.x = a; this.y = b; }
//!         def norm(): int { return this.x * this.x + this.y * this.y; }
//!     }
//!     def main(input: int[]) {
//!         var p: Point = new Point(3, 4);
//!         print p.norm();
//!     }
//!     "#,
//! )?;
//! let outcome = Vm::new(&program, VmConfig::default()).run(&[])?;
//! assert_eq!(outcome.output, vec![25]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use error::LangError;

use heapdrag_vm::program::Program;

/// Compiles source text to a linked, verifier-clean VM program.
///
/// # Errors
///
/// Returns the first lexing, parsing, type, or code-generation error.
pub fn compile_source(source: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(source)?;
    let ast = parser::parse(&tokens)?;
    codegen::compile(&ast)
}
