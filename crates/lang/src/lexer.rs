//! The hand-written lexer: source text → [`Spanned`] tokens.

use crate::error::LangError;
use crate::token::{Spanned, Token};

/// Tokenises `source`.
///
/// Comments run from `//` to end of line. Identifiers are
/// `[A-Za-z_][A-Za-z0-9_]*`; integer literals are decimal, with `-`
/// handled by the parser as unary minus.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters or malformed numbers.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LangError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;

    let keyword = |word: &str| -> Option<Token> {
        Some(match word {
            "class" => Token::Class,
            "extends" => Token::Extends,
            "field" => Token::Field,
            "def" => Token::Def,
            "var" => Token::Var,
            "static" => Token::Static,
            "if" => Token::If,
            "else" => Token::Else,
            "while" => Token::While,
            "return" => Token::Return,
            "print" => Token::Print,
            "new" => Token::New,
            "null" => Token::Null,
            "this" => Token::This,
            "private" => Token::Private,
            "package" => Token::Package,
            "protected" => Token::Protected,
            "public" => Token::Public,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value = text.parse().map_err(|_| LangError {
                    line,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Spanned {
                    token: Token::Int(value),
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let token = keyword(word).unwrap_or_else(|| Token::Ident(word.to_string()));
                tokens.push(Spanned { token, line });
            }
            _ => {
                let two = source.get(i..i + 2);
                let (token, width) = match two {
                    Some("&&") => (Token::AndAnd, 2),
                    Some("||") => (Token::OrOr, 2),
                    Some("==") => (Token::Eq, 2),
                    Some("!=") => (Token::Ne, 2),
                    Some("<=") => (Token::Le, 2),
                    Some(">=") => (Token::Ge, 2),
                    _ => {
                        let t = match c {
                            '{' => Token::LBrace,
                            '}' => Token::RBrace,
                            '(' => Token::LParen,
                            ')' => Token::RParen,
                            '[' => Token::LBracket,
                            ']' => Token::RBracket,
                            ';' => Token::Semi,
                            ',' => Token::Comma,
                            '.' => Token::Dot,
                            ':' => Token::Colon,
                            '=' => Token::Assign,
                            '+' => Token::Plus,
                            '-' => Token::Minus,
                            '*' => Token::Star,
                            '/' => Token::Slash,
                            '%' => Token::Percent,
                            '<' => Token::Lt,
                            '>' => Token::Gt,
                            '!' => Token::Bang,
                            other => {
                                return Err(LangError {
                                    line,
                                    message: format!("unexpected character `{other}`"),
                                })
                            }
                        };
                        (t, 1)
                    }
                };
                tokens.push(Spanned { token, line });
                i += width;
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("class Foo extends Bar"),
            vec![
                Token::Class,
                Token::Ident("Foo".into()),
                Token::Extends,
                Token::Ident("Bar".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_operators() {
        assert_eq!(
            kinds("x = 10 + 2 * 3;"),
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(10),
                Token::Plus,
                Token::Int(2),
                Token::Star,
                Token::Int(3),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            kinds("a <= b == c != d >= e"),
            vec![
                Token::Ident("a".into()),
                Token::Le,
                Token::Ident("b".into()),
                Token::Eq,
                Token::Ident("c".into()),
                Token::Ne,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("x // a comment\ny").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_strange_characters() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn huge_literal_is_an_error() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
