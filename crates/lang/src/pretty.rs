//! Pretty-printing of ASTs back to parseable source text.
//!
//! `parse(print(ast))` reproduces the AST (modulo line numbers) — the
//! round-trip property the test suite checks with random programs.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program.
pub fn print_program(p: &SourceProgram) -> String {
    let mut out = String::new();
    for s in &p.statics {
        let _ = write!(out, "{} static {}: {}", vis(s.vis), s.name, s.ty);
        if let Some(v) = s.init {
            let _ = write!(out, " = {v}");
        }
        out.push_str(";\n");
    }
    for c in &p.classes {
        let _ = write!(out, "class {}", c.name);
        if let Some(sup) = &c.extends {
            let _ = write!(out, " extends {sup}");
        }
        out.push_str(" {\n");
        for f in &c.fields {
            let _ = writeln!(out, "    {} field {}: {};", vis(f.vis), f.name, f.ty);
        }
        for m in &c.methods {
            print_func(&mut out, m, 1);
        }
        out.push_str("}\n");
    }
    for f in &p.funcs {
        print_func(&mut out, f, 0);
    }
    out
}

fn vis(v: Vis) -> &'static str {
    match v {
        Vis::Private => "private",
        Vis::Package => "package",
        Vis::Protected => "protected",
        Vis::Public => "public",
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_func(out: &mut String, f: &FuncDecl, level: usize) {
    indent(out, level);
    let _ = write!(out, "def {}(", f.name);
    for (i, (name, ty)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{name}: {ty}");
    }
    out.push(')');
    if let Some(ret) = &f.ret {
        let _ = write!(out, ": {ret}");
    }
    out.push_str(" {\n");
    for s in &f.body {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push_str("}\n");
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Var { name, ty, init, .. } => {
            let _ = write!(out, "var {name}");
            if let Some(t) = ty {
                let _ = write!(out, ": {t}");
            }
            let _ = writeln!(out, " = {};", print_expr(init));
        }
        Stmt::Assign { target, value, .. } => {
            let t = match target {
                LValue::Name(n) => n.clone(),
                LValue::Field { recv, name } => format!("{}.{name}", print_expr(recv)),
                LValue::Index { arr, idx } => {
                    format!("{}[{}]", print_expr(arr), print_expr(idx))
                }
            };
            let _ = writeln!(out, "{t} = {};", print_expr(value));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            for st in then_body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for st in else_body {
                    print_stmt(out, st, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", print_expr(e));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Print { value, .. } => {
            let _ = writeln!(out, "print {};", print_expr(value));
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{};", print_expr(expr));
        }
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

/// Renders one expression (fully parenthesised, so precedence always
/// round-trips).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v, _) => v.to_string(),
        Expr::Null(_) => "null".into(),
        Expr::This(_) => "this".into(),
        Expr::Name(n, _) => n.clone(),
        Expr::Neg(inner, _) => format!("(-{})", print_expr(inner)),
        Expr::Not(inner, _) => format!("(!{})", print_expr(inner)),
        Expr::And(l, r, _) => format!("({} && {})", print_expr(l), print_expr(r)),
        Expr::Or(l, r, _) => format!("({} || {})", print_expr(l), print_expr(r)),
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", print_expr(lhs), binop(*op), print_expr(rhs))
        }
        Expr::Field { recv, name, .. } => format!("{}.{name}", print_expr(recv)),
        Expr::Index { arr, idx, .. } => format!("{}[{}]", print_expr(arr), print_expr(idx)),
        Expr::Length { arr, .. } => format!("{}.length", print_expr(arr)),
        Expr::Call {
            recv, name, args, ..
        } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            match recv {
                Some(r) => format!("{}.{name}({})", print_expr(r), args.join(", ")),
                None => format!("{name}({})", args.join(", ")),
            }
        }
        Expr::New { class, args, .. } => {
            if args.is_empty() {
                format!("new {class}")
            } else {
                let args: Vec<String> = args.iter().map(print_expr).collect();
                format!("new {class}({})", args.join(", "))
            }
        }
        Expr::NewArray { elem, len, .. } => {
            // `new int[n]` / `new int[][n]` — element suffixes first.
            let mut base = elem.clone();
            let mut suffixes = 0;
            while let TypeName::Array(inner) = base {
                base = *inner;
                suffixes += 1;
            }
            let mut out = format!("new {base}");
            for _ in 0..suffixes {
                out.push_str("[]");
            }
            let _ = write!(out, "[{}]", print_expr(len));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let ast1 = parse(&lex(src).unwrap()).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        let printed2 = print_program(&ast2);
        assert_eq!(printed, printed2, "printing is a fixed point");
    }

    #[test]
    fn roundtrips_a_full_program() {
        roundtrip(
            r#"
public static total: int = 3;
class Node extends Base { private field next: Node; public field v: int;
    def init(v: int) { this.v = v; this.next = null; }
    def sum(): int { if (this.next == null) { return this.v; } return this.v + this.next.sum(); }
}
class Base { }
def helper(xs: int[][], n: int): int { return xs[0][n] * -2; }
def main(input: int[]) {
    var m: int[][] = new int[][3];
    m[0] = new int[5];
    while (m[0][0] < 4) { m[0][0] = m[0][0] + 1; }
    print helper(m, 0);
    total = total % 2;
}
"#,
        );
    }

    #[test]
    fn printed_programs_compile_identically() {
        let src = r#"
class P { field x: int; def init(x: int) { this.x = x; } def get(): int { return this.x; } }
def main(input: int[]) { var p: P = new P(input.length); print p.get(); }
"#;
        let ast = parse(&lex(src).unwrap()).unwrap();
        let p1 = crate::codegen::compile(&ast).unwrap();
        let printed = print_program(&ast);
        let p2 = crate::compile_source(&printed).unwrap();
        use heapdrag_vm::interp::{Vm, VmConfig};
        let o1 = Vm::new(&p1, VmConfig::default()).run(&[5, 6]).unwrap();
        let o2 = Vm::new(&p2, VmConfig::default()).run(&[5, 6]).unwrap();
        assert_eq!(o1.output, o2.output);
        assert_eq!(o1.output, vec![2]);
    }
}
