//! Recursive-descent parser: tokens → [`SourceProgram`].

use crate::ast::*;
use crate::error::LangError;
use crate::token::{Spanned, Token};

/// Parses a source file.
///
/// # Errors
///
/// Returns the first syntax error with its line.
pub fn parse(tokens: &[Spanned]) -> Result<SourceProgram, LangError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), LangError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(LangError::new(
                self.line(),
                format!("expected `{expected}`, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(LangError::new(
                self.line(),
                format!("expected an identifier, found `{other}`"),
            )),
        }
    }

    fn visibility(&mut self) -> Vis {
        let v = match self.peek() {
            Token::Private => Vis::Private,
            Token::Package => Vis::Package,
            Token::Protected => Vis::Protected,
            Token::Public => Vis::Public,
            _ => return Vis::Private,
        };
        self.bump();
        v
    }

    fn type_name(&mut self) -> Result<TypeName, LangError> {
        let name = self.ident()?;
        let mut ty = match name.as_str() {
            "int" => TypeName::Int,
            _ => TypeName::Class(name),
        };
        while self.peek() == &Token::LBracket {
            self.bump();
            self.eat(&Token::RBracket)?;
            ty = TypeName::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn program(&mut self) -> Result<SourceProgram, LangError> {
        let mut out = SourceProgram::default();
        loop {
            match self.peek() {
                Token::Eof => break,
                Token::Class => out.classes.push(self.class_decl()?),
                Token::Def => out.funcs.push(self.func_decl()?),
                Token::Static | Token::Private | Token::Package | Token::Protected
                | Token::Public => out.statics.push(self.static_decl()?),
                other => {
                    return Err(LangError::new(
                        self.line(),
                        format!("expected a declaration, found `{other}`"),
                    ))
                }
            }
        }
        Ok(out)
    }

    fn class_decl(&mut self) -> Result<ClassDecl, LangError> {
        let line = self.line();
        self.eat(&Token::Class)?;
        let name = self.ident()?;
        let extends = if self.peek() == &Token::Extends {
            self.bump();
            Some(self.ident()?)
        } else {
            None
        };
        self.eat(&Token::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while self.peek() != &Token::RBrace {
            match self.peek() {
                Token::Def => methods.push(self.func_decl()?),
                _ => {
                    let fline = self.line();
                    let vis = self.visibility();
                    self.eat(&Token::Field)?;
                    let fname = self.ident()?;
                    self.eat(&Token::Colon)?;
                    let ty = self.type_name()?;
                    self.eat(&Token::Semi)?;
                    fields.push(FieldDecl {
                        name: fname,
                        vis,
                        ty,
                        line: fline,
                    });
                }
            }
        }
        self.eat(&Token::RBrace)?;
        Ok(ClassDecl {
            name,
            extends,
            fields,
            methods,
            line,
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let line = self.line();
        self.eat(&Token::Def)?;
        let name = self.ident()?;
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        while self.peek() != &Token::RParen {
            if !params.is_empty() {
                self.eat(&Token::Comma)?;
            }
            let pname = self.ident()?;
            self.eat(&Token::Colon)?;
            let ty = self.type_name()?;
            params.push((pname, ty));
        }
        self.eat(&Token::RParen)?;
        let ret = if self.peek() == &Token::Colon {
            self.bump();
            Some(self.type_name()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn static_decl(&mut self) -> Result<StaticDecl, LangError> {
        let line = self.line();
        let vis = self.visibility();
        self.eat(&Token::Static)?;
        let name = self.ident()?;
        self.eat(&Token::Colon)?;
        let ty = self.type_name()?;
        let init = if self.peek() == &Token::Assign {
            self.bump();
            let negative = if self.peek() == &Token::Minus {
                self.bump();
                true
            } else {
                false
            };
            match self.bump() {
                Token::Int(v) => Some(if negative { -v } else { v }),
                other => {
                    return Err(LangError::new(
                        line,
                        format!("static initialisers must be integer literals, found `{other}`"),
                    ))
                }
            }
        } else {
            None
        };
        self.eat(&Token::Semi)?;
        Ok(StaticDecl {
            name,
            vis,
            ty,
            init,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::RBrace {
            stmts.push(self.stmt()?);
        }
        self.eat(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek() {
            Token::Var => {
                self.bump();
                let name = self.ident()?;
                let ty = if self.peek() == &Token::Colon {
                    self.bump();
                    Some(self.type_name()?)
                } else {
                    None
                };
                self.eat(&Token::Assign)?;
                let init = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Var {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            Token::If => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Token::Else {
                    self.bump();
                    if self.peek() == &Token::If {
                        vec![self.stmt()?] // else-if chains
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            Token::While => {
                self.bump();
                self.eat(&Token::LParen)?;
                let cond = self.expr()?;
                self.eat(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Token::Return => {
                self.bump();
                let value = if self.peek() == &Token::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Token::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Token::Print => {
                self.bump();
                let value = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Print { value, line })
            }
            _ => {
                let expr = self.expr()?;
                if self.peek() == &Token::Assign {
                    self.bump();
                    let target = match expr {
                        Expr::Name(name, _) => LValue::Name(name),
                        Expr::Field { recv, name, .. } => LValue::Field { recv: *recv, name },
                        Expr::Index { arr, idx, .. } => LValue::Index {
                            arr: *arr,
                            idx: *idx,
                        },
                        other => {
                            return Err(LangError::new(
                                other.line(),
                                "this expression cannot be assigned to",
                            ))
                        }
                    };
                    let value = self.expr()?;
                    self.eat(&Token::Semi)?;
                    Ok(Stmt::Assign {
                        target,
                        value,
                        line,
                    })
                } else {
                    self.eat(&Token::Semi)?;
                    Ok(Stmt::ExprStmt { expr, line })
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.logical_and()?;
        while self.peek() == &Token::OrOr {
            let line = self.line();
            self.bump();
            let rhs = self.logical_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.equality()?;
        while self.peek() == &Token::AndAnd {
            let line = self.line();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs), line);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Token::Eq => BinOp::Eq,
                Token::Ne => BinOp::Ne,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Token::Lt => BinOp::Lt,
                Token::Le => BinOp::Le,
                Token::Gt => BinOp::Gt,
                Token::Ge => BinOp::Ge,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => break,
            };
            let line = self.line();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek() == &Token::Minus {
            let line = self.line();
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner), line));
        }
        if self.peek() == &Token::Bang {
            let line = self.line();
            self.bump();
            let inner = self.unary()?;
            return Ok(Expr::Not(Box::new(inner), line));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                Token::Dot => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    if self.peek() == &Token::LParen {
                        let args = self.call_args()?;
                        expr = Expr::Call {
                            recv: Some(Box::new(expr)),
                            name,
                            args,
                            line,
                        };
                    } else if name == "length" {
                        expr = Expr::Length {
                            arr: Box::new(expr),
                            line,
                        };
                    } else {
                        expr = Expr::Field {
                            recv: Box::new(expr),
                            name,
                            line,
                        };
                    }
                }
                Token::LBracket => {
                    let line = self.line();
                    self.bump();
                    let idx = self.expr()?;
                    self.eat(&Token::RBracket)?;
                    expr = Expr::Index {
                        arr: Box::new(expr),
                        idx: Box::new(idx),
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.eat(&Token::LParen)?;
        let mut args = Vec::new();
        while self.peek() != &Token::RParen {
            if !args.is_empty() {
                self.eat(&Token::Comma)?;
            }
            args.push(self.expr()?);
        }
        self.eat(&Token::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, line))
            }
            Token::Null => {
                self.bump();
                Ok(Expr::Null(line))
            }
            Token::This => {
                self.bump();
                Ok(Expr::This(line))
            }
            Token::New => {
                self.bump();
                let name = self.ident()?;
                if self.peek() == &Token::LBracket {
                    // `new T[len]`, with extra `[]` pairs for nested
                    // element types: `new int[][8]` is an array of arrays.
                    self.bump();
                    // Distinguish `new int[expr]` from `new int[][expr]`.
                    let mut elem = match name.as_str() {
                        "int" => TypeName::Int,
                        _ => TypeName::Class(name.clone()),
                    };
                    while self.peek() == &Token::RBracket {
                        self.bump();
                        elem = TypeName::Array(Box::new(elem));
                        self.eat(&Token::LBracket)?;
                    }
                    let len = self.expr()?;
                    self.eat(&Token::RBracket)?;
                    return Ok(Expr::NewArray {
                        elem,
                        len: Box::new(len),
                        line,
                    });
                }
                let args = if self.peek() == &Token::LParen {
                    self.call_args()?
                } else {
                    Vec::new()
                };
                Ok(Expr::New { class: name, args, line })
            }
            Token::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                if self.peek() == &Token::LParen {
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        recv: None,
                        name,
                        args,
                        line,
                    })
                } else {
                    Ok(Expr::Name(name, line))
                }
            }
            other => Err(LangError::new(
                line,
                format!("expected an expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<SourceProgram, LangError> {
        parse(&lex(src)?)
    }

    #[test]
    fn parses_a_class_with_fields_and_methods() {
        let p = parse_src(
            "class Point { field x: int; public field y: int;\n  def init(a: int, b: int) { this.x = a; this.y = b; } }",
        )
        .unwrap();
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.fields[0].vis, Vis::Private);
        assert_eq!(c.fields[1].vis, Vis::Public);
        assert_eq!(c.methods.len(), 1);
        assert_eq!(c.methods[0].params.len(), 2);
    }

    #[test]
    fn parses_precedence_correctly() {
        let p = parse_src("def main(input: int[]) { print 1 + 2 * 3 < 10; }").unwrap();
        let Stmt::Print { value, .. } = &p.funcs[0].body[0] else {
            panic!("print");
        };
        // (1 + (2*3)) < 10
        let Expr::Binary { op: BinOp::Lt, lhs, .. } = value else {
            panic!("topmost is <, got {value:?}");
        };
        let Expr::Binary { op: BinOp::Add, rhs, .. } = lhs.as_ref() else {
            panic!("lhs is +");
        };
        assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_statements_and_lvalues() {
        let p = parse_src(
            "def main(input: int[]) { var a: int[] = new int[4]; a[0] = 1; var p: P = new P(2); p.f = a[0]; while (a[0] < 5) { a[0] = a[0] + 1; } if (a[0] == 5) { print 1; } else { print 0; } return; }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].body.len(), 7);
        assert!(matches!(p.funcs[0].body[1], Stmt::Assign { target: LValue::Index { .. }, .. }));
        assert!(matches!(p.funcs[0].body[3], Stmt::Assign { target: LValue::Field { .. }, .. }));
    }

    #[test]
    fn parses_calls_news_and_length() {
        let p = parse_src(
            "def main(input: int[]) { var v: V = new V; v.add(input.length); helper(1, 2); }",
        )
        .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(&body[1], Stmt::ExprStmt { expr: Expr::Call { recv: Some(_), .. }, .. }));
        assert!(matches!(&body[2], Stmt::ExprStmt { expr: Expr::Call { recv: None, .. }, .. }));
    }

    #[test]
    fn parses_statics_and_else_if() {
        let p = parse_src(
            "private static total: int = -3;\npublic static cache: Cache;\ndef main(input: int[]) { if (1) { } else if (2) { } else { print 3; } }",
        )
        .unwrap();
        assert_eq!(p.statics.len(), 2);
        assert_eq!(p.statics[0].init, Some(-3));
        assert_eq!(p.statics[1].init, None);
        assert!(matches!(p.statics[1].ty, TypeName::Class(_)));
    }

    #[test]
    fn rejects_assigning_to_a_call() {
        let err = parse_src("def main(input: int[]) { f() = 3; }").unwrap_err();
        assert!(err.message.contains("cannot be assigned"));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_src("def main(input: int[]) {\n  var x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
