//! Tokens of the mini-Java surface language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // literals & names
    /// An integer literal.
    Int(i64),
    /// An identifier.
    Ident(String),

    // keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `field`
    Field,
    /// `def`
    Def,
    /// `var`
    Var,
    /// `static`
    Static,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `print`
    Print,
    /// `new`
    New,
    /// `null`
    Null,
    /// `this`
    This,
    /// `private`
    Private,
    /// `package`
    Package,
    /// `protected`
    Protected,
    /// `public`
    Public,

    // punctuation & operators
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Class => f.write_str("class"),
            Token::Extends => f.write_str("extends"),
            Token::Field => f.write_str("field"),
            Token::Def => f.write_str("def"),
            Token::Var => f.write_str("var"),
            Token::Static => f.write_str("static"),
            Token::If => f.write_str("if"),
            Token::Else => f.write_str("else"),
            Token::While => f.write_str("while"),
            Token::Return => f.write_str("return"),
            Token::Print => f.write_str("print"),
            Token::New => f.write_str("new"),
            Token::Null => f.write_str("null"),
            Token::This => f.write_str("this"),
            Token::Private => f.write_str("private"),
            Token::Package => f.write_str("package"),
            Token::Protected => f.write_str("protected"),
            Token::Public => f.write_str("public"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::Semi => f.write_str(";"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Colon => f.write_str(":"),
            Token::Assign => f.write_str("="),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("=="),
            Token::Ne => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::AndAnd => f.write_str("&&"),
            Token::OrOr => f.write_str("||"),
            Token::Bang => f.write_str("!"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token together with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number where it starts.
    pub line: usize,
}
