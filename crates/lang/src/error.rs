//! Front-end errors with source positions.

use std::error::Error;
use std::fmt;

/// A lexing, parsing, type, or code-generation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl LangError {
    /// Creates an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        LangError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line_and_message() {
        let e = LangError::new(12, "unexpected `}`");
        assert_eq!(e.to_string(), "line 12: unexpected `}`");
    }
}
