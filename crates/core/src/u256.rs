//! A minimal unsigned 256-bit accumulator.
//!
//! Per-object drag is a `u128` (bytes × clock); classifying a site by the
//! coefficient of variation of its drags needs the sum of *squared* drags,
//! which can exceed 128 bits. [`U256`] carries that one sum exactly, so
//! shard merges stay pure integer addition and the final float conversion
//! happens exactly once, independent of record order and shard count.

/// An unsigned 256-bit integer: `hi * 2^128 + lo`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct U256 {
    hi: u128,
    lo: u128,
}

impl U256 {
    /// The exact 256-bit product of two `u128`s (schoolbook on 64-bit
    /// limbs).
    pub(crate) fn mul_u128(a: u128, b: u128) -> U256 {
        const MASK: u128 = (1u128 << 64) - 1;
        let (a1, a0) = (a >> 64, a & MASK);
        let (b1, b0) = (b >> 64, b & MASK);
        let p00 = a0 * b0;
        let p01 = a0 * b1;
        let p10 = a1 * b0;
        let p11 = a1 * b1;
        let (mid, mid_carry) = p01.overflowing_add(p10);
        let mut hi = p11 + ((mid_carry as u128) << 64);
        let (lo, lo_carry) = p00.overflowing_add(mid << 64);
        hi += (mid >> 64) + lo_carry as u128;
        U256 { hi, lo }
    }

    /// In-place addition (wrapping in the astronomically-unreachable top
    /// bit, like the `u128` sums around it).
    pub(crate) fn add_assign(&mut self, other: U256) {
        let (lo, carry) = self.lo.overflowing_add(other.lo);
        self.lo = lo;
        self.hi = self.hi.wrapping_add(other.hi).wrapping_add(carry as u128);
    }

    /// Nearest-`f64` value; the only lossy step, taken once at finalize.
    pub(crate) fn to_f64(self) -> f64 {
        self.hi as f64 * 340_282_366_920_938_463_463_374_607_431_768_211_456.0 + self.lo as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products_match_u128() {
        for a in [0u128, 1, 7, 1 << 63, u64::MAX as u128] {
            for b in [0u128, 1, 9, 1 << 40, u64::MAX as u128] {
                let p = U256::mul_u128(a, b);
                assert_eq!(p, U256 { hi: 0, lo: a * b }, "{a} * {b}");
            }
        }
    }

    #[test]
    fn max_square_has_exact_limbs() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1.
        let p = U256::mul_u128(u128::MAX, u128::MAX);
        assert_eq!(p.hi, u128::MAX - 1);
        assert_eq!(p.lo, 1);
    }

    #[test]
    fn cross_limb_product() {
        // (2^64 + 3) * (2^64 + 5) = 2^128 + 8 * 2^64 + 15.
        let p = U256::mul_u128((1 << 64) + 3, (1 << 64) + 5);
        assert_eq!(p.hi, 1);
        assert_eq!(p.lo, (8u128 << 64) + 15);
    }

    #[test]
    fn addition_carries_between_limbs() {
        let mut x = U256 { hi: 0, lo: u128::MAX };
        x.add_assign(U256 { hi: 0, lo: 1 });
        assert_eq!(x, U256 { hi: 1, lo: 0 });
    }

    #[test]
    fn to_f64_tracks_magnitude() {
        assert_eq!(U256 { hi: 0, lo: 1000 }.to_f64(), 1000.0);
        let big = U256 { hi: 2, lo: 0 }.to_f64();
        assert_eq!(big, 2.0 * (2.0f64).powi(128));
    }

    #[test]
    fn sum_of_squares_associates() {
        // Same multiset, different add orders → identical limbs.
        let drags = [3u128, u64::MAX as u128 * 97, 1 << 100, 42];
        let mut fwd = U256::default();
        for &d in &drags {
            fwd.add_assign(U256::mul_u128(d, d));
        }
        let mut rev = U256::default();
        for &d in drags.iter().rev() {
            rev.add_assign(U256::mul_u128(d, d));
        }
        assert_eq!(fwd, rev);
    }
}
