//! Per-site lifetime distributions — §3.4's second step: "the tool also
//! partitions the dragged objects at that anchor allocation site according
//! to their drag time, in-use time, and collection time", which is how a
//! programmer tells the four behaviour patterns apart.

use heapdrag_vm::ids::ChainId;

use crate::record::ObjectRecord;

/// A logarithmic histogram (power-of-two buckets) over byte-clock times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Buckets {
    /// Upper bounds of each bucket (exclusive); the last bucket is
    /// unbounded.
    pub bounds: Vec<u64>,
    /// Counts per bucket (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
}

impl Buckets {
    /// Builds power-of-two buckets covering `1 KB .. max`, then fills them.
    pub fn collect(values: impl Iterator<Item = u64>) -> Self {
        let mut bounds = Vec::new();
        let mut b = 1024u64;
        while b <= 16 * 1024 * 1024 {
            bounds.push(b);
            b *= 4;
        }
        let mut counts = vec![0u64; bounds.len() + 1];
        for v in values {
            let idx = bounds.iter().position(|&ub| v < ub).unwrap_or(bounds.len());
            counts[idx] += 1;
        }
        Buckets { bounds, counts }
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Renders one row per non-empty bucket as `"< 4KB   ########  12"`.
    pub fn render(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let label = if i < self.bounds.len() {
                format!("< {:>6} KB", self.bounds[i] / 1024)
            } else {
                ">= big    ".to_string()
            };
            let bar = "#".repeat(((count * 30) / max).max(1) as usize);
            out.push_str(&format!("{label}  {bar}  {count}\n"));
        }
        out
    }
}

/// The three distributions of §3.4 for one site's objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeHistogram {
    /// Objects in the group.
    pub objects: u64,
    /// Objects never used (within `window`).
    pub never_used: u64,
    /// Distribution of drag times.
    pub drag_time: Buckets,
    /// Distribution of in-use times.
    pub in_use_time: Buckets,
    /// Distribution of collection times (when each object was reclaimed).
    pub collection_time: Buckets,
}

impl LifetimeHistogram {
    /// Builds the histogram for the records allocated at `site`.
    pub fn for_site(records: &[ObjectRecord], site: ChainId, window: u64) -> Self {
        let group: Vec<&ObjectRecord> = records.iter().filter(|r| r.alloc_site == site).collect();
        LifetimeHistogram {
            objects: group.len() as u64,
            never_used: group.iter().filter(|r| r.is_never_used(window)).count() as u64,
            drag_time: Buckets::collect(group.iter().map(|r| r.drag_time())),
            in_use_time: Buckets::collect(group.iter().map(|r| r.in_use_time())),
            collection_time: Buckets::collect(group.iter().map(|r| r.freed)),
        }
    }

    /// Renders the §3.4 investigation view for this site.
    pub fn render(&self) -> String {
        format!(
            "objects: {}   never-used: {}\n-- drag time --\n{}-- in-use time --\n{}-- collection time --\n{}",
            self.objects,
            self.never_used,
            self.drag_time.render(),
            self.in_use_time.render(),
            self.collection_time.render(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ClassId, ObjectId};

    fn record(site: u32, created: u64, last_use: Option<u64>, freed: u64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(0),
            class: ClassId(0),
            size: 16,
            created,
            freed,
            last_use,
            alloc_site: ChainId(site),
            last_use_site: None,
            at_exit: false,
        }
    }

    #[test]
    fn buckets_are_logarithmic_and_total() {
        let b = Buckets::collect([512, 2048, 5000, 100 << 20].into_iter());
        assert_eq!(b.total(), 4);
        assert_eq!(b.counts[0], 1, "512 < 1KB bucket");
        assert_eq!(*b.counts.last().unwrap(), 1, "100MB overflows to last");
        let text = b.render();
        assert!(text.contains('#'));
    }

    #[test]
    fn histogram_filters_by_site() {
        let records = vec![
            record(1, 0, Some(10_000), 200_000),
            record(1, 0, None, 300_000),
            record(2, 0, Some(5), 10),
        ];
        let h = LifetimeHistogram::for_site(&records, ChainId(1), 0);
        assert_eq!(h.objects, 2);
        assert_eq!(h.never_used, 1);
        assert_eq!(h.drag_time.total(), 2);
        assert!(h.render().contains("never-used: 1"));
    }

    #[test]
    fn empty_site_renders() {
        let h = LifetimeHistogram::for_site(&[], ChainId(9), 0);
        assert_eq!(h.objects, 0);
        assert_eq!(h.render().lines().count(), 4);
    }
}
