//! The log file format connecting the two phases of the tool.
//!
//! Phase 1 (the instrumented VM run) writes one line per object trailer,
//! per deep-GC sample, and per interned site chain; phase 2 parses the file
//! back and analyzes it without needing the program. The format is a
//! versioned, line-oriented text codec:
//!
//! ```text
//! heapdrag-log v1
//! end 1048576
//! chain 3 Juru.readDocument@12 "new char[]" <- Juru.run@4
//! obj 17 8 816 1024 204800 2048 3 5 0
//! gc 102400 81920 512
//! ```
//!
//! An `obj` line is `id class size created freed last_use alloc_chain
//! use_chain at_exit`, with `-` for absent optional fields.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};
use heapdrag_vm::program::Program;

use crate::parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
use crate::profiler::ProfileRun;
use crate::record::{GcSample, ObjectRecord};
use crate::report::ChainNamer;

/// A malformed log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log line {}: {}", self.line, self.message)
    }
}

impl Error for LogError {}

/// The parsed contents of a phase-1 log file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedLog {
    /// Final allocation-clock value.
    pub end_time: u64,
    /// Readable names for the chain ids appearing in the records.
    pub chain_names: HashMap<ChainId, String>,
    /// Object trailers.
    pub records: Vec<ObjectRecord>,
    /// Deep-GC samples.
    pub samples: Vec<GcSample>,
}

impl ChainNamer for ParsedLog {
    fn chain_name(&self, chain: ChainId) -> String {
        self.chain_names
            .get(&chain)
            .cloned()
            .unwrap_or_else(|| format!("<chain {}>", chain.0))
    }
}

impl ParsedLog {
    /// Publishes the off-line side of the **reconciliation surface**: the
    /// same `heapdrag_*` metric names the on-line profiler emits
    /// ([`crate::profiler::ProfilerMetrics`]), recomputed from the parsed
    /// log. A lossless pipeline makes the two snapshots agree exactly, for
    /// any shard count — the differential oracle `tests/metrics_parity.rs`
    /// enforces.
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        let at_exit = self.records.iter().filter(|r| r.at_exit).count() as u64;
        registry
            .counter("heapdrag_objects_created_total")
            .add(self.records.len() as u64);
        registry
            .counter("heapdrag_alloc_bytes_total")
            .add(self.records.iter().map(|r| r.size).sum());
        registry
            .counter("heapdrag_objects_reclaimed_total")
            .add(self.records.len() as u64 - at_exit);
        registry
            .counter("heapdrag_objects_at_exit_total")
            .add(at_exit);
        registry
            .counter("heapdrag_deep_gc_samples_total")
            .add(self.samples.len() as u64);
        registry
            .gauge("heapdrag_end_time_bytes")
            .set(i64::try_from(self.end_time).unwrap_or(i64::MAX));
    }
}

/// Serialises a profiling run (phase-1 output).
pub fn write_log(run: &ProfileRun, program: &Program) -> String {
    let mut out = String::from("heapdrag-log v1\n");
    out.push_str(&format!("end {}\n", run.outcome.end_time));
    let mut chains: Vec<ChainId> = run
        .records
        .iter()
        .flat_map(|r| [Some(r.alloc_site), r.last_use_site])
        .flatten()
        .collect();
    chains.sort_unstable();
    chains.dedup();
    for c in chains {
        let name = run.sites.format_chain(program, c).replace('\n', " ");
        out.push_str(&format!("chain {} {}\n", c.0, name));
    }
    for r in &run.records {
        out.push_str(&format!(
            "obj {} {} {} {} {} {} {} {} {}\n",
            r.object.0,
            r.class.0,
            r.size,
            r.created,
            r.freed,
            r.last_use.map_or("-".to_string(), |t| t.to_string()),
            r.alloc_site.0,
            r.last_use_site.map_or("-".to_string(), |c| c.0.to_string()),
            r.at_exit as u8,
        ));
    }
    for s in &run.samples {
        out.push_str(&format!(
            "gc {} {} {}\n",
            s.time, s.reachable_bytes, s.reachable_count
        ));
    }
    out
}

fn field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, LogError> {
    let word = parts.next().ok_or_else(|| LogError {
        line,
        message: format!("missing field `{what}`"),
    })?;
    word.parse().map_err(|_| LogError {
        line,
        message: format!("bad value `{word}` for `{what}`"),
    })
}

fn opt_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<Option<T>, LogError> {
    let word = parts.next().ok_or_else(|| LogError {
        line,
        message: format!("missing field `{what}`"),
    })?;
    if word == "-" {
        return Ok(None);
    }
    word.parse().map(Some).map_err(|_| LogError {
        line,
        message: format!("bad value `{word}` for `{what}`"),
    })
}

/// One decoded record line: either an object trailer or a deep-GC sample.
/// Chunk workers keep the two streams separate so the merge can append to
/// `records`/`samples` exactly as the sequential scan would.
#[derive(Debug, Default)]
struct ChunkOut {
    records: Vec<ObjectRecord>,
    samples: Vec<GcSample>,
}

/// Parses one `obj` line body (after the directive word).
fn parse_obj<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<ObjectRecord, LogError> {
    let object = ObjectId(field(parts, n, "object id")?);
    let class = ClassId(field(parts, n, "class id")?);
    let size = field(parts, n, "size")?;
    let created = field(parts, n, "created")?;
    let freed = field(parts, n, "freed")?;
    let last_use = opt_field(parts, n, "last use")?;
    let alloc_site = ChainId(field(parts, n, "alloc chain")?);
    let last_use_site = opt_field::<u32>(parts, n, "use chain")?.map(ChainId);
    let at_exit: u8 = field(parts, n, "at-exit flag")?;
    Ok(ObjectRecord {
        object,
        class,
        size,
        created,
        freed,
        last_use,
        alloc_site,
        last_use_site,
        at_exit: at_exit != 0,
    })
}

/// Parses one `gc` line body (after the directive word).
fn parse_gc<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<GcSample, LogError> {
    Ok(GcSample {
        time: field(parts, n, "time")?,
        reachable_bytes: field(parts, n, "reachable bytes")?,
        reachable_count: field(parts, n, "reachable count")?,
    })
}

/// Decodes one chunk of `obj`/`gc` lines. `lines` carries the 1-based line
/// number of each entry so errors keep their sequential line numbers.
fn parse_chunk(lines: &[(usize, &str)]) -> Result<ChunkOut, LogError> {
    let mut out = ChunkOut::default();
    for &(n, line) in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("obj") => out.records.push(parse_obj(&mut parts, n)?),
            Some("gc") => out.samples.push(parse_gc(&mut parts, n)?),
            other => unreachable!("chunked line {n} is not obj/gc: {other:?}"),
        }
    }
    Ok(out)
}

/// Parses a phase-1 log (phase-2 input). Sequential — the `shards = 1`
/// special case of [`parse_log_sharded`].
///
/// # Errors
///
/// Returns a [`LogError`] naming the first malformed line.
pub fn parse_log(text: &str) -> Result<ParsedLog, LogError> {
    parse_log_sharded(text, &ParallelConfig::sequential()).map(|(log, _)| log)
}

/// Parses a phase-1 log with a sharded record decoder.
///
/// The coordinating thread scans the file once: the header and the `end`
/// and `chain` directives are parsed in place (they are rare and carry
/// shared state), while `obj`/`gc` lines — the bulk of a trace — are
/// batched into chunks of [`ParallelConfig::chunk_records`] lines and
/// decoded on up to [`ParallelConfig::shards`] worker threads. Chunks are
/// reassembled in input order, so the resulting [`ParsedLog`] is identical
/// to the sequential parse; when several lines are malformed, the reported
/// [`LogError`] is the one with the smallest line number, exactly as the
/// sequential scan would have reported.
///
/// # Errors
///
/// Returns a [`LogError`] naming the first malformed line.
pub fn parse_log_sharded(
    text: &str,
    par: &ParallelConfig,
) -> Result<(ParsedLog, ParallelMetrics), LogError> {
    let start = Instant::now();
    let mut metrics = ParallelMetrics::default();
    let split_start = Instant::now();

    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (_, header) = lines.next().ok_or(LogError {
        line: 1,
        message: "empty log".into(),
    })?;
    if header != "heapdrag-log v1" {
        return Err(LogError {
            line: 1,
            message: format!("unrecognised header `{header}`"),
        });
    }

    let chunk_records = par.effective_chunk();
    let mut log = ParsedLog::default();
    let mut chunks: Vec<Vec<(usize, &str)>> = Vec::new();
    let mut current: Vec<(usize, &str)> = Vec::new();
    // The scan stops at the first error *it* can see (the sequential scan
    // would stop there too); record lines before it may still hold an
    // earlier error, found below by the chunk workers.
    let mut scan_error: Option<LogError> = None;
    for (n, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("end") => match field(&mut parts, n, "end time") {
                Ok(t) => log.end_time = t,
                Err(e) => {
                    scan_error = Some(e);
                    break;
                }
            },
            Some("chain") => match field::<u32>(&mut parts, n, "chain id") {
                Ok(id) => {
                    let rest: Vec<&str> = parts.collect();
                    log.chain_names.insert(ChainId(id), rest.join(" "));
                }
                Err(e) => {
                    scan_error = Some(e);
                    break;
                }
            },
            Some("obj") | Some("gc") => {
                current.push((n, line));
                if current.len() >= chunk_records {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            Some(other) => {
                scan_error = Some(LogError {
                    line: n,
                    message: format!("unknown directive `{other}`"),
                });
                break;
            }
            None => {}
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    metrics.split_elapsed = split_start.elapsed();

    let workers = par.effective_shards(chunks.len());
    let results: Vec<(Result<ChunkOut, LogError>, ShardMetrics)> = if workers <= 1 {
        chunks
            .iter()
            .enumerate()
            .map(|(i, c)| decode_chunk(i, c))
            .collect()
    } else {
        // Work-stealing over chunk indices: workers pull the next
        // unclaimed chunk, so a slow chunk cannot serialise the rest.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let chunks = &chunks;
        let next = &next;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= chunks.len() {
                                return mine;
                            }
                            let (result, m) = decode_chunk(i, &chunks[i]);
                            mine.push((i, result, m));
                        }
                    })
                })
                .collect();
            let mut all: Vec<(usize, Result<ChunkOut, LogError>, ShardMetrics)> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("parse worker panicked"))
                .collect();
            all.sort_by_key(|(i, _, _)| *i);
            all.into_iter().map(|(_, r, m)| (r, m)).collect()
        })
    };

    let merge_start = Instant::now();
    // The first malformed line wins, wherever it was found.
    let mut first_error: Option<LogError> = scan_error;
    let mut outs = Vec::with_capacity(results.len());
    for (result, m) in results {
        match result {
            Ok(out) => {
                metrics.shards.push(m);
                outs.push(out);
            }
            Err(e) => {
                if first_error.as_ref().is_none_or(|f| e.line < f.line) {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    for out in outs {
        log.records.extend(out.records);
        log.samples.extend(out.samples);
    }
    metrics.merge_elapsed = merge_start.elapsed();
    metrics.total_elapsed = start.elapsed();
    Ok((log, metrics))
}

/// Decodes one chunk, timing the decode and counting what it produced.
fn decode_chunk(
    index: usize,
    lines: &[(usize, &str)],
) -> (Result<ChunkOut, LogError>, ShardMetrics) {
    let t = Instant::now();
    let result = parse_chunk(lines);
    let (records, samples) = match &result {
        Ok(out) => (out.records.len() as u64, out.samples.len() as u64),
        Err(_) => (0, 0),
    };
    let m = ShardMetrics {
        shard: index,
        records,
        samples,
        groups: 0,
        elapsed: t.elapsed(),
    };
    (result, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_bad_header() {
        let e = parse_log("not-a-log\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn parse_handcrafted_log() {
        let text = "heapdrag-log v1\nend 1000\nchain 0 Main.main@3 \"big array\"\nobj 1 2 816 16 900 320 0 0 0\nobj 2 2 24 32 1000 - 0 - 1\ngc 500 840 2\n";
        let log = parse_log(text).unwrap();
        assert_eq!(log.end_time, 1000);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.samples.len(), 1);
        assert_eq!(log.records[0].last_use, Some(320));
        assert_eq!(log.records[1].last_use, None);
        assert!(log.records[1].at_exit);
        assert!(log.chain_name(ChainId(0)).contains("big array"));
        assert!(log.chain_name(ChainId(9)).contains("<chain 9>"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "heapdrag-log v1\nobj 1 bad\n";
        let e = parse_log(text).unwrap_err();
        assert_eq!(e.line, 2);
        let text = "heapdrag-log v1\nwhat 1\n";
        let e = parse_log(text).unwrap_err();
        assert!(e.message.contains("what"));
    }

    /// A synthetic log big enough to exercise multiple chunks.
    fn big_log(records: usize) -> String {
        let mut text = String::from("heapdrag-log v1\nend 1000000\nchain 0 Main.main@1\n");
        for i in 0..records {
            text.push_str(&format!(
                "obj {} 2 {} {} {} {} 0 {} {}\n",
                i,
                8 + (i % 13) * 8,
                i * 3,
                i * 3 + 500,
                if i % 4 == 0 { "-".to_string() } else { (i * 3 + 100).to_string() },
                if i % 4 == 0 { "-".to_string() } else { "0".to_string() },
                i % 2,
            ));
            if i % 50 == 0 {
                text.push_str(&format!("gc {} {} {}\n", i * 3, i * 10, i));
            }
        }
        text
    }

    #[test]
    fn sharded_parse_matches_sequential() {
        let text = big_log(500);
        let sequential = parse_log(&text).unwrap();
        for shards in [1, 2, 8] {
            let par = ParallelConfig {
                shards,
                chunk_records: 64,
            };
            let (sharded, metrics) = parse_log_sharded(&text, &par).unwrap();
            assert_eq!(sharded, sequential, "shards = {shards}");
            assert_eq!(metrics.total_records(), 500);
            assert!(metrics.shards.len() > 1, "chunked into multiple units");
        }
    }

    #[test]
    fn sharded_parse_reports_first_error_line() {
        // Two malformed lines; every shard count must report the earlier
        // one, exactly like the sequential scan.
        let mut text = big_log(200);
        let mut lines: Vec<&str> = text.lines().collect();
        let bad_early = "obj 7 nonsense";
        let bad_late = "what 1";
        lines[40] = bad_early; // 1-based line 41
        lines[150] = bad_late;
        text = lines.join("\n");
        for shards in [1, 2, 8] {
            let par = ParallelConfig {
                shards,
                chunk_records: 16,
            };
            let e = parse_log_sharded(&text, &par).unwrap_err();
            assert_eq!(e.line, 41, "shards = {shards}: {e}");
        }
    }
}
