//! The log file format connecting the two phases of the tool.
//!
//! Phase 1 (the instrumented VM run) writes one record per object trailer,
//! per deep-GC sample, and per interned site chain; phase 2 parses the file
//! back and analyzes it without needing the program. Two on-disk encodings
//! exist behind the [`crate::codec`] abstraction:
//!
//! * the line-oriented **text** format (`heapdrag-log v1`,
//!   [`crate::codec::text`]), human-readable and greppable, and
//! * the length-prefixed **binary** frame format (HDLOG v2,
//!   [`crate::codec::binary`]), smaller on disk and faster to decode.
//!
//! Every ingest entry point autodetects the format from the input's first
//! bytes ([`LogFormat::detect`]); the write path picks a format explicitly
//! ([`write_log_to`]). The end-of-log marker (the text `end` directive /
//! the binary end frame) is written **last** by the profiler's exit path,
//! so its presence certifies the log complete: a log without it was torn
//! mid-write by a crash, a kill, or a full disk.
//!
//! # Fault-tolerant ingestion
//!
//! Real traces come from runs that crashed, were killed, or hit `ENOSPC`,
//! and lifetime measurements remain meaningful on the surviving prefix.
//! [`ingest_log`] therefore supports two [`IngestMode`]s:
//!
//! * **Strict** (the default, and every `parse_log*` entry point): the
//!   first malformed line or frame aborts the parse with a [`LogError`]
//!   carrying a stable [`ErrorCode`], the 1-based line/frame number, and
//!   the byte offset of the line or frame.
//! * **Salvage**: malformed or torn lines/frames are dropped and counted,
//!   exact duplicate records are collapsed, and a missing end marker is
//!   repaired by synthesizing the exit time from the latest event
//!   observed. The accompanying [`SalvageSummary`] reports exactly what
//!   was kept, dropped, and repaired — and which input format was
//!   detected — and renders as the report footer.
//!
//! Both modes, in both formats, run under the same sharded decoder and
//! produce results that are byte-identical for every shard count (see
//! [`crate::parallel`]); the same run serialised as text or binary yields
//! the identical [`ParsedLog`] and analyzer report.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::io;
use std::time::Instant;

use heapdrag_vm::ids::{ChainId, ObjectId};
use heapdrag_vm::program::Program;

use crate::codec::{
    self, normalize_chain_name, BinarySink, CountingWriter, LogFormat, TextSink, TraceSink,
};
use crate::parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
use crate::profiler::ProfileRun;
use crate::record::{GcSample, ObjectRecord, RetainRecord};
use crate::report::ChainNamer;

/// Stable, machine-readable codes for everything that can go wrong while
/// ingesting a phase-1 log.
///
/// The numeric codes are part of the tool's interface (scripts grep for
/// them, CI pins them, the troubleshooting table in the README maps them
/// to fixes) and must never be renumbered. The same taxonomy covers both
/// trace formats; "line" below means a text line or a binary frame.
///
/// | code | name | meaning | strict | salvage |
/// |------|------|---------|--------|---------|
/// | `E001` | `empty-log` | the file has no bytes at all | fatal | fatal |
/// | `E002` | `bad-header` | line 1 is not `heapdrag-log v1` (and the input is not HDLOG v2) | error | line dropped |
/// | `E003` | `unknown-directive` | a line starts with an unknown word / a frame has an unknown tag | error | line/frame dropped (binary: the length prefix still walks, so exactly one frame is skipped) |
/// | `E004` | `missing-field` | a record line/frame payload is short | error | line dropped |
/// | `E005` | `bad-field-value` | a field does not parse / a varint is corrupt | error | line dropped (binary length prefix: rest of input dropped — framing lost) |
/// | `E006` | `missing-end-marker` | no end marker — log truncated | error | exit time synthesized |
/// | `E007` | `torn-tail` | unterminated final line / truncated final frame | error | the torn tail dropped |
/// | `E008` | `too-many-errors` | salvage exceeded its `--max-errors` bound | — | fatal |
/// | `E009` | `duplicate-record` | a record/sample appears twice | undetected | duplicate collapsed |
/// | `E010` | `worker-lost` | a parse worker panicked; its chunks are gone | error | chunks dropped |
/// | `E011` | `frame-checksum` | a binary frame's checksum does not match | error | frame dropped |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ErrorCode {
    /// `E001`: the input has no bytes at all. Fatal in both modes — there
    /// is nothing to salvage.
    EmptyLog,
    /// `E002`: the input is neither a `heapdrag-log v1` text log nor an
    /// HDLOG v2 binary log.
    BadHeader,
    /// `E003`: a text line starts with a word other than
    /// `end`/`chain`/`obj`/`gc`/`retain`, or a binary frame carries an
    /// unknown tag. Framing survives in both formats (the line terminator
    /// or length prefix still walks to the next unit), so salvage drops
    /// exactly one line or frame — old readers skip frame kinds minted by
    /// newer writers.
    UnknownDirective,
    /// `E004`: a directive line or frame payload ends before all its
    /// fields.
    MissingField,
    /// `E005`: a field is present but does not parse as its type (text),
    /// or a varint is corrupt/overflowing (binary; a corrupt length
    /// prefix loses framing).
    BadFieldValue,
    /// `E006`: the log has no end marker — the run was cut short before
    /// the exit path could write it.
    MissingEndMarker,
    /// `E007`: the final line has no `\n` terminator, or the input ends
    /// inside a binary frame — the classic torn write of a crashed or
    /// out-of-disk run.
    TornTail,
    /// `E008`: salvage mode found more errors than
    /// [`IngestConfig::max_errors`] allows.
    TooManyErrors,
    /// `E009`: the same object record (by id) or an identical deep-GC
    /// sample appears more than once, e.g. from a replayed write buffer.
    DuplicateRecord,
    /// `E010`: a parse worker thread panicked and the chunks it had
    /// claimed were lost. Other workers' chunks are unaffected.
    WorkerLost,
    /// `E011`: a binary frame's stored checksum does not match its
    /// contents. Framing survives (the length prefix still walks to the
    /// next frame), so salvage drops exactly that frame.
    FrameChecksum,
}

impl ErrorCode {
    /// Every code, in numeric order.
    pub const ALL: [ErrorCode; 11] = [
        ErrorCode::EmptyLog,
        ErrorCode::BadHeader,
        ErrorCode::UnknownDirective,
        ErrorCode::MissingField,
        ErrorCode::BadFieldValue,
        ErrorCode::MissingEndMarker,
        ErrorCode::TornTail,
        ErrorCode::TooManyErrors,
        ErrorCode::DuplicateRecord,
        ErrorCode::WorkerLost,
        ErrorCode::FrameChecksum,
    ];

    /// The stable `E0xx` code string.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::EmptyLog => "E001",
            ErrorCode::BadHeader => "E002",
            ErrorCode::UnknownDirective => "E003",
            ErrorCode::MissingField => "E004",
            ErrorCode::BadFieldValue => "E005",
            ErrorCode::MissingEndMarker => "E006",
            ErrorCode::TornTail => "E007",
            ErrorCode::TooManyErrors => "E008",
            ErrorCode::DuplicateRecord => "E009",
            ErrorCode::WorkerLost => "E010",
            ErrorCode::FrameChecksum => "E011",
        }
    }

    /// A short kebab-case name for footers and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::EmptyLog => "empty-log",
            ErrorCode::BadHeader => "bad-header",
            ErrorCode::UnknownDirective => "unknown-directive",
            ErrorCode::MissingField => "missing-field",
            ErrorCode::BadFieldValue => "bad-field-value",
            ErrorCode::MissingEndMarker => "missing-end-marker",
            ErrorCode::TornTail => "torn-tail",
            ErrorCode::TooManyErrors => "too-many-errors",
            ErrorCode::DuplicateRecord => "duplicate-record",
            ErrorCode::WorkerLost => "worker-lost",
            ErrorCode::FrameChecksum => "frame-checksum",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A malformed or unsalvageable log, with enough context to find the bad
/// bytes: the stable [`ErrorCode`], the 1-based line number (text) or
/// frame number (binary), the byte offset of the line/frame start, and —
/// when the unit was decoded on a worker — the parse-chunk index.
///
/// See [`ErrorCode`] for the full code table and the strict/salvage
/// behaviour of each code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    /// What went wrong, as a stable code.
    pub code: ErrorCode,
    /// 1-based line number (text) or frame number (binary); 0 for
    /// whole-file conditions such as `E008`.
    pub line: usize,
    /// Byte offset of the start of the offending line or frame.
    pub byte: u64,
    /// Index of the parse chunk that decoded the unit, when sharded.
    pub chunk: Option<usize>,
    /// Problem description.
    pub message: String,
}

impl LogError {
    pub(crate) fn new(code: ErrorCode, line: usize, message: String) -> Self {
        LogError {
            code,
            line,
            byte: 0,
            chunk: None,
            message,
        }
    }
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log line {} (byte {}) [{}]: {}",
            self.line, self.byte, self.code, self.message
        )
    }
}

impl Error for LogError {}

/// How [`ingest_log`] treats malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Abort at the first malformed line — the historical `parse_log`
    /// behaviour, and the right default when a log is expected to be
    /// complete.
    #[default]
    Strict,
    /// Keep going: drop what cannot be decoded, collapse duplicates,
    /// synthesize a missing exit time, and report it all in the
    /// [`SalvageSummary`].
    Salvage,
}

/// Ingestion knobs: the [`IngestMode`] plus the salvage error budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestConfig {
    /// Strict or salvage.
    pub mode: IngestMode,
    /// In salvage mode, abort with [`ErrorCode::TooManyErrors`] once more
    /// than this many errors (dropped lines, repairs, and collapsed
    /// duplicates combined) have accumulated. `None` means unbounded.
    pub max_errors: Option<u64>,
}

impl IngestConfig {
    /// The strict configuration (the [`Default`]).
    pub fn strict() -> Self {
        Self::default()
    }

    /// Unbounded salvage.
    pub fn salvage() -> Self {
        IngestConfig {
            mode: IngestMode::Salvage,
            max_errors: None,
        }
    }

    /// True when the mode is [`IngestMode::Salvage`].
    pub fn is_salvage(&self) -> bool {
        self.mode == IngestMode::Salvage
    }
}

/// How many leading errors a [`SalvageSummary`] retains verbatim for
/// display; the rest are only counted in the histogram.
pub const FIRST_ERRORS_CAP: usize = 5;

/// What salvage kept, dropped, and repaired — threaded from [`ingest_log`]
/// through the analyzer to the report footer and the
/// `heapdrag_salvage_*` metrics.
///
/// Identical for every shard count: drops are decided per line/frame,
/// duplicates are collapsed in input order at the sequential merge, and
/// the error histogram is keyed by stable [`ErrorCode`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageSummary {
    /// True when the ingest ran in salvage mode (a strict ingest returns
    /// an all-zero summary).
    pub salvage: bool,
    /// The input format detected by magic bytes — disambiguates
    /// `heapdrag_salvage_*` reconciliation in mixed-format runs.
    pub format: LogFormat,
    /// Object records in the returned [`ParsedLog`].
    pub records_kept: u64,
    /// Deep-GC samples in the returned [`ParsedLog`].
    pub samples_kept: u64,
    /// Retaining-path samples in the returned [`ParsedLog`].
    pub retains_kept: u64,
    /// Input lines (text) or frames (binary) dropped because they could
    /// not be decoded.
    pub lines_dropped: u64,
    /// Bytes of input skipped by those drops (terminators and frame
    /// headers included).
    pub bytes_skipped: u64,
    /// Parsed records/samples collapsed as exact duplicates (`E009`).
    pub duplicates_dropped: u64,
    /// True when the end marker was missing and the exit time was
    /// synthesized from the latest observed event (`E006`).
    pub synthesized_end: bool,
    /// Error histogram: how many times each code fired.
    pub errors_by_code: BTreeMap<ErrorCode, u64>,
    /// The first [`FIRST_ERRORS_CAP`] errors in line order, verbatim.
    pub first_errors: Vec<LogError>,
}

impl SalvageSummary {
    /// Total errors across the histogram (drops, repairs, duplicates).
    pub fn total_errors(&self) -> u64 {
        self.errors_by_code.values().sum()
    }

    /// True when nothing was dropped, collapsed, or repaired.
    pub fn is_clean(&self) -> bool {
        self.total_errors() == 0
    }

    /// The report footer: a stable, diffable rendering of the summary —
    /// the exact text `heapdrag report --salvage` appends to its output
    /// and CI diffs against a golden copy.
    pub fn render_footer(&self) -> String {
        let mut out = String::from("--- salvage summary ---\n");
        out.push_str(&format!(
            "mode:               {}\n",
            if self.salvage { "salvage" } else { "strict" }
        ));
        out.push_str(&format!("input format:       {}\n", self.format));
        out.push_str(&format!("records kept:       {}\n", self.records_kept));
        out.push_str(&format!("samples kept:       {}\n", self.samples_kept));
        // Only traces with retain sampling enabled carry this line, so
        // rate-0 footers stay byte-identical to pre-retain goldens.
        if self.retains_kept > 0 {
            out.push_str(&format!("retains kept:       {}\n", self.retains_kept));
        }
        out.push_str(&format!("lines dropped:      {}\n", self.lines_dropped));
        out.push_str(&format!("bytes skipped:      {}\n", self.bytes_skipped));
        out.push_str(&format!(
            "duplicates dropped: {}\n",
            self.duplicates_dropped
        ));
        out.push_str(&format!(
            "end marker:         {}\n",
            if self.synthesized_end {
                "synthesized"
            } else {
                "present"
            }
        ));
        if !self.errors_by_code.is_empty() {
            out.push_str("errors by code:\n");
            for (code, n) in &self.errors_by_code {
                out.push_str(&format!(
                    "  {} {:<20} {}\n",
                    code,
                    code.name(),
                    n
                ));
            }
        }
        if !self.first_errors.is_empty() {
            out.push_str("first errors:\n");
            for e in &self.first_errors {
                out.push_str(&format!("  {e}\n"));
            }
        }
        out
    }

    /// Publishes the summary as the `heapdrag_salvage_*` metric family:
    /// kept/dropped/skipped totals as counters, the end-marker repair as a
    /// 0/1 gauge, the detected input format as
    /// `heapdrag_salvage_input_format{format="..."}`, and the histogram as
    /// `heapdrag_salvage_errors_total{code="E0xx"}` series.
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        registry
            .counter("heapdrag_salvage_records_kept_total")
            .add(self.records_kept);
        registry
            .counter("heapdrag_salvage_samples_kept_total")
            .add(self.samples_kept);
        if self.retains_kept > 0 {
            registry
                .counter("heapdrag_salvage_retains_kept_total")
                .add(self.retains_kept);
        }
        registry
            .counter("heapdrag_salvage_lines_dropped_total")
            .add(self.lines_dropped);
        registry
            .counter("heapdrag_salvage_bytes_skipped_total")
            .add(self.bytes_skipped);
        registry
            .counter("heapdrag_salvage_duplicates_dropped_total")
            .add(self.duplicates_dropped);
        registry
            .gauge("heapdrag_salvage_end_synthesized")
            .set(i64::from(self.synthesized_end));
        registry
            .gauge(&format!(
                "heapdrag_salvage_input_format{{format=\"{}\"}}",
                self.format
            ))
            .set(1);
        for (code, n) in &self.errors_by_code {
            registry
                .counter(&format!("heapdrag_salvage_errors_total{{code=\"{code}\"}}"))
                .add(*n);
        }
    }
}

/// The parsed contents of a phase-1 log file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedLog {
    /// Final allocation-clock value.
    pub end_time: u64,
    /// Readable names for the chain ids appearing in the records.
    pub chain_names: HashMap<ChainId, String>,
    /// Object trailers.
    pub records: Vec<ObjectRecord>,
    /// Deep-GC samples.
    pub samples: Vec<GcSample>,
    /// Retaining-path samples (empty unless the run sampled retainers).
    pub retains: Vec<RetainRecord>,
}

impl ChainNamer for ParsedLog {
    fn chain_name(&self, chain: ChainId) -> String {
        self.chain_names
            .get(&chain)
            .cloned()
            .unwrap_or_else(|| format!("<chain {}>", chain.0))
    }
}

impl ParsedLog {
    /// Publishes the off-line side of the **reconciliation surface**: the
    /// same `heapdrag_*` metric names the on-line profiler emits
    /// ([`crate::profiler::ProfilerMetrics`]), recomputed from the parsed
    /// log. A lossless pipeline makes the two snapshots agree exactly, for
    /// any shard count — the differential oracle `tests/metrics_parity.rs`
    /// enforces.
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        let at_exit = self.records.iter().filter(|r| r.at_exit).count() as u64;
        registry
            .counter("heapdrag_objects_created_total")
            .add(self.records.len() as u64);
        registry
            .counter("heapdrag_alloc_bytes_total")
            .add(self.records.iter().map(|r| r.size).sum());
        registry
            .counter("heapdrag_objects_reclaimed_total")
            .add(self.records.len() as u64 - at_exit);
        registry
            .counter("heapdrag_objects_at_exit_total")
            .add(at_exit);
        registry
            .counter("heapdrag_deep_gc_samples_total")
            .add(self.samples.len() as u64);
        registry
            .counter("heapdrag_retain_samples_total")
            .add(self.retains.len() as u64);
        registry
            .gauge("heapdrag_end_time_bytes")
            .set(i64::try_from(self.end_time).unwrap_or(i64::MAX));
    }
}

/// A fully ingested log: the parsed contents, the [`SalvageSummary`] of
/// what (if anything) had to be dropped or repaired, and the per-stage
/// [`ParallelMetrics`].
#[derive(Debug)]
pub struct Ingested {
    /// The decoded log.
    pub log: ParsedLog,
    /// What salvage kept, dropped, and repaired (all-zero under strict).
    pub salvage: SalvageSummary,
    /// Parse-stage sharding instrumentation.
    pub metrics: ParallelMetrics,
}

/// Streams a profiling run (phase-1 output) to `writer` in the chosen
/// format, returning the number of bytes written.
///
/// The trace is driven event by event through a [`TraceSink`] — header,
/// chain table, records, samples, end marker last — so nothing is buffered
/// beyond the writer's own buffering; pair with a
/// [`std::io::BufWriter`] for file output. The end marker written last is
/// what certifies the log complete, and its absence tells the salvage
/// parser the run was cut short.
///
/// Chain names are whitespace-normalized at write time, which is what
/// makes the text and binary encodings of the same run decode to identical
/// [`ParsedLog`]s.
///
/// # Errors
///
/// Propagates writer I/O errors.
#[deprecated(note = "use `Pipeline::options().format(..).write_to(run, program, writer)`")]
pub fn write_log_to<W: io::Write>(
    run: &ProfileRun,
    program: &Program,
    format: LogFormat,
    writer: W,
) -> io::Result<u64> {
    write_run_to(run, program, format, writer)
}

/// The write engine behind [`crate::Pipeline::write_to`] and the
/// deprecated `write_log*` wrappers.
pub(crate) fn write_run_to<W: io::Write>(
    run: &ProfileRun,
    program: &Program,
    format: LogFormat,
    writer: W,
) -> io::Result<u64> {
    let mut counting = CountingWriter::new(writer);
    match format {
        LogFormat::Text => drive_sink(run, program, &mut TextSink::new(&mut counting))?,
        LogFormat::Binary => drive_sink(run, program, &mut BinarySink::new(&mut counting))?,
    }
    Ok(counting.written())
}

/// Drives a [`TraceSink`] through a complete run: preamble, deduplicated
/// chain table, records, samples, end marker.
fn drive_sink<S: TraceSink>(
    run: &ProfileRun,
    program: &Program,
    sink: &mut S,
) -> io::Result<()> {
    sink.begin()?;
    let mut chains: Vec<ChainId> = run
        .records
        .iter()
        .flat_map(|r| [Some(r.alloc_site), r.last_use_site])
        .flatten()
        .chain(run.retains.iter().map(|r| r.alloc_site))
        .collect();
    chains.sort_unstable();
    chains.dedup();
    for c in chains {
        let name = normalize_chain_name(&run.sites.format_chain(program, c));
        sink.chain(c, &name)?;
    }
    for r in &run.records {
        sink.record(r)?;
    }
    for s in &run.samples {
        sink.sample(s)?;
    }
    for r in &run.retains {
        sink.retain(r)?;
    }
    sink.end(run.outcome.end_time)
}

/// Serialises a profiling run as a text log in one `String` — a thin
/// wrapper for callers and tests that want the historical
/// buffer-returning shape.
#[deprecated(note = "use `Pipeline::options().write_to(run, program, &mut buf)`")]
pub fn write_log(run: &ProfileRun, program: &Program) -> String {
    let mut buf = Vec::new();
    write_run_to(run, program, LogFormat::Text, &mut buf)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("the text codec emits UTF-8")
}

/// Serialises a profiling run as an HDLOG v2 binary log in one `Vec` —
/// the binary sibling of [`write_log`].
#[deprecated(
    note = "use `Pipeline::options().format(LogFormat::Binary).write_to(run, program, &mut buf)`"
)]
pub fn write_log_binary(run: &ProfileRun, program: &Program) -> Vec<u8> {
    let mut buf = Vec::new();
    write_run_to(run, program, LogFormat::Binary, &mut buf)
        .expect("writing to a Vec cannot fail");
    buf
}

/// Parses a phase-1 log (phase-2 input), strictly and sequentially — the
/// `shards = 1` special case of [`parse_log_sharded`].
///
/// Strict mode demands a complete log: a well-formed header, decodable
/// directives, a terminated final line (text) or intact frames (binary),
/// and the end-of-log marker. To ingest a log from a crashed or killed
/// run instead, use [`ingest_log`] with [`IngestConfig::salvage`], which
/// degrades gracefully and reports what it dropped.
///
/// # Errors
///
/// Returns the [`LogError`] of the first malformed line (smallest line
/// number), with its stable [`ErrorCode`] and byte offset.
#[deprecated(note = "use `Pipeline::options().ingest_bytes(text)`")]
pub fn parse_log(text: &str) -> Result<ParsedLog, LogError> {
    ingest_bytes_impl(
        text.as_bytes(),
        &ParallelConfig::sequential(),
        &IngestConfig::strict(),
    )
    .map(|i| i.log)
}

/// Parses a phase-1 log strictly with a sharded record decoder.
///
/// The coordinating thread scans the file once: shared state (the header,
/// chain table, and end marker) is parsed in place, while record-bearing
/// lines/frames — the bulk of a trace — are batched into chunks of
/// [`ParallelConfig::chunk_records`] units and decoded on up to
/// [`ParallelConfig::shards`] worker threads. Chunks are reassembled in
/// input order, so the resulting [`ParsedLog`] is identical to the
/// sequential parse; when several units are malformed, the reported
/// [`LogError`] is the one with the smallest line/frame number, exactly
/// as the sequential scan would have reported.
///
/// # Errors
///
/// Returns the first malformed unit's [`LogError`], for any shard count.
#[deprecated(note = "use `Pipeline::options().shards(n).ingest_bytes(text)`")]
pub fn parse_log_sharded(
    text: &str,
    par: &ParallelConfig,
) -> Result<(ParsedLog, ParallelMetrics), LogError> {
    ingest_bytes_impl(text.as_bytes(), par, &IngestConfig::strict()).map(|i| (i.log, i.metrics))
}

/// The single ingestion engine behind every parse entry point: format
/// autodetection by magic bytes, one scan on the coordinating thread
/// (via the detected codec), sharded record decoding, then a
/// deterministic merge.
///
/// Accepts anything byte-like (`&str`, `&[u8]`, `Vec<u8>`, `String`):
/// text logs are lossily decoded as UTF-8, binary logs are parsed as
/// frames.
///
/// **Strict** ([`IngestConfig::strict`]) returns the first malformed
/// unit's error. **Salvage** ([`IngestConfig::salvage`]) instead:
///
/// 1. drops undecodable lines/frames (counting units and bytes per
///    [`ErrorCode`]) — a binary checksum mismatch drops exactly one
///    frame, while a fault that destroys framing (unknown tag, corrupt
///    length prefix, truncation) keeps the intact prefix and drops the
///    rest,
/// 2. drops a torn tail (unterminated final line / truncated frame),
/// 3. collapses exact duplicate records (by object id) and samples,
/// 4. synthesizes the exit time from the latest observed `freed`/sample
///    time when the end marker is missing — the synthesized exit is
///    never earlier than any kept record's reclamation time, so every
///    kept record's drag equals its value in the complete log, and
/// 5. fails only on an empty input (`E001`) or when the error count
///    exceeds [`IngestConfig::max_errors`] (`E008`).
///
/// The returned [`ParsedLog`] and [`SalvageSummary`] are identical for
/// every [`ParallelConfig`]: chunking is decided by the scan (not the
/// worker count), drops are per-unit decisions, and the duplicate
/// collapse runs at the sequential merge in input order. A worker thread
/// that panics loses only the chunks it claimed (`E010`); under strict
/// that is a per-chunk error, under salvage those chunks are dropped.
///
/// # Errors
///
/// Strict: the first malformed unit. Salvage: `E001` or `E008` only.
#[deprecated(note = "use `Pipeline::options().salvage(..).ingest_bytes(input)` (or \
`.ingest_reader(..)` for bounded-memory streaming)")]
pub fn ingest_log(
    input: impl AsRef<[u8]>,
    par: &ParallelConfig,
    ingest: &IngestConfig,
) -> Result<Ingested, LogError> {
    ingest_bytes_impl(input.as_ref(), par, ingest)
}

pub(crate) fn ingest_bytes_impl(
    bytes: &[u8],
    par: &ParallelConfig,
    ingest: &IngestConfig,
) -> Result<Ingested, LogError> {
    let start = Instant::now();
    let salvage = ingest.is_salvage();
    let mut metrics = ParallelMetrics::default();
    let split_start = Instant::now();

    if bytes.is_empty() {
        return Err(LogError::new(ErrorCode::EmptyLog, 1, "empty log".into()));
    }

    let format = LogFormat::detect(bytes);
    let chunk_records = par.effective_chunk();
    let text_storage;
    let scan = match format {
        LogFormat::Binary => codec::binary::scan(bytes, salvage, chunk_records),
        LogFormat::Text => {
            text_storage = String::from_utf8_lossy(bytes);
            codec::text::scan(&text_storage, salvage, chunk_records)
        }
    };
    metrics.split_elapsed = split_start.elapsed();

    let codec::ScanOutput {
        chunks,
        chain_names,
        end_time,
        saw_end,
        errors: scan_errors,
        units_dropped,
        bytes_skipped,
        next_position,
    } = scan;

    let mut summary = SalvageSummary {
        salvage,
        format,
        lines_dropped: units_dropped,
        bytes_skipped,
        ..SalvageSummary::default()
    };
    let mut log = ParsedLog {
        end_time,
        chain_names,
        ..ParsedLog::default()
    };

    // Decode the chunks, work-stealing over chunk indices so a slow chunk
    // cannot serialise the rest. The stealing loops run as borrowing jobs
    // on the shared worker pool (one per effective shard) rather than on
    // per-call threads. Results land in per-chunk slots; a job that
    // panics loses only the chunk it was decoding — the empty slots are
    // degraded to per-chunk `E010` errors below rather than aborting the
    // whole process.
    let workers = par.effective_shards(chunks.len());
    let mut slots: Vec<Option<(codec::ChunkOut, ShardMetrics)>> = if workers <= 1 {
        chunks
            .iter()
            .enumerate()
            .map(|(i, c)| Some(c.decode(i, salvage)))
            .collect()
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let chunks_ref = &chunks;
        let next_ref = &next;
        let mut worker_outs: Vec<Vec<(usize, (codec::ChunkOut, ShardMetrics))>> =
            (0..workers).map(|_| Vec::new()).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = worker_outs
            .iter_mut()
            .map(|mine| {
                Box::new(move || loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= chunks_ref.len() {
                        return;
                    }
                    mine.push((i, chunks_ref[i].decode(i, salvage)));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        crate::serve::WorkerPool::shared().scope(jobs);
        let mut slots: Vec<Option<(codec::ChunkOut, ShardMetrics)>> =
            (0..chunks.len()).map(|_| None).collect();
        for mine in worker_outs {
            for (i, result) in mine {
                slots[i] = Some(result);
            }
        }
        slots
    };

    let merge_start = Instant::now();
    let mut all_errors = scan_errors;
    let mut outs: Vec<codec::ChunkOut> = Vec::with_capacity(chunks.len());
    for (i, slot) in slots.iter_mut().enumerate() {
        match slot.take() {
            Some((mut out, m)) => {
                metrics.shards.push(m);
                all_errors.append(&mut out.errors);
                summary.lines_dropped += out.units_dropped;
                summary.bytes_skipped += out.bytes_skipped;
                outs.push(out);
            }
            None => {
                let chunk = &chunks[i];
                let (first_unit, first_byte) = chunk.first_position();
                all_errors.push(LogError {
                    code: ErrorCode::WorkerLost,
                    line: first_unit,
                    byte: first_byte,
                    chunk: Some(i),
                    message: format!(
                        "parse worker panicked; chunk {i} ({} units) lost",
                        chunk.len()
                    ),
                });
                if salvage {
                    summary.lines_dropped += chunk.len() as u64;
                    summary.bytes_skipped += chunk.byte_len();
                }
            }
        }
    }
    // The smallest line/frame number wins, wherever the error was found —
    // exactly what a sequential scan would report first.
    all_errors.sort_by_key(|e| e.line);

    if !salvage {
        if let Some(e) = all_errors.into_iter().next() {
            return Err(e);
        }
        if !saw_end {
            return Err(LogError {
                code: ErrorCode::MissingEndMarker,
                line: next_position.0,
                byte: next_position.1,
                chunk: None,
                message: "no `end` marker — log truncated?".into(),
            });
        }
        for out in outs {
            log.records.extend(out.records);
            log.samples.extend(out.samples);
            log.retains.extend(out.retains);
        }
    } else {
        if !saw_end {
            summary.synthesized_end = true;
            all_errors.push(LogError {
                code: ErrorCode::MissingEndMarker,
                line: next_position.0,
                byte: next_position.1,
                chunk: None,
                message: "no `end` marker — synthesizing exit time".into(),
            });
        }
        // Collapse exact duplicates in input order, so the kept set — and
        // therefore the whole analysis — is shard-invariant.
        let mut seen_objects: HashSet<ObjectId> = HashSet::new();
        let mut seen_samples: HashSet<(u64, u64, u64)> = HashSet::new();
        for out in outs {
            for r in out.records {
                if seen_objects.insert(r.object) {
                    log.records.push(r);
                } else {
                    summary.duplicates_dropped += 1;
                }
            }
            for s in out.samples {
                if seen_samples.insert((s.time, s.reachable_bytes, s.reachable_count)) {
                    log.samples.push(s);
                } else {
                    summary.duplicates_dropped += 1;
                }
            }
            // Retain frames are *not* deduplicated: unlike object records
            // (identified by id) and deep-GC samples (identified by their
            // census), a retain sample carries no identity — multiplicity
            // is its weight. Ten identical elements sampled at one census
            // are ten legitimate samples, and collapsing them would skew
            // every per-path weight and break the on-line/off-line
            // `heapdrag_retain_samples_total` reconciliation.
            log.retains.extend(out.retains);
        }
        if summary.synthesized_end {
            log.end_time = log
                .records
                .iter()
                .map(|r| r.freed)
                .chain(log.samples.iter().map(|s| s.time))
                .chain(log.retains.iter().map(|r| r.time))
                .max()
                .unwrap_or(0);
        }
        for e in &all_errors {
            *summary.errors_by_code.entry(e.code).or_insert(0) += 1;
        }
        if summary.duplicates_dropped > 0 {
            *summary
                .errors_by_code
                .entry(ErrorCode::DuplicateRecord)
                .or_insert(0) += summary.duplicates_dropped;
        }
        summary.first_errors = all_errors.iter().take(FIRST_ERRORS_CAP).cloned().collect();
        if let Some(max) = ingest.max_errors {
            let total = summary.total_errors();
            if total > max {
                return Err(LogError::new(
                    ErrorCode::TooManyErrors,
                    0,
                    format!("salvage found {total} errors, exceeding the bound of {max}"),
                ));
            }
        }
    }

    summary.records_kept = log.records.len() as u64;
    summary.samples_kept = log.samples.len() as u64;
    summary.retains_kept = log.retains.len() as u64;
    metrics.merge_elapsed = merge_start.elapsed();
    metrics.total_elapsed = start.elapsed();
    Ok(Ingested {
        log,
        salvage: summary,
        metrics,
    })
}

#[cfg(test)]
// These tests exercise the deprecated wrappers on purpose: they are the
// wrappers' own regression suite, pinning the behaviour `Pipeline`
// terminals must keep matching.
#[allow(deprecated)]
mod tests {
    use super::*;

    fn salvage_seq(input: impl AsRef<[u8]>) -> Ingested {
        ingest_log(
            input,
            &ParallelConfig::sequential(),
            &IngestConfig::salvage(),
        )
        .expect("salvage succeeds")
    }

    #[test]
    fn parse_rejects_bad_header() {
        let e = parse_log("not-a-log\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.code, ErrorCode::BadHeader);
        assert_eq!(e.byte, 0);
    }

    #[test]
    fn parse_rejects_empty_log() {
        let e = parse_log("").unwrap_err();
        assert_eq!(e.code, ErrorCode::EmptyLog);
        // Even salvage has nothing to keep from an empty file.
        let e = ingest_log(
            "",
            &ParallelConfig::sequential(),
            &IngestConfig::salvage(),
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::EmptyLog);
    }

    #[test]
    fn parse_handcrafted_log() {
        let text = "heapdrag-log v1\nend 1000\nchain 0 Main.main@3 \"big array\"\nobj 1 2 816 16 900 320 0 0 0\nobj 2 2 24 32 1000 - 0 - 1\ngc 500 840 2\n";
        let log = parse_log(text).unwrap();
        assert_eq!(log.end_time, 1000);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.samples.len(), 1);
        assert_eq!(log.records[0].last_use, Some(320));
        assert_eq!(log.records[1].last_use, None);
        assert!(log.records[1].at_exit);
        assert!(log.chain_name(ChainId(0)).contains("big array"));
        assert!(log.chain_name(ChainId(9)).contains("<chain 9>"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "heapdrag-log v1\nobj 1 bad\n";
        let e = parse_log(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.code, ErrorCode::BadFieldValue);
        assert_eq!(e.byte, 16, "byte offset of the line start");
        let text = "heapdrag-log v1\nwhat 1\n";
        let e = parse_log(text).unwrap_err();
        assert!(e.message.contains("what"));
        assert_eq!(e.code, ErrorCode::UnknownDirective);
    }

    #[test]
    fn strict_requires_the_end_marker() {
        let text = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\n";
        let e = parse_log(text).unwrap_err();
        assert_eq!(e.code, ErrorCode::MissingEndMarker);
        assert_eq!(e.line, 3, "reported just past the last line");

        let ing = salvage_seq(text);
        assert!(ing.salvage.synthesized_end);
        assert_eq!(ing.log.end_time, 900, "max freed time becomes the exit");
        assert_eq!(ing.log.records.len(), 1);
        assert_eq!(ing.salvage.errors_by_code[&ErrorCode::MissingEndMarker], 1);
    }

    #[test]
    fn strict_rejects_a_torn_tail() {
        let text = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\nend 90";
        let e = parse_log(text).unwrap_err();
        assert_eq!(e.code, ErrorCode::TornTail);
        assert_eq!(e.line, 3);

        // Salvage drops the torn line; `end` was on it, so the exit time
        // is synthesized from the surviving record.
        let ing = salvage_seq(text);
        assert_eq!(ing.log.records.len(), 1);
        assert!(ing.salvage.synthesized_end);
        assert_eq!(ing.salvage.lines_dropped, 1);
        assert_eq!(ing.salvage.bytes_skipped, 6, "`end 90` has 6 bytes");
        assert_eq!(ing.salvage.errors_by_code[&ErrorCode::TornTail], 1);
    }

    #[test]
    fn salvage_drops_bad_lines_and_keeps_the_rest() {
        let text = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\nobj 2 bad\nwhat 9\ngc 500 840 2\nend 1000\n";
        let ing = salvage_seq(text);
        assert_eq!(ing.log.records.len(), 1);
        assert_eq!(ing.log.samples.len(), 1);
        assert_eq!(ing.log.end_time, 1000);
        assert!(!ing.salvage.synthesized_end);
        assert_eq!(ing.salvage.lines_dropped, 2);
        assert_eq!(ing.salvage.records_kept, 1);
        assert_eq!(ing.salvage.errors_by_code[&ErrorCode::BadFieldValue], 1);
        assert_eq!(
            ing.salvage.errors_by_code[&ErrorCode::UnknownDirective],
            1
        );
        assert_eq!(ing.salvage.total_errors(), 2);
        assert!(!ing.salvage.is_clean());
        assert_eq!(ing.salvage.first_errors.len(), 2);
        let footer = ing.salvage.render_footer();
        assert!(footer.contains("input format:       text"));
        assert!(footer.contains("lines dropped:      2"));
        assert!(footer.contains("E003 unknown-directive"));
    }

    #[test]
    fn salvage_collapses_duplicate_records_and_samples() {
        let text = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\ngc 500 840 2\nobj 1 2 816 16 900 320 0 0 0\ngc 500 840 2\nend 1000\n";
        let strict = parse_log(text).unwrap();
        assert_eq!(strict.records.len(), 2, "strict does not dedup");
        let ing = salvage_seq(text);
        assert_eq!(ing.log.records.len(), 1);
        assert_eq!(ing.log.samples.len(), 1);
        assert_eq!(ing.salvage.duplicates_dropped, 2);
        assert_eq!(ing.salvage.errors_by_code[&ErrorCode::DuplicateRecord], 2);
    }

    #[test]
    fn salvage_respects_max_errors() {
        let text = "heapdrag-log v1\nbad 1\nbad 2\nbad 3\nend 10\n";
        let ok = ingest_log(
            text,
            &ParallelConfig::sequential(),
            &IngestConfig {
                mode: IngestMode::Salvage,
                max_errors: Some(3),
            },
        )
        .expect("within bound");
        assert_eq!(ok.salvage.total_errors(), 3);
        let e = ingest_log(
            text,
            &ParallelConfig::sequential(),
            &IngestConfig {
                mode: IngestMode::Salvage,
                max_errors: Some(2),
            },
        )
        .unwrap_err();
        assert_eq!(e.code, ErrorCode::TooManyErrors);
    }

    #[test]
    fn salvage_summary_publishes_metrics() {
        let text = "heapdrag-log v1\nobj 1 2 816 16 900 320 0 0 0\nbad 1\n";
        let ing = salvage_seq(text);
        let registry = heapdrag_obs::Registry::new();
        ing.salvage.publish_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["heapdrag_salvage_records_kept_total"], 1);
        assert_eq!(snap.counters["heapdrag_salvage_lines_dropped_total"], 1);
        assert_eq!(
            snap.counters["heapdrag_salvage_errors_total{code=\"E003\"}"],
            1
        );
        assert_eq!(snap.gauges["heapdrag_salvage_end_synthesized"], 1);
        assert_eq!(
            snap.gauges["heapdrag_salvage_input_format{format=\"text\"}"],
            1
        );
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(ErrorCode::ALL.len(), 11);
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(code.code(), format!("E{:03}", i + 1), "{code:?}");
        }
        let e = LogError::new(ErrorCode::TornTail, 7, "x".into());
        assert!(e.to_string().contains("[E007]"));
        let e = LogError::new(ErrorCode::FrameChecksum, 3, "x".into());
        assert!(e.to_string().contains("[E011]"));
    }

    /// A synthetic text log big enough to exercise multiple chunks.
    fn big_log(records: usize) -> String {
        let mut text = String::from("heapdrag-log v1\nend 1000000\nchain 0 Main.main@1\n");
        for i in 0..records {
            text.push_str(&format!(
                "obj {} 2 {} {} {} {} 0 {} {}\n",
                i,
                8 + (i % 13) * 8,
                i * 3,
                i * 3 + 500,
                if i % 4 == 0 { "-".to_string() } else { (i * 3 + 100).to_string() },
                if i % 4 == 0 { "-".to_string() } else { "0".to_string() },
                i % 2,
            ));
            if i % 50 == 0 {
                text.push_str(&format!("gc {} {} {}\n", i * 3, i * 10, i));
            }
        }
        text
    }

    /// The same synthetic log re-encoded as HDLOG v2 frames, via the
    /// parsed text log (so both encodings carry identical data).
    fn big_log_binary(records: usize) -> Vec<u8> {
        let log = parse_log(&big_log(records)).unwrap();
        let mut buf = Vec::new();
        let mut sink = BinarySink::new(&mut buf);
        sink.begin().unwrap();
        let mut chains: Vec<_> = log.chain_names.keys().copied().collect();
        chains.sort_unstable();
        for c in chains {
            sink.chain(c, &log.chain_names[&c]).unwrap();
        }
        for r in &log.records {
            sink.record(r).unwrap();
        }
        for s in &log.samples {
            sink.sample(s).unwrap();
        }
        sink.end(log.end_time).unwrap();
        buf
    }

    #[test]
    fn sharded_parse_matches_sequential() {
        let text = big_log(500);
        let sequential = parse_log(&text).unwrap();
        for shards in [1, 2, 8] {
            let par = ParallelConfig {
                shards,
                chunk_records: 64,
            };
            let (sharded, metrics) = parse_log_sharded(&text, &par).unwrap();
            assert_eq!(sharded, sequential, "shards = {shards}");
            assert_eq!(metrics.total_records(), 500);
            assert!(metrics.shards.len() > 1, "chunked into multiple units");
        }
    }

    #[test]
    fn sharded_parse_reports_first_error_line() {
        // Two malformed lines; every shard count must report the earlier
        // one, exactly like the sequential scan.
        let mut text = big_log(200);
        let mut lines: Vec<&str> = text.lines().collect();
        let bad_early = "obj 7 nonsense";
        let bad_late = "what 1";
        lines[40] = bad_early; // 1-based line 41
        lines[150] = bad_late;
        text = lines.join("\n");
        text.push('\n');
        for shards in [1, 2, 8] {
            let par = ParallelConfig {
                shards,
                chunk_records: 16,
            };
            let e = parse_log_sharded(&text, &par).unwrap_err();
            assert_eq!(e.line, 41, "shards = {shards}: {e}");
            assert_eq!(e.code, ErrorCode::BadFieldValue, "shards = {shards}");
        }
    }

    #[test]
    fn salvage_is_identical_across_shard_counts() {
        let mut text = big_log(300);
        let mut lines: Vec<&str> = text.lines().collect();
        lines[41] = "obj 9 torn-val";
        lines[99] = "garbage directive";
        text = lines.join("\n"); // also tears the final line
        // Chunk indices in errors depend on `chunk_records` (the scan
        // decides chunking), so the baseline pins the same chunk size.
        let baseline = ingest_log(
            &text,
            &ParallelConfig {
                shards: 1,
                chunk_records: 16,
            },
            &IngestConfig::salvage(),
        )
        .expect("salvage succeeds");
        for shards in [2usize, 4, 7] {
            let par = ParallelConfig {
                shards,
                chunk_records: 16,
            };
            let ing =
                ingest_log(&text, &par, &IngestConfig::salvage()).expect("salvage succeeds");
            assert_eq!(ing.log, baseline.log, "shards = {shards}");
            assert_eq!(ing.salvage, baseline.salvage, "shards = {shards}");
        }
    }

    #[test]
    fn binary_ingest_matches_text_ingest() {
        let text = big_log(400);
        let binary = big_log_binary(400);
        // The full ≥2x ratio is measured on real workload traces by the
        // log_codec bench; this synthetic log has unrealistically small
        // field values, so just require a solid saving here.
        assert!(
            binary.len() * 4 < text.len() * 3,
            "binary ({}) should be well under 3/4 of the text size ({})",
            binary.len(),
            text.len()
        );
        let from_text = parse_log(&text).unwrap();
        for shards in [1usize, 4, 7] {
            let par = ParallelConfig {
                shards,
                chunk_records: 32,
            };
            let ing = ingest_log(&binary, &par, &IngestConfig::strict()).unwrap();
            assert_eq!(ing.log, from_text, "shards = {shards}");
            assert_eq!(ing.salvage.format, LogFormat::Binary);
        }
    }

    #[test]
    fn binary_salvage_is_shard_invariant_and_reports_format() {
        let mut binary = big_log_binary(300);
        let cut = binary.len() * 2 / 3;
        binary.truncate(cut);
        let baseline = ingest_log(
            &binary,
            &ParallelConfig {
                shards: 1,
                chunk_records: 16,
            },
            &IngestConfig::salvage(),
        )
        .expect("salvage succeeds");
        assert_eq!(baseline.salvage.format, LogFormat::Binary);
        assert!(baseline.salvage.synthesized_end);
        assert!(baseline.salvage.records_kept > 0, "prefix recovered");
        let footer = baseline.salvage.render_footer();
        assert!(footer.contains("input format:       binary"));
        for shards in [2usize, 4, 7] {
            let par = ParallelConfig {
                shards,
                chunk_records: 16,
            };
            let ing =
                ingest_log(&binary, &par, &IngestConfig::salvage()).expect("salvage succeeds");
            assert_eq!(ing.log, baseline.log, "shards = {shards}");
            assert_eq!(ing.salvage, baseline.salvage, "shards = {shards}");
        }
    }

    #[test]
    fn binary_strict_reports_first_frame_error() {
        let binary = big_log_binary(100);
        // Corrupt one payload byte somewhere in the middle: strict must
        // fail with the checksum code, salvage must drop exactly one
        // frame.
        let mut corrupt = binary.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        let strict = ingest_log(
            &corrupt,
            &ParallelConfig::sequential(),
            &IngestConfig::strict(),
        );
        let e = strict.unwrap_err();
        assert!(
            matches!(
                e.code,
                ErrorCode::FrameChecksum
                    | ErrorCode::UnknownDirective
                    | ErrorCode::BadFieldValue
                    | ErrorCode::TornTail
                    | ErrorCode::MissingEndMarker
            ),
            "stable code, got {e}"
        );
        let ing = salvage_seq(&corrupt);
        assert!(ing.salvage.total_errors() >= 1);
    }
}
