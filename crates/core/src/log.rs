//! The log file format connecting the two phases of the tool.
//!
//! Phase 1 (the instrumented VM run) writes one line per object trailer,
//! per deep-GC sample, and per interned site chain; phase 2 parses the file
//! back and analyzes it without needing the program. The format is a
//! versioned, line-oriented text codec:
//!
//! ```text
//! heapdrag-log v1
//! end 1048576
//! chain 3 Juru.readDocument@12 "new char[]" <- Juru.run@4
//! obj 17 8 816 1024 204800 2048 3 5 0
//! gc 102400 81920 512
//! ```
//!
//! An `obj` line is `id class size created freed last_use alloc_chain
//! use_chain at_exit`, with `-` for absent optional fields.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};
use heapdrag_vm::program::Program;

use crate::profiler::ProfileRun;
use crate::record::{GcSample, ObjectRecord};
use crate::report::ChainNamer;

/// A malformed log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log line {}: {}", self.line, self.message)
    }
}

impl Error for LogError {}

/// The parsed contents of a phase-1 log file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedLog {
    /// Final allocation-clock value.
    pub end_time: u64,
    /// Readable names for the chain ids appearing in the records.
    pub chain_names: HashMap<ChainId, String>,
    /// Object trailers.
    pub records: Vec<ObjectRecord>,
    /// Deep-GC samples.
    pub samples: Vec<GcSample>,
}

impl ChainNamer for ParsedLog {
    fn chain_name(&self, chain: ChainId) -> String {
        self.chain_names
            .get(&chain)
            .cloned()
            .unwrap_or_else(|| format!("<chain {}>", chain.0))
    }
}

/// Serialises a profiling run (phase-1 output).
pub fn write_log(run: &ProfileRun, program: &Program) -> String {
    let mut out = String::from("heapdrag-log v1\n");
    out.push_str(&format!("end {}\n", run.outcome.end_time));
    let mut chains: Vec<ChainId> = run
        .records
        .iter()
        .flat_map(|r| [Some(r.alloc_site), r.last_use_site])
        .flatten()
        .collect();
    chains.sort_unstable();
    chains.dedup();
    for c in chains {
        let name = run.sites.format_chain(program, c).replace('\n', " ");
        out.push_str(&format!("chain {} {}\n", c.0, name));
    }
    for r in &run.records {
        out.push_str(&format!(
            "obj {} {} {} {} {} {} {} {} {}\n",
            r.object.0,
            r.class.0,
            r.size,
            r.created,
            r.freed,
            r.last_use.map_or("-".to_string(), |t| t.to_string()),
            r.alloc_site.0,
            r.last_use_site.map_or("-".to_string(), |c| c.0.to_string()),
            r.at_exit as u8,
        ));
    }
    for s in &run.samples {
        out.push_str(&format!(
            "gc {} {} {}\n",
            s.time, s.reachable_bytes, s.reachable_count
        ));
    }
    out
}

fn field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, LogError> {
    let word = parts.next().ok_or_else(|| LogError {
        line,
        message: format!("missing field `{what}`"),
    })?;
    word.parse().map_err(|_| LogError {
        line,
        message: format!("bad value `{word}` for `{what}`"),
    })
}

fn opt_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<Option<T>, LogError> {
    let word = parts.next().ok_or_else(|| LogError {
        line,
        message: format!("missing field `{what}`"),
    })?;
    if word == "-" {
        return Ok(None);
    }
    word.parse().map(Some).map_err(|_| LogError {
        line,
        message: format!("bad value `{word}` for `{what}`"),
    })
}

/// Parses a phase-1 log (phase-2 input).
///
/// # Errors
///
/// Returns a [`LogError`] naming the first malformed line.
pub fn parse_log(text: &str) -> Result<ParsedLog, LogError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
    let (_, header) = lines.next().ok_or(LogError {
        line: 1,
        message: "empty log".into(),
    })?;
    if header != "heapdrag-log v1" {
        return Err(LogError {
            line: 1,
            message: format!("unrecognised header `{header}`"),
        });
    }
    let mut log = ParsedLog::default();
    for (n, line) in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("end") => {
                log.end_time = field(&mut parts, n, "end time")?;
            }
            Some("chain") => {
                let id: u32 = field(&mut parts, n, "chain id")?;
                let rest: Vec<&str> = parts.collect();
                log.chain_names.insert(ChainId(id), rest.join(" "));
            }
            Some("obj") => {
                let object = ObjectId(field(&mut parts, n, "object id")?);
                let class = ClassId(field(&mut parts, n, "class id")?);
                let size = field(&mut parts, n, "size")?;
                let created = field(&mut parts, n, "created")?;
                let freed = field(&mut parts, n, "freed")?;
                let last_use = opt_field(&mut parts, n, "last use")?;
                let alloc_site = ChainId(field(&mut parts, n, "alloc chain")?);
                let last_use_site = opt_field::<u32>(&mut parts, n, "use chain")?.map(ChainId);
                let at_exit: u8 = field(&mut parts, n, "at-exit flag")?;
                log.records.push(ObjectRecord {
                    object,
                    class,
                    size,
                    created,
                    freed,
                    last_use,
                    alloc_site,
                    last_use_site,
                    at_exit: at_exit != 0,
                });
            }
            Some("gc") => {
                log.samples.push(GcSample {
                    time: field(&mut parts, n, "time")?,
                    reachable_bytes: field(&mut parts, n, "reachable bytes")?,
                    reachable_count: field(&mut parts, n, "reachable count")?,
                });
            }
            Some(other) => {
                return Err(LogError {
                    line: n,
                    message: format!("unknown directive `{other}`"),
                })
            }
            None => {}
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_bad_header() {
        let e = parse_log("not-a-log\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn parse_handcrafted_log() {
        let text = "heapdrag-log v1\nend 1000\nchain 0 Main.main@3 \"big array\"\nobj 1 2 816 16 900 320 0 0 0\nobj 2 2 24 32 1000 - 0 - 1\ngc 500 840 2\n";
        let log = parse_log(text).unwrap();
        assert_eq!(log.end_time, 1000);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.samples.len(), 1);
        assert_eq!(log.records[0].last_use, Some(320));
        assert_eq!(log.records[1].last_use, None);
        assert!(log.records[1].at_exit);
        assert!(log.chain_name(ChainId(0)).contains("big array"));
        assert!(log.chain_name(ChainId(9)).contains("<chain 9>"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "heapdrag-log v1\nobj 1 bad\n";
        let e = parse_log(text).unwrap_err();
        assert_eq!(e.line, 2);
        let text = "heapdrag-log v1\nwhat 1\n";
        let e = parse_log(text).unwrap_err();
        assert!(e.message.contains("what"));
    }
}
