//! Human-readable rendering of drag reports — the textual output a
//! programmer reads to decide where to rewrite code.

use heapdrag_vm::ids::ChainId;
use heapdrag_vm::program::Program;
use heapdrag_vm::site::SiteTable;

use crate::analyzer::DragReport;

/// Resolves chain ids to readable site names.
///
/// Implemented by [`ProgramNamer`] (in-memory phase-1 output) and by
/// [`ParsedLog`](crate::log::ParsedLog) (phase-2 input read from a file).
pub trait ChainNamer {
    /// A readable rendering of the nested site, innermost frame first.
    fn chain_name(&self, chain: ChainId) -> String;
}

/// Names chains against a live [`Program`] and its [`SiteTable`].
#[derive(Debug, Clone, Copy)]
pub struct ProgramNamer<'a> {
    /// The program that ran.
    pub program: &'a Program,
    /// The site table of the run.
    pub sites: &'a SiteTable,
}

impl ChainNamer for ProgramNamer<'_> {
    fn chain_name(&self, chain: ChainId) -> String {
        self.sites.format_chain(self.program, chain)
    }
}

pub(crate) fn fmt_mb2(v: u128) -> String {
    format!("{:.3}", v as f64 / (1024.0 * 1024.0))
}

/// Renders the report: totals, the top `top` nested allocation sites by
/// drag, and the never-used "sure bet" sites.
pub fn render(report: &DragReport, namer: &dyn ChainNamer, top: usize) -> String {
    let mut out = String::new();
    out.push_str("=== drag report ===\n");
    out.push_str(&format!(
        "reachable integral: {} MByte^2\nin-use integral:    {} MByte^2\ntotal drag:         {} MByte^2\n",
        fmt_mb2(report.totals.reachable),
        fmt_mb2(report.totals.in_use),
        fmt_mb2(report.total_drag()),
    ));

    out.push_str(&format!(
        "\n--- top {} nested allocation sites by drag ---\n",
        top.min(report.by_nested_site.len())
    ));
    out.push_str("rank  drag(MB^2)  objects  never-used  pattern               suggested          site\n");
    for (i, e) in report.by_nested_site.iter().take(top).enumerate() {
        out.push_str(&format!(
            "{:>4}  {:>10}  {:>7}  {:>10}  {:<20}  {:<17}  {}\n",
            i + 1,
            fmt_mb2(e.stats.drag),
            e.stats.objects,
            e.stats.never_used,
            e.stats.pattern.to_string(),
            e.stats.suggested_transform().to_string(),
            namer.chain_name(e.site),
        ));
    }

    if !report.never_used_sites.is_empty() {
        out.push_str("\n--- never-used allocation sites (\"sure bets\") ---\n");
        for e in report.never_used_sites.iter().take(top) {
            out.push_str(&format!(
                "{:>10} MB^2  {:>7} objects  {}\n",
                fmt_mb2(e.stats.drag),
                e.stats.objects,
                namer.chain_name(e.site),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::DragAnalyzer;
    use crate::record::ObjectRecord;
    use heapdrag_vm::ids::{ClassId, ObjectId, SiteId};

    struct FixedNamer;
    impl ChainNamer for FixedNamer {
        fn chain_name(&self, chain: ChainId) -> String {
            format!("site-{}", chain.0)
        }
    }

    #[test]
    fn render_contains_sites_and_totals() {
        let records = vec![
            ObjectRecord {
                object: ObjectId(1),
                class: ClassId(0),
                size: 100,
                created: 0,
                freed: 1000,
                last_use: None,
                alloc_site: ChainId(3),
                last_use_site: None,
                at_exit: false,
            },
            ObjectRecord {
                object: ObjectId(2),
                class: ClassId(0),
                size: 10,
                created: 0,
                freed: 100,
                last_use: Some(90),
                alloc_site: ChainId(4),
                last_use_site: Some(ChainId(5)),
                at_exit: false,
            },
        ];
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let text = render(&report, &FixedNamer, 10);
        assert!(text.contains("site-3"));
        assert!(text.contains("site-4"));
        assert!(text.contains("sure bets"));
        assert!(text.contains("total drag"));
        // Highest-drag site listed first.
        let pos3 = text.find("site-3").unwrap();
        let pos4 = text.find("site-4").unwrap();
        assert!(pos3 < pos4);
    }

    #[test]
    fn render_empty_report() {
        let report = DragAnalyzer::new().analyze(&[], |c| Some(SiteId(c.0)));
        let text = render(&report, &FixedNamer, 5);
        assert!(text.contains("drag report"));
        assert!(!text.contains("sure bets"));
    }
}

/// §3.4's *anchor allocation site*: walking a nested site's call chain
/// outwards from the (usually library-level) innermost frame, the first
/// frame in *application code* — the place a programmer should look at.
///
/// `library_prefixes` name the class-name (or free-function name)
/// prefixes considered library code, e.g. `["jdk."]`. Returns the
/// innermost frame when the whole chain is library code.
pub fn anchor_site(
    program: &Program,
    sites: &SiteTable,
    chain: heapdrag_vm::ids::ChainId,
    library_prefixes: &[&str],
) -> Option<heapdrag_vm::ids::SiteId> {
    let frames = sites.chain(chain);
    let is_library = |site: heapdrag_vm::ids::SiteId| {
        let method = sites.site(site).method;
        let name = program.method_name(method);
        library_prefixes.iter().any(|p| name.starts_with(p))
    };
    frames
        .iter()
        .copied()
        .find(|s| !is_library(*s))
        .or_else(|| frames.first().copied())
}

#[cfg(test)]
mod anchor_tests {
    use super::*;
    use heapdrag_vm::ids::MethodId;

    /// Builds a program with a library helper allocating on behalf of an
    /// application caller, then checks the anchor walk.
    #[test]
    fn anchor_walks_past_library_frames() {
        use heapdrag_vm::builder::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let lib_cls = b.begin_class("jdk.Buf").finish();
        let lib_make = b.declare_method("make", None, true, 0, 1);
        {
            let mut m = b.begin_body(lib_make);
            m.new_obj(lib_cls).ret_val();
            m.finish();
        }
        // Rename to live under the library namespace.
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.call(lib_make).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let mut p = b.finish().unwrap();
        p.methods[lib_make.index()].name = "jdk.make".into();

        let run = crate::profiler::profile(&p, &[], crate::VmConfig::profiling()).unwrap();
        let record = run.records.first().expect("the Buf was profiled");
        let anchor = anchor_site(&p, &run.sites, record.alloc_site, &["jdk."]).unwrap();
        assert_eq!(
            run.sites.site(anchor).method,
            main,
            "anchor is the application frame, not jdk.make"
        );
        // With no library prefixes, the innermost frame is the anchor.
        let inner = anchor_site(&p, &run.sites, record.alloc_site, &[]).unwrap();
        assert_eq!(run.sites.site(inner).method, MethodId(0));
    }

    #[test]
    fn all_library_chain_falls_back_to_innermost() {
        use heapdrag_vm::builder::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let run = crate::profiler::profile(&p, &[], crate::VmConfig::profiling()).unwrap();
        let record = run.records.first().unwrap();
        // Everything matches the prefix: fall back to the innermost frame.
        let anchor = anchor_site(&p, &run.sites, record.alloc_site, &["main"]).unwrap();
        assert_eq!(run.sites.site(anchor).method, main);
    }
}
