//! Human-readable rendering of drag reports — the textual output a
//! programmer reads to decide where to rewrite code.
//!
//! All report text is assembled through [`ReportSections`]: callers
//! register the sections they want (summary, top sites, sure bets,
//! retaining paths, coldness, salvage footer) and render in one pass.
//! Sections render in registration order, empty sections vanish, and
//! non-empty sections are separated by exactly one blank line — so the
//! bytes of the classic `summary → sites → sure bets` report are pinned
//! whatever else a caller stacks on top.

use heapdrag_vm::ids::ChainId;
use heapdrag_vm::program::Program;
use heapdrag_vm::site::SiteTable;

use crate::analyzer::DragReport;
use crate::engine::SiteIdleSummary;
use crate::log::SalvageSummary;

/// Resolves chain ids to readable site names.
///
/// Implemented by [`ProgramNamer`] (in-memory phase-1 output) and by
/// [`ParsedLog`](crate::log::ParsedLog) (phase-2 input read from a file).
pub trait ChainNamer {
    /// A readable rendering of the nested site, innermost frame first.
    fn chain_name(&self, chain: ChainId) -> String;
}

/// Names chains against a live [`Program`] and its [`SiteTable`].
#[derive(Debug, Clone, Copy)]
pub struct ProgramNamer<'a> {
    /// The program that ran.
    pub program: &'a Program,
    /// The site table of the run.
    pub sites: &'a SiteTable,
}

impl ChainNamer for ProgramNamer<'_> {
    fn chain_name(&self, chain: ChainId) -> String {
        self.sites.format_chain(self.program, chain)
    }
}

pub(crate) fn fmt_mb2(v: u128) -> String {
    format!("{:.3}", v as f64 / (1024.0 * 1024.0))
}

/// Retaining paths shown per site in the retaining-paths section: the
/// sampled weight ranking makes the first one the optimizer's anchor, and
/// anything past the top few is sampling noise.
const RETAIN_TOP_PATHS: usize = 5;

/// One registered report section, rendered lazily by
/// [`ReportSections::render`].
enum Section<'a> {
    Summary,
    TopSites,
    SureBets,
    RetainingPaths,
    Coldness(&'a [SiteIdleSummary]),
    SalvageFooter(&'a SalvageSummary),
}

/// Composable report assembly: register sections, render once.
///
/// ```
/// # use heapdrag_core::analyzer::DragAnalyzer;
/// # use heapdrag_core::report::{ChainNamer, ReportSections};
/// # use heapdrag_vm::ids::{ChainId, SiteId};
/// # struct N;
/// # impl ChainNamer for N {
/// #     fn chain_name(&self, c: ChainId) -> String { format!("site-{}", c.0) }
/// # }
/// let report = DragAnalyzer::new().analyze(&[], |c| Some(SiteId(c.0)));
/// let text = ReportSections::standard(&report, &N).top(10).render();
/// assert!(text.starts_with("=== drag report ==="));
/// ```
pub struct ReportSections<'a> {
    report: &'a DragReport,
    namer: &'a dyn ChainNamer,
    top: usize,
    sections: Vec<Section<'a>>,
}

impl<'a> ReportSections<'a> {
    /// An empty assembly over `report`; register sections, then
    /// [`render`](Self::render).
    pub fn new(report: &'a DragReport, namer: &'a dyn ChainNamer) -> Self {
        ReportSections {
            report,
            namer,
            top: 10,
            sections: Vec::new(),
        }
    }

    /// The standard drag report: summary, top sites, sure bets, and the
    /// retaining-paths section (which renders only when samples were
    /// attached, so sampling-off output is byte-identical to the
    /// pre-sampling report).
    pub fn standard(report: &'a DragReport, namer: &'a dyn ChainNamer) -> Self {
        ReportSections::new(report, namer)
            .summary()
            .top_sites()
            .sure_bets()
            .retaining_paths()
    }

    /// Row budget for every ranked section (default 10).
    #[must_use]
    pub fn top(mut self, top: usize) -> Self {
        self.top = top;
        self
    }

    /// The header and whole-run integrals.
    #[must_use]
    pub fn summary(mut self) -> Self {
        self.sections.push(Section::Summary);
        self
    }

    /// The ranked nested-allocation-site table.
    #[must_use]
    pub fn top_sites(mut self) -> Self {
        self.sections.push(Section::TopSites);
        self
    }

    /// The never-used "sure bet" sites (renders only when any exist).
    #[must_use]
    pub fn sure_bets(mut self) -> Self {
        self.sections.push(Section::SureBets);
        self
    }

    /// Sampled retaining paths per site (renders only when the report
    /// carries samples — see [`DragReport::attach_retains`]).
    #[must_use]
    pub fn retaining_paths(mut self) -> Self {
        self.sections.push(Section::RetainingPaths);
        self
    }

    /// The live profiler's per-site idle-interval summary (renders only
    /// when `rows` is non-empty).
    #[must_use]
    pub fn coldness(mut self, rows: &'a [SiteIdleSummary]) -> Self {
        self.sections.push(Section::Coldness(rows));
        self
    }

    /// The salvage-ingestion footer; callers register it only for
    /// salvage-mode runs.
    #[must_use]
    pub fn salvage_footer(mut self, summary: &'a SalvageSummary) -> Self {
        self.sections.push(Section::SalvageFooter(summary));
        self
    }

    /// Renders the registered sections in order, one blank line between
    /// non-empty sections.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for section in &self.sections {
            let text = self.render_section(section);
            if text.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&text);
        }
        out
    }

    fn render_section(&self, section: &Section<'_>) -> String {
        match section {
            Section::Summary => self.render_summary(),
            Section::TopSites => self.render_top_sites(),
            Section::SureBets => self.render_sure_bets(),
            Section::RetainingPaths => self.render_retaining(),
            Section::Coldness(rows) => self.render_coldness(rows),
            Section::SalvageFooter(summary) => summary.render_footer(),
        }
    }

    fn render_summary(&self) -> String {
        format!(
            "=== drag report ===\n\
             reachable integral: {} MByte^2\nin-use integral:    {} MByte^2\ntotal drag:         {} MByte^2\n",
            fmt_mb2(self.report.totals.reachable),
            fmt_mb2(self.report.totals.in_use),
            fmt_mb2(self.report.total_drag()),
        )
    }

    fn render_top_sites(&self) -> String {
        let mut out = format!(
            "--- top {} nested allocation sites by drag ---\n",
            self.top.min(self.report.by_nested_site.len())
        );
        out.push_str("rank  drag(MB^2)  objects  never-used  pattern               suggested          site\n");
        for (i, e) in self.report.by_nested_site.iter().take(self.top).enumerate() {
            out.push_str(&format!(
                "{:>4}  {:>10}  {:>7}  {:>10}  {:<20}  {:<17}  {}\n",
                i + 1,
                fmt_mb2(e.stats.drag),
                e.stats.objects,
                e.stats.never_used,
                e.stats.pattern.to_string(),
                e.stats.suggested_transform().to_string(),
                self.namer.chain_name(e.site),
            ));
        }
        out
    }

    fn render_sure_bets(&self) -> String {
        if self.report.never_used_sites.is_empty() {
            return String::new();
        }
        let mut out = String::from("--- never-used allocation sites (\"sure bets\") ---\n");
        for e in self.report.never_used_sites.iter().take(self.top) {
            out.push_str(&format!(
                "{:>10} MB^2  {:>7} objects  {}\n",
                fmt_mb2(e.stats.drag),
                e.stats.objects,
                self.namer.chain_name(e.site),
            ));
        }
        out
    }

    fn render_retaining(&self) -> String {
        if self.report.retaining.is_empty() {
            return String::new();
        }
        let mut out =
            String::from("--- retaining paths: sampled holders at deep-GC marks ---\n");
        for e in self.report.retaining.iter().take(self.top) {
            out.push_str(&format!(
                "{}: {} sample(s), {} sampled bytes\n",
                self.namer.chain_name(e.site),
                e.samples,
                e.bytes,
            ));
            for p in e.paths.iter().take(RETAIN_TOP_PATHS) {
                out.push_str(&format!(
                    "  {:>10}  {:>5}x  {}{}\n",
                    p.bytes,
                    p.samples,
                    p.path,
                    if p.truncated { " (truncated)" } else { "" },
                ));
            }
            if e.paths.len() > RETAIN_TOP_PATHS {
                out.push_str(&format!(
                    "  ... and {} more path(s)\n",
                    e.paths.len() - RETAIN_TOP_PATHS
                ));
            }
        }
        out
    }

    fn render_coldness(&self, rows: &[SiteIdleSummary]) -> String {
        if rows.is_empty() {
            return String::new();
        }
        let mut out =
            String::from("--- coldness: per-site idle intervals (allocation-clock bytes) ---\n");
        out.push_str("intervals  median-idle     max-idle  site\n");
        for row in rows.iter().take(self.top) {
            out.push_str(&format!(
                "{:>9}  {:>11}  {:>11}  {}\n",
                row.intervals,
                row.median_idle,
                row.max_idle,
                self.namer.chain_name(row.site),
            ));
        }
        out
    }
}

/// Renders the report: totals, the top `top` nested allocation sites by
/// drag, and the never-used "sure bet" sites.
#[deprecated(
    since = "0.2.0",
    note = "assemble with `ReportSections::standard(report, namer).top(n).render()`"
)]
pub fn render(report: &DragReport, namer: &dyn ChainNamer, top: usize) -> String {
    ReportSections::standard(report, namer).top(top).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::DragAnalyzer;
    use crate::record::ObjectRecord;
    use heapdrag_vm::ids::{ClassId, ObjectId, SiteId};

    struct FixedNamer;
    impl ChainNamer for FixedNamer {
        fn chain_name(&self, chain: ChainId) -> String {
            format!("site-{}", chain.0)
        }
    }

    #[test]
    fn render_contains_sites_and_totals() {
        let records = vec![
            ObjectRecord {
                object: ObjectId(1),
                class: ClassId(0),
                size: 100,
                created: 0,
                freed: 1000,
                last_use: None,
                alloc_site: ChainId(3),
                last_use_site: None,
                at_exit: false,
            },
            ObjectRecord {
                object: ObjectId(2),
                class: ClassId(0),
                size: 10,
                created: 0,
                freed: 100,
                last_use: Some(90),
                alloc_site: ChainId(4),
                last_use_site: Some(ChainId(5)),
                at_exit: false,
            },
        ];
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let text = ReportSections::standard(&report, &FixedNamer).render();
        assert!(text.contains("site-3"));
        assert!(text.contains("site-4"));
        assert!(text.contains("sure bets"));
        assert!(text.contains("total drag"));
        // Highest-drag site listed first.
        let pos3 = text.find("site-3").unwrap();
        let pos4 = text.find("site-4").unwrap();
        assert!(pos3 < pos4);
    }

    #[test]
    fn render_empty_report() {
        let report = DragAnalyzer::new().analyze(&[], |c| Some(SiteId(c.0)));
        let text = ReportSections::standard(&report, &FixedNamer).top(5).render();
        assert!(text.contains("drag report"));
        assert!(!text.contains("sure bets"));
    }

    /// The deprecated free function must stay a byte-identical thin
    /// wrapper over the builder — old callers see unchanged output.
    #[test]
    #[allow(deprecated)]
    fn deprecated_render_matches_builder() {
        let records = vec![ObjectRecord {
            object: ObjectId(1),
            class: ClassId(0),
            size: 64,
            created: 0,
            freed: 512,
            last_use: Some(100),
            alloc_site: ChainId(2),
            last_use_site: Some(ChainId(2)),
            at_exit: false,
        }];
        let report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        assert_eq!(
            render(&report, &FixedNamer, 7),
            ReportSections::standard(&report, &FixedNamer).top(7).render()
        );
    }

    /// The retaining-paths section appears only once samples are
    /// attached, ranked heaviest path first, with the overflow ellipsis
    /// past [`RETAIN_TOP_PATHS`].
    #[test]
    fn retaining_section_renders_after_attach() {
        use crate::record::RetainRecord;
        let records = vec![ObjectRecord {
            object: ObjectId(1),
            class: ClassId(0),
            size: 64,
            created: 0,
            freed: 512,
            last_use: Some(100),
            alloc_site: ChainId(2),
            last_use_site: Some(ChainId(2)),
            at_exit: false,
        }];
        let mut report = DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        let without = ReportSections::standard(&report, &FixedNamer).render();
        assert!(!without.contains("retaining paths"));

        let mut retains = vec![
            RetainRecord {
                alloc_site: ChainId(2),
                size: 96,
                time: 300,
                depth: 2,
                truncated: false,
                path: "static Holder.big -> Thing.next".into(),
            },
            RetainRecord {
                alloc_site: ChainId(2),
                size: 16,
                time: 200,
                depth: 1,
                truncated: true,
                path: "static Holder.small".into(),
            },
        ];
        for i in 0..RETAIN_TOP_PATHS {
            retains.push(RetainRecord {
                alloc_site: ChainId(2),
                size: 1,
                time: 400,
                depth: 1,
                truncated: false,
                path: format!("static Filler.f{i}"),
            });
        }
        report.attach_retains(&retains);
        let text = ReportSections::standard(&report, &FixedNamer).render();
        assert!(text.contains("--- retaining paths: sampled holders at deep-GC marks ---"));
        // Heaviest path first, truncation flagged, overflow elided.
        let big = text.find("static Holder.big -> Thing.next").unwrap();
        let small = text.find("static Holder.small (truncated)").unwrap();
        assert!(big < small);
        assert!(text.contains("... and 2 more path(s)"));
    }
}

/// §3.4's *anchor allocation site*: walking a nested site's call chain
/// outwards from the (usually library-level) innermost frame, the first
/// frame in *application code* — the place a programmer should look at.
///
/// `library_prefixes` name the class-name (or free-function name)
/// prefixes considered library code, e.g. `["jdk."]`. Returns the
/// innermost frame when the whole chain is library code.
pub fn anchor_site(
    program: &Program,
    sites: &SiteTable,
    chain: heapdrag_vm::ids::ChainId,
    library_prefixes: &[&str],
) -> Option<heapdrag_vm::ids::SiteId> {
    let frames = sites.chain(chain);
    let is_library = |site: heapdrag_vm::ids::SiteId| {
        let method = sites.site(site).method;
        let name = program.method_name(method);
        library_prefixes.iter().any(|p| name.starts_with(p))
    };
    frames
        .iter()
        .copied()
        .find(|s| !is_library(*s))
        .or_else(|| frames.first().copied())
}

#[cfg(test)]
mod anchor_tests {
    use super::*;
    use heapdrag_vm::ids::MethodId;

    /// Builds a program with a library helper allocating on behalf of an
    /// application caller, then checks the anchor walk.
    #[test]
    fn anchor_walks_past_library_frames() {
        use heapdrag_vm::builder::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let lib_cls = b.begin_class("jdk.Buf").finish();
        let lib_make = b.declare_method("make", None, true, 0, 1);
        {
            let mut m = b.begin_body(lib_make);
            m.new_obj(lib_cls).ret_val();
            m.finish();
        }
        // Rename to live under the library namespace.
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.call(lib_make).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let mut p = b.finish().unwrap();
        p.methods[lib_make.index()].name = "jdk.make".into();

        let run = crate::profiler::profile(&p, &[], crate::VmConfig::profiling()).unwrap();
        let record = run.records.first().expect("the Buf was profiled");
        let anchor = anchor_site(&p, &run.sites, record.alloc_site, &["jdk."]).unwrap();
        assert_eq!(
            run.sites.site(anchor).method,
            main,
            "anchor is the application frame, not jdk.make"
        );
        // With no library prefixes, the innermost frame is the anchor.
        let inner = anchor_site(&p, &run.sites, record.alloc_site, &[]).unwrap();
        assert_eq!(run.sites.site(inner).method, MethodId(0));
    }

    #[test]
    fn all_library_chain_falls_back_to_innermost() {
        use heapdrag_vm::builder::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let run = crate::profiler::profile(&p, &[], crate::VmConfig::profiling()).unwrap();
        let record = run.records.first().unwrap();
        // Everything matches the prefix: fall back to the innermost frame.
        let anchor = anchor_site(&p, &run.sites, record.alloc_site, &["main"]).unwrap();
        assert_eq!(run.sites.site(anchor).method, main);
    }
}
