//! The unix-socket front end: a line-oriented control protocol over
//! `UnixListener`, plus the client helpers the CLI subcommands use.
//!
//! A connection carries exactly one command line (`\n`-terminated):
//!
//! * `SUBMIT <name> [shards=N] [chunk=N] [mode=strict|salvage]` — every
//!   byte after the newline is the trace; the reply (written when the
//!   session reaches a terminal state) is its rendered report or an
//!   `error:` line.
//! * `SESSIONS` — one line per session: id, state, cost, records, name.
//! * `FLEET [top]` — the fleet-aggregate report.
//! * `CANCEL <id>` — request cancellation of session `#id`.
//! * `PING` — `pong`.
//! * `SHUTDOWN` — stop accepting, wait for the queue to drain, reply
//!   `ok: idle`, and return from [`serve_socket`].

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;

use crate::serve::{ServeManager, SessionId, SessionSource, SessionSpec};

/// Longest accepted command line, in bytes.
const MAX_COMMAND: usize = 4096;

/// Reads the command line byte-at-a-time so no trace bytes are consumed
/// from the stream (a buffered reader would swallow them).
fn read_command(conn: &mut UnixStream) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = conn.read(&mut byte)?;
        if n == 0 || byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_COMMAND {
            return Err(io::Error::other("command line too long"));
        }
    }
    String::from_utf8(line).map_err(|_| io::Error::other("command line is not UTF-8"))
}

/// Parses `key=value` overrides into a per-session pipeline; `None` when
/// no override is present.
fn parse_overrides(
    manager: &ServeManager,
    words: &[&str],
) -> Result<Option<crate::Pipeline>, String> {
    if words.is_empty() {
        return Ok(None);
    }
    let mut pipe = manager.default_pipeline();
    for w in words {
        let Some((key, value)) = w.split_once('=') else {
            return Err(format!("bad override `{w}` (want key=value)"));
        };
        match key {
            "shards" => {
                let n: usize = value.parse().map_err(|_| format!("bad shards `{value}`"))?;
                pipe = pipe.shards(n);
            }
            "chunk" => {
                let n: usize = value.parse().map_err(|_| format!("bad chunk `{value}`"))?;
                pipe = pipe.chunk_records(n);
            }
            "mode" => match value {
                "strict" => pipe = pipe.strict(),
                "salvage" => pipe = pipe.salvage(None),
                other => return Err(format!("bad mode `{other}` (strict|salvage)")),
            },
            other => return Err(format!("unknown override `{other}`")),
        }
    }
    Ok(Some(pipe))
}

/// One line per session, tab-separated, for the `SESSIONS` reply and the
/// `heapdrag sessions` output. The queued/running durations let an
/// operator spot admission stalls: a large `queued_ms` next to a small
/// `run_ms` means the budget or driver count, not the trace, is the
/// bottleneck.
fn render_sessions(manager: &ServeManager) -> String {
    let mut out = String::new();
    for s in manager.sessions() {
        out.push_str(&format!(
            "{}\t{}\tcost={}\trecords={}\tqueued_ms={}\trun_ms={}\t{}{}\n",
            s.id,
            s.state,
            s.cost,
            s.records,
            s.queued_for.as_millis(),
            s.running_for.as_millis(),
            s.name,
            s.error.as_deref().map(|e| format!("\t({e})")).unwrap_or_default(),
        ));
    }
    out
}

/// Runs the accept loop on `listener` until a `SHUTDOWN` command
/// arrives. Submissions hand their connection to the session (read half
/// as the trace source, write half as the responder), so a slow trace
/// upload never blocks the accept loop.
///
/// # Errors
///
/// Propagates `accept` failures; per-connection I/O errors only end that
/// connection.
pub fn serve_socket(manager: &ServeManager, listener: &UnixListener) -> io::Result<()> {
    loop {
        let (mut conn, _) = listener.accept()?;
        let line = match read_command(&mut conn) {
            Ok(line) => line,
            Err(_) => continue,
        };
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some(&command) = words.first() else {
            continue;
        };
        match command {
            "SUBMIT" => {
                let name = words.get(1).copied().unwrap_or("socket").to_string();
                match parse_overrides(manager, &words[words.len().min(2)..]) {
                    Ok(pipeline) => {
                        let read_half = match conn.try_clone() {
                            Ok(r) => r,
                            Err(_) => continue,
                        };
                        let mut spec =
                            SessionSpec::new(name, SessionSource::Reader(Box::new(read_half)))
                                .responder(Box::new(conn));
                        if let Some(p) = pipeline {
                            spec = spec.pipeline(p);
                        }
                        manager.submit(spec);
                    }
                    Err(e) => {
                        let _ = conn.write_all(format!("error: {e}\n").as_bytes());
                    }
                }
            }
            "SESSIONS" => {
                let _ = conn.write_all(render_sessions(manager).as_bytes());
            }
            "FLEET" => {
                let top = words
                    .get(1)
                    .and_then(|w| w.parse::<usize>().ok())
                    .unwrap_or(10);
                let _ = conn.write_all(manager.fleet_report(top).as_bytes());
            }
            "CANCEL" => {
                let id = words
                    .get(1)
                    .and_then(|w| w.trim_start_matches('#').parse::<u64>().ok());
                let reply = match id {
                    Some(id) if manager.cancel(SessionId(id)) => "ok\n".to_string(),
                    Some(id) => format!("error: session #{id} not cancelable\n"),
                    None => "error: CANCEL needs a session id\n".to_string(),
                };
                let _ = conn.write_all(reply.as_bytes());
            }
            "PING" => {
                let _ = conn.write_all(b"pong\n");
            }
            "SHUTDOWN" => {
                manager.wait_idle();
                let _ = conn.write_all(b"ok: idle\n");
                return Ok(());
            }
            other => {
                let _ = conn.write_all(format!("error: unknown command `{other}`\n").as_bytes());
            }
        }
    }
}

/// Submits a trace over the socket: sends the `SUBMIT` line and the
/// whole `trace`, half-closes the write side, and returns the server's
/// reply (the per-session report, or an `error:` line).
///
/// `overrides` is the raw override words (e.g. `"shards=4 mode=salvage"`)
/// or empty for the server's defaults.
///
/// # Errors
///
/// Propagates connection and copy I/O errors.
pub fn client_submit(
    socket: &Path,
    name: &str,
    overrides: &str,
    trace: &mut dyn Read,
) -> io::Result<String> {
    let mut conn = UnixStream::connect(socket)?;
    let line = if overrides.is_empty() {
        format!("SUBMIT {name}\n")
    } else {
        format!("SUBMIT {name} {overrides}\n")
    };
    conn.write_all(line.as_bytes())?;
    io::copy(trace, &mut conn)?;
    conn.shutdown(std::net::Shutdown::Write)?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)?;
    Ok(reply)
}

/// Sends one non-`SUBMIT` command line and returns the full reply.
///
/// # Errors
///
/// Propagates connection I/O errors.
pub fn client_command(socket: &Path, command: &str) -> io::Result<String> {
    let mut conn = UnixStream::connect(socket)?;
    conn.write_all(command.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.shutdown(std::net::Shutdown::Write)?;
    let mut reply = String::new();
    conn.read_to_string(&mut reply)?;
    Ok(reply)
}
