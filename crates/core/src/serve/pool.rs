//! The shared, reusable decode worker pool.
//!
//! Before the serve mode existed, every ingest spawned its own worker
//! threads (`std::thread::scope` in the streaming engine, the in-memory
//! decoder, and the sharded analyzer), which is fine for one trace per
//! process and catastrophic for a session manager: 1000 concurrent
//! sessions at `--shards 8` would mean 8000 short-lived threads. The
//! [`WorkerPool`] replaces all of those spawn sites with one fixed set of
//! threads sized to the host; sessions share it at *chunk* granularity,
//! so a thousand sessions still cost a dozen threads.
//!
//! Two submission modes:
//!
//! * [`execute`](WorkerPool::execute) — fire-and-forget `'static` jobs
//!   (the streaming engine's per-chunk decodes, which own their data).
//! * [`scope`](WorkerPool::scope) — a batch of *borrowing* jobs run to
//!   completion before the call returns (the in-memory decoder and the
//!   sharded analyzer, whose work units borrow the caller's buffers).
//!
//! A panicking job is confined to itself: the worker catches the unwind,
//! counts it, and moves on — one session's poisoned chunk can never take
//! a thread (or another session) down with it. The pool never deadlocks
//! on its own jobs because nothing submitted to it blocks on other pool
//! jobs: chunk decodes are independent, and the coordinating threads
//! (CLI callers, serve drivers) are never pool workers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A unit of pool work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The state workers block on: the job queue and the shutdown flag.
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared between the pool handle and its workers.
struct Inner {
    queue: Mutex<Queue>,
    available: Condvar,
    workers: usize,
    busy: AtomicUsize,
    busy_peak: AtomicUsize,
    jobs_run: AtomicU64,
    panics: AtomicU64,
}

/// A fixed-size pool of worker threads executing submitted jobs.
///
/// See the [module docs](self) for why it exists and who runs on it.
/// Construction spawns the threads; [`shutdown`](Self::shutdown) (or
/// drop) runs every queued job to completion and joins them.
pub struct WorkerPool {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.inner.workers)
            .field("jobs_run", &self.jobs_run())
            .field("panics", &self.panics())
            .finish()
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.available.wait(q).expect("pool queue poisoned");
            }
        };
        let busy = inner.busy.fetch_add(1, Ordering::Relaxed) + 1;
        inner.busy_peak.fetch_max(busy, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            inner.panics.fetch_add(1, Ordering::Relaxed);
        }
        inner.busy.fetch_sub(1, Ordering::Relaxed);
        inner.jobs_run.fetch_add(1, Ordering::Relaxed);
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
            busy_peak: AtomicUsize::new(0),
            jobs_run: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("heapdrag-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide shared pool, sized to the host
    /// (`available_parallelism`, at least 2), created on first use. Every
    /// [`Pipeline`](crate::Pipeline) terminal decodes on it unless handed
    /// an explicit pool (the serve manager owns its own so tests can pin
    /// the worker count).
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(2);
            WorkerPool::new(n)
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Total jobs executed (including panicked ones).
    pub fn jobs_run(&self) -> u64 {
        self.inner.jobs_run.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (each confined to itself).
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }

    /// High-water mark of simultaneously busy workers — the utilization
    /// numerator the serve metrics publish.
    pub fn busy_peak(&self) -> usize {
        self.inner.busy_peak.load(Ordering::Relaxed)
    }

    /// Workers busy right now.
    pub fn busy(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// Submits a job. If the pool has already been shut down the job runs
    /// inline on the caller — submitted work is never silently dropped,
    /// which is what lets in-flight accounting (the streaming engine
    /// counts one result per dispatched chunk) stay exact.
    pub fn execute(&self, job: Job) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            if !q.shutdown {
                q.jobs.push_back(job);
                drop(q);
                self.inner.available.notify_one();
                return;
            }
        }
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.inner.panics.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.jobs_run.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs a batch of borrowing jobs on the pool and blocks until every
    /// one has finished (or been unwound by a panic). This is what lets
    /// the in-memory decoder and the sharded analyzer keep handing
    /// workers *references* into the caller's buffers without spawning
    /// threads of their own.
    ///
    /// Must not be called from a pool worker (a job that waits on other
    /// jobs of the same pool can deadlock a single-worker pool); the
    /// callers are all coordinating threads.
    pub fn scope<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if jobs.is_empty() {
            return;
        }
        let total = jobs.len();
        let latch = Arc::new((Mutex::new(0usize), Condvar::new()));
        for job in jobs {
            // SAFETY: `scope` does not return until the latch has counted
            // every job — run, panicked, or dropped unrun (the guard
            // below counts in all three cases) — so the `'env` borrows
            // inside `job` strictly outlive its execution. This is the
            // same argument `std::thread::scope` makes; the transmute
            // only erases the lifetime, the layout of the boxed trait
            // object is unchanged.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
            };
            let latch = Arc::clone(&latch);
            self.execute(Box::new(move || {
                /// Counts the latch even when the job panics or is
                /// dropped without running.
                struct Count(Arc<(Mutex<usize>, Condvar)>);
                impl Drop for Count {
                    fn drop(&mut self) {
                        let mut done = self.0 .0.lock().expect("scope latch poisoned");
                        *done += 1;
                        self.0 .1.notify_all();
                    }
                }
                let _count = Count(latch);
                job();
            }));
        }
        let (lock, cond) = &*latch;
        let mut done = lock.lock().expect("scope latch poisoned");
        while *done < total {
            done = cond.wait(done).expect("scope latch poisoned");
        }
    }

    /// Drains the queue (every already-submitted job runs) and joins all
    /// worker threads. Idempotent; also called on drop.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.inner.available.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().expect("pool handles poisoned"));
        for h in handles {
            h.join().expect("pool worker panicked outside a job");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.execute(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(pool.jobs_run(), 100);
        assert_eq!(pool.panics(), 0);
        assert_eq!(pool.workers(), 3);
    }

    #[test]
    fn shutdown_drains_and_joins_cleanly() {
        // Queue far more jobs than workers, shut down immediately: every
        // queued job must still run before the workers join.
        let pool = WorkerPool::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let hits = Arc::clone(&hits);
            pool.execute(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 500);
        // Idempotent.
        pool.shutdown();
        assert_eq!(pool.jobs_run(), 500);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        pool.execute(Box::new(|| panic!("poisoned chunk")));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            pool.execute(Box::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 50, "jobs after the panic still ran");
        assert_eq!(pool.panics(), 1);
        assert_eq!(pool.jobs_run(), 51);
    }

    #[test]
    fn scope_runs_borrowing_jobs_to_completion() {
        let pool = WorkerPool::new(4);
        let mut slots = [0u64; 16];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64 + 1) * 10;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
        // scope returned, so every borrow is done and every slot written.
        assert_eq!(slots[0], 10);
        assert_eq!(slots[15], 160);
        assert_eq!(slots.iter().sum::<u64>(), (1..=16).map(|i| i * 10).sum());
    }

    #[test]
    fn scope_survives_a_panicking_job() {
        let pool = WorkerPool::new(2);
        let mut ok = [false; 8];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ok
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    if i == 3 {
                        panic!("one bad shard");
                    }
                    *slot = true;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
        for (i, done) in ok.iter().enumerate() {
            assert_eq!(*done, i != 3, "job {i}");
        }
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn execute_after_shutdown_runs_inline() {
        let pool = WorkerPool::new(1);
        pool.shutdown();
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        pool.execute(Box::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn busy_peak_tracks_concurrency() {
        let pool = WorkerPool::new(2);
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
            .map(|_| {
                let gate = Arc::clone(&gate);
                Box::new(move || {
                    let (lock, cond) = &*gate;
                    let mut n = lock.lock().unwrap();
                    *n += 1;
                    cond.notify_all();
                    // Hold until both jobs are in flight, so the peak
                    // deterministically reaches 2.
                    while *n < 2 {
                        n = cond.wait(n).unwrap();
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(jobs);
        // Join the workers before reading `busy`: the scope latch fires
        // inside the job, slightly before the worker's own decrement.
        pool.shutdown();
        assert_eq!(pool.busy_peak(), 2);
        assert_eq!(pool.busy(), 0);
    }
}
