//! The multi-session drag service: one analyzer process serving a fleet
//! of instrumented VMs.
//!
//! The paper's offline analysis assumes one trace per tool invocation.
//! This module turns the bounded-memory [`Pipeline`](crate::Pipeline)
//! into a long-running service: a [`ServeManager`] owns a registry of
//! *sessions* (one trace stream each, with its own pipeline config and
//! lifecycle state), a fixed set of *driver* threads that coordinate one
//! session apiece, and the shared decode [`WorkerPool`] every session's
//! chunks run on. Traces arrive from a spool directory
//! ([`submit_spool`]) or a unix socket listener ([`serve_socket`]); the
//! `heapdrag serve` / `submit` / `sessions` / `fleet-report` CLI
//! subcommands drive it.
//!
//! Three properties carry over from the single-shot pipeline, by
//! construction:
//!
//! * **Per-session byte-identity.** A session is exactly one
//!   [`Pipeline::analyze_reader`](crate::Pipeline::analyze_reader) run
//!   (same scanner, same merge order, same finalize), so its report is
//!   byte-identical to a single-shot run on the same bytes — for any
//!   pool size and any interleaving with other sessions.
//! * **Bounded transit memory, fleet-wide.** Each session's streaming
//!   engine caps its in-flight chunks; admission control charges every
//!   session that cap up front against a fleet-wide budget and queues
//!   (or rejects) sessions that would exceed it, so the sum of all
//!   sessions' transit buffers never exceeds the budget.
//! * **Deterministic fleet aggregation.** Completed sessions retain
//!   their exact-integer per-site partial aggregates; the fleet report
//!   merges them with the same commutative fold the shard merge uses,
//!   so the aggregate is invariant under session arrival order.
//!
//! Metrics publish as the `heapdrag_serve_*` family through the
//! existing [`Registry`](heapdrag_obs::Registry); see DESIGN.md §12 for
//! the lifecycle state machine and the admission-control invariant.

pub mod pool;
mod session;
#[cfg(unix)]
mod socket;
mod spool;

pub use pool::WorkerPool;
pub use session::{
    session_cost, ServeConfig, ServeManager, SessionId, SessionSource, SessionSpec, SessionState,
    SessionSummary,
};
#[cfg(unix)]
pub use socket::{client_command, client_submit, serve_socket};
pub use spool::submit_spool;
