//! The spool-directory front end: submit every trace file in a
//! directory as a session.

use std::io;
use std::path::{Path, PathBuf};

use crate::serve::{ServeManager, SessionId, SessionSource, SessionSpec};

/// Submits every regular file in `dir` (non-recursively) to `manager`,
/// one session per file, named by file name. Files are submitted in
/// sorted-path order so repeated runs enumerate identically — though the
/// fleet report does not depend on it (the merge is order-invariant).
///
/// Returns the submitted ids in submission order; some may already be
/// `Rejected` if admission control refused them.
///
/// # Errors
///
/// Propagates directory-enumeration I/O errors. Per-file open errors
/// surface later, as `Failed` sessions, not here.
pub fn submit_spool(manager: &ServeManager, dir: &Path) -> io::Result<Vec<SessionId>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            paths.push(entry.path());
        }
    }
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            manager.submit(SessionSpec::new(name, SessionSource::Path(p)))
        })
        .collect())
}
