//! The session registry and its driver threads: lifecycle states,
//! admission control on the fleet-wide in-flight-chunk budget, and the
//! deterministic fleet merge.
//!
//! See the [module docs](super) for the big picture and DESIGN.md §12
//! for the state machine and the invariants.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use heapdrag_obs::{Counter, Gauge, Registry};
use heapdrag_vm::ids::{ChainId, SiteId};

use crate::analyzer::ShardAccum;
use crate::log::SalvageSummary;
use crate::pipeline::{AnalyzePartials, Pipeline, PipelineError};
use crate::report::ReportSections;
use crate::serve::WorkerPool;
use crate::stream::flight_cap;

/// The admission-control cost of one session at `shards` decode shards:
/// the in-flight-chunk cap its streaming engine will run under, charged
/// up front against [`ServeConfig::budget_chunks`]. Because the engine
/// never holds more than this many chunks in transit, the sum of the
/// costs of all running sessions bounds the fleet's transit memory.
pub fn session_cost(shards: usize) -> u64 {
    flight_cap(shards) as u64
}

/// Configuration of a [`ServeManager`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Decode worker threads in the manager-owned [`WorkerPool`].
    pub pool_workers: usize,
    /// Driver threads — the maximum number of *running* sessions. Each
    /// driver coordinates one session at a time (reads, scans, merges);
    /// the decode work all lands on the shared pool.
    pub drivers: usize,
    /// Fleet-wide in-flight-chunk budget. A session charges
    /// [`session_cost`] of its shard count; sessions that would exceed
    /// the budget wait in the queue, and sessions whose cost alone
    /// exceeds it are rejected outright.
    pub budget_chunks: u64,
    /// Maximum queued (admitted but not yet running) sessions before
    /// submissions are rejected.
    pub max_queue: usize,
    /// Default per-session pipeline (shards, chunk size, fault policy,
    /// analyzer thresholds); a [`SessionSpec`] may override it. The
    /// fleet report always finalizes with this pipeline's analyzer.
    pub pipeline: Pipeline,
    /// Where `heapdrag_serve_*` (and per-session `heapdrag_ingest_*`)
    /// metrics publish.
    pub registry: Registry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(2);
        ServeConfig {
            pool_workers: host,
            drivers: host.min(8),
            budget_chunks: (4 * host as u64).max(8),
            max_queue: 1024,
            pipeline: Pipeline::options(),
            registry: Registry::new(),
        }
    }
}

/// Identifies a session within one [`ServeManager`]; assigned in
/// submission order starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Where a session's trace bytes come from.
pub enum SessionSource {
    /// A file on disk, opened when the session starts running.
    Path(PathBuf),
    /// An in-memory trace.
    Bytes(Vec<u8>),
    /// Any reader — a socket, a pipe. Read once, when the session runs.
    Reader(Box<dyn Read + Send>),
}

impl fmt::Debug for SessionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionSource::Path(p) => f.debug_tuple("Path").field(p).finish(),
            SessionSource::Bytes(b) => f.debug_tuple("Bytes").field(&b.len()).finish(),
            SessionSource::Reader(_) => f.debug_tuple("Reader").finish(),
        }
    }
}

/// A session submission: a name, a trace source, and optional overrides.
pub struct SessionSpec {
    /// Display name (a file name, a socket peer) — not required to be
    /// unique; the [`SessionId`] is the identity.
    pub name: String,
    /// Where the trace bytes come from.
    pub source: SessionSource,
    /// Per-session pipeline override; `None` uses
    /// [`ServeConfig::pipeline`].
    pub pipeline: Option<Pipeline>,
    /// Where to write the per-session report (or error) when the session
    /// reaches a terminal state — the reply half of a socket submission.
    pub responder: Option<Box<dyn Write + Send>>,
}

impl SessionSpec {
    /// A spec with no overrides and no responder.
    pub fn new(name: impl Into<String>, source: SessionSource) -> Self {
        SessionSpec {
            name: name.into(),
            source,
            pipeline: None,
            responder: None,
        }
    }

    /// Sets a per-session pipeline override.
    #[must_use]
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Sets the terminal-state reply writer.
    #[must_use]
    pub fn responder(mut self, responder: Box<dyn Write + Send>) -> Self {
        self.responder = Some(responder);
        self
    }
}

/// A session's lifecycle state.
///
/// ```text
///             ┌──────────┐  budget+driver  ┌─────────┐ ok  ┌───────────┐
/// submit ───▶ │  Queued  │ ───────────────▶│ Running │────▶│ Completed │
///      │      └──────────┘                 └─────────┘     └───────────┘
///      │            │ cancel                │    │ error     (terminal)
///      │            ▼                cancel │    ▼
///      │      ┌──────────┐                  │  ┌────────┐
///      │      └─▶ Canceled ◀────────────────┘  │ Failed │
///      ▼      (terminal)                       └────────┘
/// ┌──────────┐                                 (terminal)
/// │ Rejected │  cost > budget, queue full, or shutting down
/// └──────────┘
/// (terminal)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionState {
    /// Admitted; waiting for budget and a free driver.
    Queued,
    /// A driver is streaming the trace through the pipeline.
    Running,
    /// The trace was analyzed; the partial aggregates are retained for
    /// per-session reports and the fleet merge.
    Completed,
    /// The pipeline failed (I/O error, strict-mode log fault, salvage
    /// error budget exceeded).
    Failed,
    /// Canceled before or during its run.
    Canceled,
    /// Refused admission: its cost exceeds the fleet budget, the queue
    /// was full, or the manager was shutting down.
    Rejected,
}

impl SessionState {
    /// True once the state can no longer change.
    pub fn is_terminal(self) -> bool {
        !matches!(self, SessionState::Queued | SessionState::Running)
    }
}

impl fmt::Display for SessionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Completed => "completed",
            SessionState::Failed => "failed",
            SessionState::Canceled => "canceled",
            SessionState::Rejected => "rejected",
        })
    }
}

/// A point-in-time view of one session, as listed by
/// [`ServeManager::sessions`].
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// The session's identity.
    pub id: SessionId,
    /// The submitted display name.
    pub name: String,
    /// Lifecycle state at snapshot time.
    pub state: SessionState,
    /// Admission cost in budget chunks.
    pub cost: u64,
    /// Records folded (completed sessions only).
    pub records: u64,
    /// The session's streaming stats (completed sessions only).
    pub stats: Option<crate::stream::StreamStats>,
    /// Time spent admitted but not yet running (still growing while
    /// queued) — the admission-stall signal.
    pub queued_for: Duration,
    /// Time spent running (still growing while running; zero if the
    /// session never started).
    pub running_for: Duration,
    /// Why the session failed, was rejected, or was canceled.
    pub error: Option<String>,
}

/// A reader wrapper that aborts with an I/O error once the session's
/// cancel flag is set — how a running session's read loop is interrupted.
struct CancelReader<R> {
    inner: R,
    cancel: Arc<AtomicBool>,
}

impl<R: Read> Read for CancelReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(std::io::Error::other("session canceled"));
        }
        self.inner.read(buf)
    }
}

/// One session's record in the registry.
struct Session {
    name: String,
    state: SessionState,
    cost: u64,
    pipe: Pipeline,
    cancel: Arc<AtomicBool>,
    source: Option<SessionSource>,
    responder: Option<Box<dyn Write + Send>>,
    partials: Option<AnalyzePartials>,
    error: Option<String>,
    submitted_at: Instant,
    started_at: Option<Instant>,
    finished_at: Option<Instant>,
}

impl Session {
    /// Queued duration so far: submission to run start, or to terminal
    /// state for sessions that never ran, or to `now` while still queued.
    fn queued_for(&self, now: Instant) -> Duration {
        let end = self.started_at.or(self.finished_at).unwrap_or(now);
        end.saturating_duration_since(self.submitted_at)
    }

    /// Running duration so far: run start to terminal state, or to `now`
    /// while still running. Zero for sessions that never started.
    fn running_for(&self, now: Instant) -> Duration {
        match self.started_at {
            Some(start) => self
                .finished_at
                .unwrap_or(now)
                .saturating_duration_since(start),
            None => Duration::ZERO,
        }
    }
}

/// The mutex-guarded registry state.
struct State {
    sessions: BTreeMap<u64, Session>,
    /// Admitted session ids in FIFO order.
    queue: VecDeque<u64>,
    /// Budget chunks reserved by running sessions.
    reserved: u64,
    running: usize,
    next_id: u64,
    shutdown: bool,
}

/// The `heapdrag_serve_*` metric handles.
struct Metrics {
    submitted: Counter,
    completed: Counter,
    failed: Counter,
    canceled: Counter,
    rejected: Counter,
    active: Gauge,
    queued: Gauge,
    inflight: Gauge,
    inflight_peak: Gauge,
    budget: Gauge,
    pool_workers: Gauge,
    pool_busy_peak: Gauge,
    pool_jobs: Gauge,
    pool_panics: Gauge,
}

impl Metrics {
    fn new(registry: &Registry) -> Self {
        Metrics {
            submitted: registry.counter("heapdrag_serve_sessions_submitted_total"),
            completed: registry.counter("heapdrag_serve_sessions_completed_total"),
            failed: registry.counter("heapdrag_serve_sessions_failed_total"),
            canceled: registry.counter("heapdrag_serve_sessions_canceled_total"),
            rejected: registry.counter("heapdrag_serve_admission_rejections_total"),
            active: registry.gauge("heapdrag_serve_active_sessions"),
            queued: registry.gauge("heapdrag_serve_queued_sessions"),
            inflight: registry.gauge("heapdrag_serve_inflight_chunks"),
            inflight_peak: registry.gauge("heapdrag_serve_inflight_chunks_peak"),
            budget: registry.gauge("heapdrag_serve_inflight_chunk_budget"),
            pool_workers: registry.gauge("heapdrag_serve_pool_workers"),
            pool_busy_peak: registry.gauge("heapdrag_serve_pool_busy_peak"),
            pool_jobs: registry.gauge("heapdrag_serve_pool_jobs"),
            pool_panics: registry.gauge("heapdrag_serve_pool_panics"),
        }
    }
}

/// Shared between the manager handle and its driver threads.
struct Shared {
    state: Mutex<State>,
    /// Signaled on every queue/budget/terminal-state/shutdown change;
    /// drivers and [`ServeManager::wait_idle`] wait on it.
    cond: Condvar,
    budget: u64,
    max_queue: usize,
    pool: WorkerPool,
    registry: Registry,
    metrics: Metrics,
    default_pipe: Pipeline,
}

/// The long-running session manager. See the [module docs](super).
///
/// Dropping the manager shuts it down: the queue drains, drivers join,
/// and the pool joins.
pub struct ServeManager {
    shared: Arc<Shared>,
    drivers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ServeManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeManager")
            .field("drivers", &self.drivers.len())
            .field("budget_chunks", &self.shared.budget)
            .finish()
    }
}

impl ServeManager {
    /// Starts a manager: spawns the decode pool and the driver threads.
    pub fn new(config: ServeConfig) -> Self {
        let metrics = Metrics::new(&config.registry);
        metrics.budget.set(i64::try_from(config.budget_chunks).unwrap_or(i64::MAX));
        let pool = WorkerPool::new(config.pool_workers);
        metrics.pool_workers.set(pool.workers() as i64);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                sessions: BTreeMap::new(),
                queue: VecDeque::new(),
                reserved: 0,
                running: 0,
                next_id: 1,
                shutdown: false,
            }),
            cond: Condvar::new(),
            budget: config.budget_chunks,
            max_queue: config.max_queue,
            pool,
            registry: config.registry,
            metrics,
            default_pipe: config.pipeline,
        });
        let drivers = (0..config.drivers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("heapdrag-driver-{i}"))
                    .spawn(move || driver_loop(&shared))
                    .expect("spawn driver thread")
            })
            .collect();
        ServeManager { shared, drivers }
    }

    /// The registry `heapdrag_serve_*` metrics publish to.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// The shared decode pool (for its utilization counters).
    pub fn pool(&self) -> &WorkerPool {
        &self.shared.pool
    }

    /// The default per-session pipeline ([`ServeConfig::pipeline`]) —
    /// the base that socket-protocol overrides apply on top of.
    pub fn default_pipeline(&self) -> Pipeline {
        self.shared.default_pipe
    }

    /// Submits a session. Admission control runs here: the session is
    /// queued FIFO unless its cost alone exceeds the fleet budget, the
    /// queue is full, or the manager is shutting down — in which case it
    /// is `Rejected` (the returned id stays queryable either way).
    pub fn submit(&self, spec: SessionSpec) -> SessionId {
        let pipe = spec.pipeline.unwrap_or(self.shared.default_pipe);
        let cost = session_cost(pipe.parallel_config().shards);
        let m = &self.shared.metrics;
        m.submitted.inc();
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        let id = st.next_id;
        st.next_id += 1;
        let reject = if st.shutdown {
            Some("manager is shutting down".to_string())
        } else if cost > self.shared.budget {
            Some(format!(
                "session needs {cost} in-flight chunks but the fleet budget is {}",
                self.shared.budget
            ))
        } else if st.queue.len() >= self.shared.max_queue {
            Some(format!("queue is full ({} sessions)", st.queue.len()))
        } else {
            None
        };
        let mut session = Session {
            name: spec.name,
            state: SessionState::Queued,
            cost,
            pipe,
            cancel: Arc::new(AtomicBool::new(false)),
            source: Some(spec.source),
            responder: spec.responder,
            partials: None,
            error: None,
            submitted_at: Instant::now(),
            started_at: None,
            finished_at: None,
        };
        if let Some(reason) = reject {
            m.rejected.inc();
            session.state = SessionState::Rejected;
            session.finished_at = Some(session.submitted_at);
            session.source = None;
            respond(&mut session.responder, &format!("error: rejected: {reason}\n"));
            session.error = Some(reason);
            st.sessions.insert(id, session);
            return SessionId(id);
        }
        st.sessions.insert(id, session);
        st.queue.push_back(id);
        m.queued.set(st.queue.len() as i64);
        drop(st);
        self.shared.cond.notify_all();
        SessionId(id)
    }

    /// Requests cancellation. A queued session is removed immediately; a
    /// running session's reader aborts at its next read. Returns false
    /// when the session is unknown or already terminal.
    pub fn cancel(&self, id: SessionId) -> bool {
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        let Some(session) = st.sessions.get_mut(&id.0) else {
            return false;
        };
        match session.state {
            SessionState::Queued => {
                session.state = SessionState::Canceled;
                session.finished_at = Some(Instant::now());
                session.error = Some("canceled while queued".to_string());
                session.source = None;
                respond(&mut session.responder, "error: canceled\n");
                let m = &self.shared.metrics;
                m.canceled.inc();
                st.queue.retain(|&q| q != id.0);
                m.queued.set(st.queue.len() as i64);
                drop(st);
                self.shared.cond.notify_all();
                true
            }
            SessionState::Running => {
                session.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The lifecycle state of a session.
    pub fn state(&self, id: SessionId) -> Option<SessionState> {
        let st = self.shared.state.lock().expect("serve state poisoned");
        st.sessions.get(&id.0).map(|s| s.state)
    }

    /// Snapshots every session, in submission order. Also refreshes the
    /// pool-utilization gauges.
    pub fn sessions(&self) -> Vec<SessionSummary> {
        self.publish_pool_metrics();
        let now = Instant::now();
        let st = self.shared.state.lock().expect("serve state poisoned");
        st.sessions
            .iter()
            .map(|(&id, s)| SessionSummary {
                id: SessionId(id),
                name: s.name.clone(),
                state: s.state,
                cost: s.cost,
                records: s.partials.as_ref().map_or(0, |p| p.records),
                stats: s.partials.as_ref().map(|p| p.stats),
                queued_for: s.queued_for(now),
                running_for: s.running_for(now),
                error: s.error.clone(),
            })
            .collect()
    }

    /// Renders a completed session's drag report (top-N sites), exactly
    /// the bytes a single-shot `Pipeline::analyze_reader` + render of the
    /// same trace would produce. `None` unless the session completed.
    pub fn report(&self, id: SessionId, top: usize) -> Option<String> {
        let (pipe, partials) = {
            let st = self.shared.state.lock().expect("serve state poisoned");
            let s = st.sessions.get(&id.0)?;
            (s.pipe, s.partials.clone()?)
        };
        Some(render_session(&pipe, partials, top))
    }

    /// Blocks until no session is queued or running, then refreshes the
    /// pool gauges. New submissions may still arrive afterwards.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        while !st.queue.is_empty() || st.running > 0 {
            st = self.shared.cond.wait(st).expect("serve state poisoned");
        }
        drop(st);
        self.publish_pool_metrics();
    }

    /// The deterministic fleet-aggregate report: merges every completed
    /// session's exact-integer per-site partials with the same
    /// commutative fold the shard merge uses, then classifies and sorts
    /// once. Invariant under session arrival order and pool size; chain
    /// ids are assumed to share a site namespace across sessions (the
    /// same instrumented program), with name conflicts resolved to the
    /// lexicographically smallest name.
    pub fn fleet_report(&self, top: usize) -> String {
        self.publish_pool_metrics();
        let (partials, pipe) = {
            let st = self.shared.state.lock().expect("serve state poisoned");
            let list: Vec<AnalyzePartials> = st
                .sessions
                .values()
                .filter(|s| s.state == SessionState::Completed)
                .filter_map(|s| s.partials.clone())
                .collect();
            (list, self.shared.default_pipe)
        };
        let merged_sessions = partials.len();
        let mut accum = ShardAccum::default();
        let mut names: HashMap<ChainId, String> = HashMap::new();
        let (mut records, mut alloc_bytes, mut at_exit, mut samples) = (0u64, 0u64, 0u64, 0u64);
        let mut end_time = 0u64;
        // Retain samples merge by concatenation: attach_retains sums per
        // (site, path) and sorts canonically, so session order is moot.
        let mut retains = Vec::new();
        for p in partials {
            records += p.records;
            alloc_bytes += p.alloc_bytes;
            at_exit += p.at_exit;
            samples += p.samples;
            end_time = end_time.max(p.end_time);
            retains.extend(p.retains);
            accum.merge(p.accum);
            for (id, name) in p.chain_names {
                names
                    .entry(id)
                    .and_modify(|have| {
                        if name < *have {
                            *have = name.clone();
                        }
                    })
                    .or_insert(name);
            }
        }
        let fleet = AnalyzePartials {
            accum,
            records,
            alloc_bytes,
            at_exit,
            samples,
            retains,
            salvage: SalvageSummary::default(),
            end_time,
            chain_names: names,
            parse_metrics: Default::default(),
            stats: Default::default(),
        };
        let sr = pipe.finalize_partials(fleet);
        format!(
            "=== fleet drag report: {merged_sessions} sessions merged, \
             {records} records, {alloc_bytes} bytes allocated ===\n\n{}",
            ReportSections::standard(&sr.report, &sr).top(top).render()
        )
    }

    /// Copies the pool's utilization counters into the
    /// `heapdrag_serve_pool_*` gauges.
    pub fn publish_pool_metrics(&self) {
        let m = &self.shared.metrics;
        let pool = &self.shared.pool;
        m.pool_busy_peak.set(pool.busy_peak() as i64);
        m.pool_jobs.set(i64::try_from(pool.jobs_run()).unwrap_or(i64::MAX));
        m.pool_panics.set(i64::try_from(pool.panics()).unwrap_or(i64::MAX));
    }

    /// Graceful shutdown: refuses new submissions, drains the queue
    /// (every admitted session still runs), joins the drivers, then
    /// joins the pool. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("serve state poisoned");
            st.shutdown = true;
        }
        self.shared.cond.notify_all();
        for h in self.drivers.drain(..) {
            h.join().expect("driver thread panicked");
        }
        self.shared.pool.shutdown();
        self.publish_pool_metrics();
    }
}

impl Drop for ServeManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Best-effort terminal-state reply; the writer is dropped (closing a
/// socket's write half) either way.
fn respond(responder: &mut Option<Box<dyn Write + Send>>, message: &str) {
    if let Some(mut w) = responder.take() {
        let _ = w.write_all(message.as_bytes());
        let _ = w.flush();
    }
}

/// Finalizes retained partials into the user-facing report string —
/// byte-identical to the single-shot path in `tests/streaming_parity.rs`.
fn render_session(pipe: &Pipeline, partials: AnalyzePartials, top: usize) -> String {
    let sr = pipe.finalize_partials(partials);
    let mut sections = ReportSections::standard(&sr.report, &sr).top(top);
    if sr.salvage.salvage {
        sections = sections.salvage_footer(&sr.salvage);
    }
    sections.render()
}

/// What a driver takes out of the registry to run one session.
struct Claimed {
    id: u64,
    cost: u64,
    pipe: Pipeline,
    cancel: Arc<AtomicBool>,
    source: SessionSource,
}

fn driver_loop(shared: &Shared) {
    loop {
        let Some(claimed) = claim_next(shared) else {
            return;
        };
        let Claimed {
            id,
            cost,
            pipe,
            cancel,
            source,
        } = claimed;
        let result = run_session(shared, &pipe, &cancel, source);
        finish_session(shared, id, cost, &cancel, result);
    }
}

/// Blocks until the head of the queue fits in the budget (strict FIFO —
/// a small session never overtakes a large one, so a large one cannot
/// starve), claims it, and reserves its cost. Returns `None` when the
/// manager is shutting down and the queue is empty.
fn claim_next(shared: &Shared) -> Option<Claimed> {
    let mut st = shared.state.lock().expect("serve state poisoned");
    loop {
        if let Some(&head) = st.queue.front() {
            let cost = st.sessions[&head].cost;
            if st.reserved + cost <= shared.budget {
                st.queue.pop_front();
                st.reserved += cost;
                st.running += 1;
                let m = &shared.metrics;
                m.queued.set(st.queue.len() as i64);
                m.active.set(st.running as i64);
                let inflight = i64::try_from(st.reserved).unwrap_or(i64::MAX);
                m.inflight.set(inflight);
                m.inflight_peak.set_max(inflight);
                let s = st.sessions.get_mut(&head).expect("queued session exists");
                s.state = SessionState::Running;
                s.started_at = Some(Instant::now());
                return Some(Claimed {
                    id: head,
                    cost,
                    pipe: s.pipe,
                    cancel: Arc::clone(&s.cancel),
                    source: s.source.take().expect("queued session has a source"),
                });
            }
        } else if st.shutdown {
            return None;
        }
        st = shared.cond.wait(st).expect("serve state poisoned");
    }
}

/// Streams one session's trace through its pipeline on the shared pool.
fn run_session(
    shared: &Shared,
    pipe: &Pipeline,
    cancel: &Arc<AtomicBool>,
    source: SessionSource,
) -> Result<AnalyzePartials, PipelineError> {
    let inner: Box<dyn Read + Send> = match source {
        SessionSource::Path(p) => Box::new(std::fs::File::open(p).map_err(PipelineError::Io)?),
        SessionSource::Bytes(b) => Box::new(std::io::Cursor::new(b)),
        SessionSource::Reader(r) => r,
    };
    let reader = CancelReader {
        inner,
        cancel: Arc::clone(cancel),
    };
    let partials = pipe.analyze_partials_on(&shared.pool, reader, |c| Some(SiteId(c.0)))?;
    partials.stats.publish_metrics(&shared.registry);
    Ok(partials)
}

/// Writes the terminal state back into the registry, releases the
/// budget reservation, and replies on the responder.
fn finish_session(
    shared: &Shared,
    id: u64,
    cost: u64,
    cancel: &AtomicBool,
    result: Result<AnalyzePartials, PipelineError>,
) {
    let mut st = shared.state.lock().expect("serve state poisoned");
    let m = &shared.metrics;
    {
        let s = st.sessions.get_mut(&id).expect("running session exists");
        s.finished_at = Some(Instant::now());
        match result {
            Ok(partials) => {
                s.state = SessionState::Completed;
                s.partials = Some(partials);
                m.completed.inc();
                let (pipe, partials) = (s.pipe, s.partials.clone().expect("just set"));
                let reply = render_session(&pipe, partials, 10);
                respond(&mut s.responder, &reply);
            }
            Err(e) => {
                if cancel.load(Ordering::Relaxed) {
                    s.state = SessionState::Canceled;
                    s.error = Some("canceled while running".to_string());
                    m.canceled.inc();
                    respond(&mut s.responder, "error: canceled\n");
                } else {
                    s.state = SessionState::Failed;
                    let msg = e.to_string();
                    respond(&mut s.responder, &format!("error: {msg}\n"));
                    s.error = Some(msg);
                    m.failed.inc();
                }
            }
        }
    }
    st.reserved -= cost;
    st.running -= 1;
    m.active.set(st.running as i64);
    m.inflight.set(i64::try_from(st.reserved).unwrap_or(i64::MAX));
    drop(st);
    shared.cond.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace(records: u32) -> Vec<u8> {
        let mut t = String::from("heapdrag-log v1\nchain 0 Main.a@0\nchain 1 Main.b@1\n");
        for i in 0..records {
            let created = u64::from(i) * 10;
            t.push_str(&format!(
                "obj {i} 0 {} {created} {} {} {} {} 0\n",
                16 + (i % 3) * 8,
                created + 500,
                created + 100,
                i % 2,
                i % 2,
            ));
        }
        t.push_str("end 90000\n");
        t.into_bytes()
    }

    fn config(pool: usize, drivers: usize, budget: u64) -> ServeConfig {
        ServeConfig {
            pool_workers: pool,
            drivers,
            budget_chunks: budget,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn a_session_completes_and_reports_like_a_single_shot_run() {
        let trace = tiny_trace(40);
        let pipe = Pipeline::options().shards(2).chunk_records(8);
        let single = {
            let sr = pipe.analyze_reader(&trace[..]).expect("single-shot run");
            ReportSections::standard(&sr.report, &sr).render()
        };
        let mut manager = ServeManager::new(ServeConfig {
            pipeline: pipe,
            ..config(2, 2, 16)
        });
        let id = manager.submit(SessionSpec::new("tiny", SessionSource::Bytes(trace)));
        manager.wait_idle();
        assert_eq!(manager.state(id), Some(SessionState::Completed));
        assert_eq!(manager.report(id, 10).expect("completed"), single);
        let snap = manager.registry().snapshot();
        assert_eq!(snap.counters["heapdrag_serve_sessions_submitted_total"], 1);
        assert_eq!(snap.counters["heapdrag_serve_sessions_completed_total"], 1);
        assert_eq!(snap.gauges["heapdrag_serve_active_sessions"], 0);
        assert_eq!(snap.gauges["heapdrag_serve_queued_sessions"], 0);
        assert_eq!(snap.gauges["heapdrag_serve_inflight_chunks"], 0);
        assert!(snap.gauges["heapdrag_serve_inflight_chunks_peak"] >= 4);
        manager.shutdown();
    }

    #[test]
    fn oversized_sessions_are_rejected_up_front() {
        // Budget 4; a 16-shard session costs 32 and must be rejected,
        // while a default session still runs.
        let manager = ServeManager::new(config(1, 1, 4));
        let big = manager.submit(
            SessionSpec::new("big", SessionSource::Bytes(tiny_trace(5)))
                .pipeline(Pipeline::options().shards(16)),
        );
        let small = manager.submit(SessionSpec::new("small", SessionSource::Bytes(tiny_trace(5))));
        assert_eq!(manager.state(big), Some(SessionState::Rejected));
        manager.wait_idle();
        assert_eq!(manager.state(small), Some(SessionState::Completed));
        let snap = manager.registry().snapshot();
        assert_eq!(snap.counters["heapdrag_serve_admission_rejections_total"], 1);
        assert_eq!(snap.counters["heapdrag_serve_sessions_submitted_total"], 2);
    }

    #[test]
    fn a_failing_trace_marks_the_session_failed_not_the_manager() {
        let manager = ServeManager::new(config(1, 1, 8));
        let bad = manager.submit(SessionSpec::new(
            "bad",
            SessionSource::Bytes(b"heapdrag-log v1\ngarbage line\nend 5\n".to_vec()),
        ));
        let good = manager.submit(SessionSpec::new("good", SessionSource::Bytes(tiny_trace(8))));
        manager.wait_idle();
        assert_eq!(manager.state(bad), Some(SessionState::Failed));
        assert_eq!(manager.state(good), Some(SessionState::Completed));
        let summaries = manager.sessions();
        let bad_summary = summaries.iter().find(|s| s.id == bad).unwrap();
        assert!(bad_summary.error.as_deref().unwrap().contains("E003"));
    }

    #[test]
    fn fleet_report_is_invariant_under_submission_order() {
        let traces: Vec<Vec<u8>> = vec![tiny_trace(10), tiny_trace(25), tiny_trace(40)];
        let fleet_of = |order: &[usize]| {
            let manager = ServeManager::new(config(2, 2, 16));
            for &i in order {
                manager.submit(SessionSpec::new(
                    format!("t{i}"),
                    SessionSource::Bytes(traces[i].clone()),
                ));
            }
            manager.wait_idle();
            manager.fleet_report(10)
        };
        let a = fleet_of(&[0, 1, 2]);
        let b = fleet_of(&[2, 0, 1]);
        assert_eq!(a, b);
        assert!(a.starts_with("=== fleet drag report: 3 sessions merged"));
    }

    #[test]
    fn cancel_of_a_queued_session_releases_it_without_running() {
        // One driver, and the first session's reader blocks until we
        // cancel the queued one behind it.
        struct StallReader {
            sent: bool,
            gate: std::sync::mpsc::Receiver<()>,
        }
        impl Read for StallReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if !self.sent {
                    self.sent = true;
                    let header = b"heapdrag-log v1\nend 5\n";
                    buf[..header.len()].copy_from_slice(header);
                    return Ok(header.len());
                }
                let _ = self.gate.recv();
                Ok(0)
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let manager = ServeManager::new(config(1, 1, 8));
        let first = manager.submit(SessionSpec::new(
            "stalling",
            SessionSource::Reader(Box::new(StallReader { sent: false, gate: rx })),
        ));
        let second = manager.submit(SessionSpec::new("queued", SessionSource::Bytes(tiny_trace(4))));
        // Wait until the first session is actually running.
        while manager.state(first) != Some(SessionState::Running) {
            std::thread::yield_now();
        }
        assert_eq!(manager.state(second), Some(SessionState::Queued));
        assert!(manager.cancel(second));
        assert_eq!(manager.state(second), Some(SessionState::Canceled));
        drop(tx); // unblock the stalling reader
        manager.wait_idle();
        assert_eq!(manager.state(first), Some(SessionState::Completed));
        let snap = manager.registry().snapshot();
        assert_eq!(snap.counters["heapdrag_serve_sessions_canceled_total"], 1);
    }
}
