//! Space-time integrals: the areas under the reachable and in-use curves.
//!
//! Following Agesen et al. (and §4.1 of the paper), the *reachable
//! integral* is `Σ size·(freed − created)` over all objects and the *in-use
//! integral* is `Σ size·(last_use − created)`; their difference is the
//! total drag. The paper reports these in M Byte².

use crate::record::ObjectRecord;

/// Reachable and in-use space-time integrals for one run, in byte².
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Integrals {
    /// Area under the reachable-size curve.
    pub reachable: u128,
    /// Area under the in-use-size curve.
    pub in_use: u128,
}

impl Integrals {
    /// Computes both integrals from object records.
    pub fn from_records(records: &[ObjectRecord]) -> Self {
        let mut totals = Integrals::default();
        for r in records {
            totals.reachable += r.reachable_product();
            totals.in_use += r.in_use_product();
        }
        totals
    }

    /// Total drag: `reachable − in_use` (byte²).
    pub fn drag(&self) -> u128 {
        self.reachable - self.in_use
    }

    /// Reachable integral in M Byte² (the paper's Table 2/3 unit).
    pub fn reachable_mb2(&self) -> f64 {
        self.reachable as f64 / (1024.0 * 1024.0)
    }

    /// In-use integral in M Byte².
    pub fn in_use_mb2(&self) -> f64 {
        self.in_use as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

    fn record(created: u64, last_use: Option<u64>, freed: u64, size: u64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(0),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(0),
            last_use_site: None,
            at_exit: false,
        }
    }

    #[test]
    fn integrals_sum_products() {
        let records = vec![
            record(0, Some(50), 100, 10),  // reach 1000, in-use 500
            record(20, None, 120, 4),      // reach 400, in-use 0
        ];
        let i = Integrals::from_records(&records);
        assert_eq!(i.reachable, 1400);
        assert_eq!(i.in_use, 500);
        assert_eq!(i.drag(), 900);
    }

    #[test]
    fn reachable_always_at_least_in_use() {
        let records = vec![record(0, Some(100), 100, 8), record(5, Some(7), 9, 8)];
        let i = Integrals::from_records(&records);
        assert!(i.reachable >= i.in_use);
    }

    #[test]
    fn mb2_conversion() {
        let i = Integrals {
            reachable: 1024 * 1024,
            in_use: 0,
        };
        assert!((i.reachable_mb2() - 1.0).abs() < 1e-12);
        assert_eq!(i.in_use_mb2(), 0.0);
    }
}
