//! Trace codecs: the serialisation boundary between the two phases.
//!
//! A phase-1 trace can be written in either of two formats behind the same
//! [`TraceSink`] streaming interface, and every ingest entry point
//! autodetects the format from the first bytes of the input:
//!
//! * **Text** (`heapdrag-log v1`, [`text`]) — the original line-oriented
//!   format: human-readable, greppable, diffable.
//! * **Binary** (HDLOG v2, [`binary`]) — a length-prefixed frame format
//!   (magic header, varint-encoded record/sample/end frames, a per-frame
//!   checksum) that is substantially smaller on disk and faster to decode,
//!   and whose frames shard on length prefixes instead of newline scans.
//!
//! Both formats decode through the single engine in
//! [`crate::log::ingest_log`]: the same strict/salvage semantics, the same
//! `E0xx` error taxonomy, and byte-identical analyzer reports for the same
//! run — for every shard count. The codec-specific pieces are the *scan*
//! (walk the input once on the coordinating thread, batching record
//! payloads into `Chunk`s at line or frame boundaries) and the *chunk
//! decode* (run on worker threads).

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::str::FromStr;
use std::time::Instant;

use heapdrag_vm::ids::ChainId;

use crate::log::LogError;
use crate::parallel::ShardMetrics;
use crate::record::{GcSample, ObjectRecord, RetainRecord};

pub mod binary;
pub mod text;

pub use binary::BinarySink;
pub use text::TextSink;

/// The on-disk encodings of a phase-1 trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum LogFormat {
    /// The line-oriented `heapdrag-log v1` text format.
    #[default]
    Text,
    /// HDLOG v2: length-prefixed binary frames with per-frame checksums.
    Binary,
}

impl LogFormat {
    /// The label used in metric names, footers, and `--log-format` values.
    pub fn name(self) -> &'static str {
        match self {
            LogFormat::Text => "text",
            LogFormat::Binary => "binary",
        }
    }

    /// Detects the format of `input` from its magic bytes: an input
    /// starting with the HDLOG v2 magic ([`binary::MAGIC`]) is binary,
    /// anything else is treated as text (whose own header check rejects
    /// garbage with `E002`). The magic's first byte has the high bit set,
    /// so no UTF-8 text file can ever alias it.
    pub fn detect(input: &[u8]) -> LogFormat {
        if input.starts_with(&binary::MAGIC) {
            LogFormat::Binary
        } else {
            LogFormat::Text
        }
    }
}

impl fmt::Display for LogFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(LogFormat::Text),
            "binary" => Ok(LogFormat::Binary),
            other => Err(format!("unknown log format `{other}` (text|binary)")),
        }
    }
}

/// A streaming encoder for phase-1 traces.
///
/// The profiler's write path drives a sink event by event — header, chain
/// table, one call per record and sample, the end marker last — so a trace
/// streams straight to its writer without ever materialising in memory.
/// [`TextSink`] and [`BinarySink`] implement the two formats;
/// [`crate::log::write_log_to`] drives either from a
/// [`ProfileRun`](crate::profiler::ProfileRun).
pub trait TraceSink {
    /// Writes the format preamble (text header line or binary magic).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn begin(&mut self) -> io::Result<()>;

    /// Writes one chain-name table entry.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn chain(&mut self, id: ChainId, name: &str) -> io::Result<()>;

    /// Writes one object record.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn record(&mut self, record: &ObjectRecord) -> io::Result<()>;

    /// Writes one deep-GC sample.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn sample(&mut self, sample: &GcSample) -> io::Result<()>;

    /// Writes one retaining-path sample (text `retain` line, binary tag-05
    /// frame). Readers that predate the frame skip it per-unit — see the
    /// salvage decision table in [`binary`].
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn retain(&mut self, retain: &RetainRecord) -> io::Result<()>;

    /// Writes the end-of-log marker. Must be called last: its presence is
    /// what certifies the trace complete to the strict parser.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    fn end(&mut self, end_time: u64) -> io::Result<()>;
}

/// Collapses every run of whitespace (including newlines) in a chain name
/// to a single space, so the name survives the text format's
/// whitespace-splitting roundtrip unchanged — which is exactly what makes
/// text-encode→ingest and binary-encode→ingest agree byte for byte.
pub(crate) fn normalize_chain_name(name: &str) -> String {
    name.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// An `io::Write` adapter counting the bytes that pass through it.
pub(crate) struct CountingWriter<W> {
    inner: W,
    written: u64,
}

impl<W: io::Write> CountingWriter<W> {
    pub(crate) fn new(inner: W) -> Self {
        CountingWriter { inner, written: 0 }
    }

    pub(crate) fn written(&self) -> u64 {
        self.written
    }
}

impl<W: io::Write> io::Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// LEB128-encodes `v` into `buf`.
pub(crate) fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint from the front of `bytes`, returning the
/// value and how many bytes it consumed. `None` when the input ends
/// mid-varint or the value overflows a `u64`.
pub(crate) fn read_varint(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return None;
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

/// The per-frame checksum: FNV-1a over the tag byte and the payload,
/// folded to 16 bits. Two bytes per frame buys detection of any single
/// flipped byte (and all but 1/2¹⁶ of larger corruptions) without giving
/// back the size advantage over text.
pub(crate) fn frame_checksum(tag: u8, payload: &[u8]) -> u16 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut h = (OFFSET ^ u32::from(tag)).wrapping_mul(PRIME);
    for &b in payload {
        h = (h ^ u32::from(b)).wrapping_mul(PRIME);
    }
    ((h >> 16) ^ (h & 0xffff)) as u16
}

/// What one chunk worker decoded: the record/sample streams in input
/// order, plus — in salvage mode — everything it had to drop.
#[derive(Debug, Default)]
pub(crate) struct ChunkOut {
    pub(crate) records: Vec<ObjectRecord>,
    pub(crate) samples: Vec<GcSample>,
    pub(crate) retains: Vec<RetainRecord>,
    pub(crate) errors: Vec<LogError>,
    pub(crate) units_dropped: u64,
    pub(crate) bytes_skipped: u64,
}

/// One parse work-unit: a batch of record-bearing lines (text) or frames
/// (binary), cut at line/frame boundaries by the scan so workers never
/// search the input for delimiters.
#[derive(Debug)]
pub(crate) enum Chunk<'a> {
    /// Text `obj`/`gc`/`retain` lines.
    Lines(Vec<text::RawLine<'a>>),
    /// Binary `obj`/`gc`/`retain` frames.
    Frames(Vec<binary::RawFrame<'a>>),
}

impl Chunk<'_> {
    /// Units (lines or frames) in the chunk. Chunks are never empty.
    pub(crate) fn len(&self) -> usize {
        match self {
            Chunk::Lines(lines) => lines.len(),
            Chunk::Frames(frames) => frames.len(),
        }
    }

    /// (line-or-frame number, byte offset) of the chunk's first unit.
    pub(crate) fn first_position(&self) -> (usize, u64) {
        match self {
            Chunk::Lines(lines) => {
                let first = lines.first().expect("chunks are never empty");
                (first.line, first.byte)
            }
            Chunk::Frames(frames) => {
                let first = frames.first().expect("chunks are never empty");
                (first.frame, first.byte)
            }
        }
    }

    /// Total raw bytes covered by the chunk's units.
    pub(crate) fn byte_len(&self) -> u64 {
        match self {
            Chunk::Lines(lines) => lines.iter().map(|l| l.len).sum(),
            Chunk::Frames(frames) => frames.iter().map(|f| f.len).sum(),
        }
    }

    /// Decodes the chunk, timing the decode and counting what it produced.
    pub(crate) fn decode(&self, index: usize, salvage: bool) -> (ChunkOut, ShardMetrics) {
        let t = Instant::now();
        let out = match self {
            Chunk::Lines(lines) => text::parse_chunk(lines, index, salvage),
            Chunk::Frames(frames) => binary::parse_chunk(frames, index, salvage),
        };
        let m = ShardMetrics {
            shard: index,
            records: out.records.len() as u64,
            samples: out.samples.len() as u64,
            groups: 0,
            elapsed: t.elapsed(),
        };
        (out, m)
    }
}

/// One record-bearing line batched by the text [`text::StreamScanner`]:
/// where it sat in the input plus its extent in the owning
/// [`OwnedLines::buf`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct LineMeta {
    /// 1-based line number.
    pub(crate) line: usize,
    /// Byte offset of the line start (in lossy-decoded coordinates, like
    /// the in-memory scan).
    pub(crate) byte: u64,
    /// Raw byte length, terminator included.
    pub(crate) len: u64,
    /// Extent of the line content (terminator excluded) in `buf`.
    pub(crate) start: usize,
    /// One past the end of the line content in `buf`.
    pub(crate) end: usize,
}

/// An owned batch of `obj`/`gc` text lines: the contents are copied into
/// one contiguous buffer so the chunk can cross a channel to a worker
/// thread without borrowing the input, which the streaming reader has
/// already thrown away.
#[derive(Debug, Default)]
pub(crate) struct OwnedLines {
    /// Concatenated line contents, terminators excluded.
    pub(crate) buf: String,
    /// One entry per line, in input order.
    pub(crate) metas: Vec<LineMeta>,
}

/// One record-bearing frame batched by the binary
/// [`binary::StreamScanner`]: the frame envelope plus its payload extent
/// in the owning [`OwnedFrames::buf`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameMeta {
    /// 1-based frame number.
    pub(crate) frame: usize,
    /// Byte offset of the frame start (the tag byte).
    pub(crate) byte: u64,
    /// Total frame length: tag + length prefix + payload + checksum.
    pub(crate) len: u64,
    /// The frame tag.
    pub(crate) tag: u8,
    /// The stored checksum, not yet verified.
    pub(crate) crc: u16,
    /// Extent of the payload in `buf`.
    pub(crate) start: usize,
    /// One past the end of the payload in `buf`.
    pub(crate) end: usize,
}

/// An owned batch of `obj`/`gc` binary frames (payloads only — the
/// envelopes are re-described by the metas).
#[derive(Debug, Default)]
pub(crate) struct OwnedFrames {
    /// Concatenated frame payloads.
    pub(crate) buf: Vec<u8>,
    /// One entry per frame, in input order.
    pub(crate) metas: Vec<FrameMeta>,
}

/// The owned counterpart of [`Chunk`], produced by the incremental
/// scanners behind [`crate::stream`]. Decoding rebuilds the borrowed
/// `RawLine`/`RawFrame` views over the owned buffer and runs the *same*
/// `parse_chunk` as the in-memory path — which is what makes the two
/// paths agree error for error.
#[derive(Debug)]
pub(crate) enum OwnedChunk {
    /// Text `obj`/`gc`/`retain` lines.
    Lines(OwnedLines),
    /// Binary `obj`/`gc`/`retain` frames.
    Frames(OwnedFrames),
}

impl OwnedChunk {
    /// Units (lines or frames) in the chunk. Chunks are never empty.
    pub(crate) fn len(&self) -> usize {
        match self {
            OwnedChunk::Lines(c) => c.metas.len(),
            OwnedChunk::Frames(c) => c.metas.len(),
        }
    }

    /// (line-or-frame number, byte offset) of the chunk's first unit.
    pub(crate) fn first_position(&self) -> (usize, u64) {
        match self {
            OwnedChunk::Lines(c) => {
                let first = c.metas.first().expect("chunks are never empty");
                (first.line, first.byte)
            }
            OwnedChunk::Frames(c) => {
                let first = c.metas.first().expect("chunks are never empty");
                (first.frame, first.byte)
            }
        }
    }

    /// Total raw input bytes covered by the chunk's units. This is what
    /// the buffered-bytes accounting in [`crate::stream`] charges per
    /// chunk; the owned buffer is never larger (terminators and frame
    /// envelopes are not copied).
    pub(crate) fn byte_len(&self) -> u64 {
        match self {
            OwnedChunk::Lines(c) => c.metas.iter().map(|m| m.len).sum(),
            OwnedChunk::Frames(c) => c.metas.iter().map(|m| m.len).sum(),
        }
    }

    /// Decodes the chunk, timing the decode and counting what it
    /// produced; mirrors [`Chunk::decode`] exactly.
    pub(crate) fn decode(&self, index: usize, salvage: bool) -> (ChunkOut, ShardMetrics) {
        let t = Instant::now();
        let out = match self {
            OwnedChunk::Lines(c) => {
                let views: Vec<text::RawLine<'_>> = c
                    .metas
                    .iter()
                    .map(|m| text::RawLine {
                        line: m.line,
                        byte: m.byte,
                        len: m.len,
                        text: &c.buf[m.start..m.end],
                        terminated: true,
                    })
                    .collect();
                text::parse_chunk(&views, index, salvage)
            }
            OwnedChunk::Frames(c) => {
                let views: Vec<binary::RawFrame<'_>> = c
                    .metas
                    .iter()
                    .map(|m| binary::RawFrame {
                        frame: m.frame,
                        byte: m.byte,
                        len: m.len,
                        tag: m.tag,
                        payload: &c.buf[m.start..m.end],
                        crc: m.crc,
                    })
                    .collect();
                binary::parse_chunk(&views, index, salvage)
            }
        };
        let m = ShardMetrics {
            shard: index,
            records: out.records.len() as u64,
            samples: out.samples.len() as u64,
            groups: 0,
            elapsed: t.elapsed(),
        };
        (out, m)
    }
}

/// Shared state accumulated by the incremental scanners
/// ([`text::StreamScanner`], [`binary::StreamScanner`]): the streaming
/// counterpart of [`ScanOutput`], minus the chunks, which are handed off
/// to workers as they fill instead of piling up.
#[derive(Debug)]
pub(crate) struct StreamScanState {
    /// Chain-name table entries seen so far.
    pub(crate) chain_names: HashMap<ChainId, String>,
    /// Value of the `end` marker (0 until seen).
    pub(crate) end_time: u64,
    /// True when the `end` marker was seen.
    pub(crate) saw_end: bool,
    /// Scan-level errors, in input order.
    pub(crate) errors: Vec<LogError>,
    /// Lines/frames dropped by the scan (salvage only).
    pub(crate) units_dropped: u64,
    /// Bytes skipped by those drops (salvage only).
    pub(crate) bytes_skipped: u64,
    /// Where a missing-end-marker error should point; valid after
    /// `finish`.
    pub(crate) next_position: (usize, u64),
    /// Latched by the first scan-level error in strict mode; the reader
    /// should stop feeding (the in-memory scan breaks at the same point).
    pub(crate) aborted: bool,
    salvage: bool,
}

impl StreamScanState {
    pub(crate) fn new(salvage: bool) -> Self {
        StreamScanState {
            chain_names: HashMap::new(),
            end_time: 0,
            saw_end: false,
            errors: Vec::new(),
            units_dropped: 0,
            bytes_skipped: 0,
            next_position: (1, 0),
            aborted: false,
            salvage,
        }
    }

    /// True when decoding in salvage mode.
    pub(crate) fn salvage(&self) -> bool {
        self.salvage
    }

    /// Records a scan-level error over `raw_len` input bytes; mirrors
    /// [`ScanOutput::note`], with the strict-mode abort latched instead
    /// of returned.
    pub(crate) fn note(&mut self, e: LogError, raw_len: u64) {
        self.errors.push(e);
        if self.salvage {
            self.units_dropped += 1;
            self.bytes_skipped += raw_len;
        } else {
            self.aborted = true;
        }
    }
}

/// Everything a codec's scan pass hands back to the shared ingest engine:
/// the record chunks for the worker pool, the shared state parsed in place
/// (chain table, end marker), and the scan-level errors and drop counts.
#[derive(Debug)]
pub(crate) struct ScanOutput<'a> {
    /// Record-bearing chunks, in input order.
    pub(crate) chunks: Vec<Chunk<'a>>,
    /// Chain-name table entries seen by the scan.
    pub(crate) chain_names: HashMap<ChainId, String>,
    /// Value of the `end` marker (0 until seen).
    pub(crate) end_time: u64,
    /// True when the `end` marker was seen.
    pub(crate) saw_end: bool,
    /// Scan-level errors, in input order.
    pub(crate) errors: Vec<LogError>,
    /// Lines/frames dropped by the scan (salvage only).
    pub(crate) units_dropped: u64,
    /// Bytes skipped by those drops (salvage only).
    pub(crate) bytes_skipped: u64,
    /// Where a missing-end-marker error should point: one past the last
    /// unit, at the end of the input.
    pub(crate) next_position: (usize, u64),
}

impl ScanOutput<'_> {
    pub(crate) fn new() -> Self {
        ScanOutput {
            chunks: Vec::new(),
            chain_names: HashMap::new(),
            end_time: 0,
            saw_end: false,
            errors: Vec::new(),
            units_dropped: 0,
            bytes_skipped: 0,
            next_position: (1, 0),
        }
    }

    /// Records a scan-level error over `raw_len` input bytes. Returns true
    /// when the scan must abort (strict mode); in salvage mode the bytes
    /// are counted as dropped and the scan continues.
    pub(crate) fn note(&mut self, e: LogError, raw_len: u64, salvage: bool) -> bool {
        self.errors.push(e);
        if salvage {
            self.units_dropped += 1;
            self.bytes_skipped += raw_len;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_by_magic() {
        assert_eq!(LogFormat::detect(b"heapdrag-log v1\n"), LogFormat::Text);
        assert_eq!(LogFormat::detect(&binary::MAGIC), LogFormat::Binary);
        assert_eq!(LogFormat::detect(b""), LogFormat::Text);
        assert_eq!(LogFormat::detect(&binary::MAGIC[..7]), LogFormat::Text);
        assert_eq!("binary".parse::<LogFormat>(), Ok(LogFormat::Binary));
        assert_eq!("text".parse::<LogFormat>(), Ok(LogFormat::Text));
        assert!("hdlog".parse::<LogFormat>().is_err());
        assert_eq!(LogFormat::Binary.to_string(), "binary");
    }

    #[test]
    fn varint_roundtrips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let (got, used) = read_varint(&buf).expect("decodes");
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
            // Trailing bytes are not consumed.
            buf.push(0xaa);
            assert_eq!(read_varint(&buf), Some((v, buf.len() - 1)));
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        assert_eq!(read_varint(&[]), None);
        assert_eq!(read_varint(&[0x80]), None, "ends mid-varint");
        assert_eq!(read_varint(&[0x80; 10]), None, "never terminates");
        // 11-byte encoding overflows u64.
        let mut over = [0x80u8; 10].to_vec();
        over.push(0x01);
        assert_eq!(read_varint(&over), None);
        // The 10th byte may only contribute one bit.
        let mut max = [0xffu8; 9].to_vec();
        max.push(0x01);
        assert_eq!(read_varint(&max), Some((u64::MAX, 10)));
        let mut too_big = [0xffu8; 9].to_vec();
        too_big.push(0x02);
        assert_eq!(read_varint(&too_big), None);
    }

    #[test]
    fn checksum_detects_single_byte_changes() {
        let payload = b"some frame payload bytes";
        let base = frame_checksum(0x02, payload);
        assert_ne!(base, frame_checksum(0x03, payload), "tag is covered");
        for i in 0..payload.len() {
            let mut altered = payload.to_vec();
            altered[i] ^= 0x40;
            assert_ne!(
                base,
                frame_checksum(0x02, &altered),
                "flip at byte {i} must change the checksum"
            );
        }
    }

    #[test]
    fn chain_names_normalize_for_cross_format_parity() {
        assert_eq!(normalize_chain_name("a  b\nc\t d"), "a b c d");
        assert_eq!(normalize_chain_name("plain"), "plain");
        assert_eq!(normalize_chain_name("  edge  "), "edge");
    }
}
