//! HDLOG v2: the length-prefixed binary trace codec.
//!
//! # Frame grammar
//!
//! ```text
//! file    := MAGIC frame*
//! MAGIC   := 89 48 44 4C 47 32 0D 0A        ; "\x89HDLG2\r\n"
//! frame   := tag varint(payload_len) payload checksum
//! tag     := 01 (chain) | 02 (obj) | 03 (gc) | 04 (end) | 05 (retain)
//! checksum:= u16 LE — FNV-1a32 over tag+payload, folded to 16 bits
//! ```
//!
//! Payloads are LEB128 varints; optional fields are a presence flag
//! (`0` = absent, `1` = present followed by the value):
//!
//! ```text
//! chain  := varint(id) name-bytes           ; name is the rest of the payload
//! obj    := varint(object) varint(class) varint(size) varint(created)
//!           varint(freed - created) opt(last_use - created)
//!           varint(alloc_chain) opt(use_chain) varint(at_exit)
//! gc     := varint(time) varint(reachable_bytes) varint(reachable_count)
//! end    := varint(end_time)
//! retain := varint(alloc_chain) varint(size) varint(time) varint(depth)
//!           varint(truncated) path-bytes    ; path is the rest of the payload
//! ```
//!
//! The two time deltas are *wrapping* differences mod 2^64 — a bijection,
//! so every `u64` round-trips even if a record's `freed` precedes its
//! `created`. They are deltas because an object's lifetime is tiny next to
//! the absolute clock value late in a trace: one or two varint bytes
//! instead of three or four.
//!
//! The magic's first byte has the high bit set, so no UTF-8 text log can
//! alias it — that's what makes [`super::LogFormat::detect`] sound.
//!
//! # Error mapping and salvage
//!
//! The taxonomy is shared with the text codec ([`crate::log::ErrorCode`]);
//! the binary-specific mapping follows from whether *framing* survives the
//! fault:
//!
//! * **Checksum mismatch** (`E011`): the length prefix still walks to the
//!   next frame, so salvage drops just that frame and continues.
//! * **Payload decode failure** (`E004` short payload / `E005` bad or
//!   oversized varint): framing intact — that frame is dropped.
//! * **Unknown tag** (`E003`): the envelope is tag-independent, so if the
//!   length prefix decodes and the whole frame is present, salvage skips
//!   exactly that frame and continues — a reader at this revision walks
//!   cleanly over frames minted by a future one. This mirrors the text
//!   codec, where an unknown directive drops one line.
//! * **Undecodable length prefix** (`E005`): framing is lost and there is
//!   no resync marker, so salvage keeps the intact prefix and drops the
//!   rest of the input as one unit — whatever the tag byte said.
//! * **Truncation mid-frame** (`E007`): the torn write — salvage recovers
//!   every complete frame before the tear, known tag or not.
//!
//! In a [`LogError`] from this codec, `line` is the 1-based *frame* number
//! and `byte` the frame's start offset.

use std::io::{self, Write};

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

use crate::log::{ErrorCode, LogError};
use crate::record::{GcSample, ObjectRecord, RetainRecord};

use super::{
    frame_checksum, normalize_chain_name, read_varint, write_varint, Chunk, ChunkOut, FrameMeta,
    OwnedChunk, OwnedFrames, ScanOutput, StreamScanState, TraceSink,
};

/// The eight magic bytes every HDLOG v2 file starts with.
pub const MAGIC: [u8; 8] = [0x89, b'H', b'D', b'L', b'G', b'2', 0x0D, 0x0A];

/// Frame tag: one chain-name table entry.
pub(crate) const TAG_CHAIN: u8 = 0x01;
/// Frame tag: one object record.
pub(crate) const TAG_OBJ: u8 = 0x02;
/// Frame tag: one deep-GC sample.
pub(crate) const TAG_GC: u8 = 0x03;
/// Frame tag: the end-of-log marker.
pub(crate) const TAG_END: u8 = 0x04;
/// Frame tag: one retaining-path sample.
pub(crate) const TAG_RETAIN: u8 = 0x05;

/// Streams a trace as HDLOG v2 frames to any [`io::Write`].
#[derive(Debug)]
pub struct BinarySink<W> {
    writer: W,
    scratch: Vec<u8>,
}

impl<W: Write> BinarySink<W> {
    /// Wraps `writer` in a binary-format sink.
    pub fn new(writer: W) -> Self {
        BinarySink {
            writer,
            scratch: Vec::with_capacity(64),
        }
    }

    fn frame(&mut self, tag: u8) -> io::Result<()> {
        let mut head = Vec::with_capacity(11);
        head.push(tag);
        write_varint(&mut head, self.scratch.len() as u64);
        self.writer.write_all(&head)?;
        self.writer.write_all(&self.scratch)?;
        let crc = frame_checksum(tag, &self.scratch);
        self.writer.write_all(&crc.to_le_bytes())?;
        self.scratch.clear();
        Ok(())
    }
}

fn push_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => write_varint(buf, 0),
        Some(v) => {
            write_varint(buf, 1);
            write_varint(buf, v);
        }
    }
}

impl<W: Write> TraceSink for BinarySink<W> {
    fn begin(&mut self) -> io::Result<()> {
        self.writer.write_all(&MAGIC)
    }

    fn chain(&mut self, id: ChainId, name: &str) -> io::Result<()> {
        write_varint(&mut self.scratch, u64::from(id.0));
        self.scratch.extend_from_slice(name.as_bytes());
        self.frame(TAG_CHAIN)
    }

    fn record(&mut self, r: &ObjectRecord) -> io::Result<()> {
        write_varint(&mut self.scratch, r.object.0);
        write_varint(&mut self.scratch, u64::from(r.class.0));
        write_varint(&mut self.scratch, r.size);
        write_varint(&mut self.scratch, r.created);
        write_varint(&mut self.scratch, r.freed.wrapping_sub(r.created));
        push_opt(&mut self.scratch, r.last_use.map(|t| t.wrapping_sub(r.created)));
        write_varint(&mut self.scratch, u64::from(r.alloc_site.0));
        push_opt(&mut self.scratch, r.last_use_site.map(|c| u64::from(c.0)));
        write_varint(&mut self.scratch, u64::from(r.at_exit));
        self.frame(TAG_OBJ)
    }

    fn sample(&mut self, s: &GcSample) -> io::Result<()> {
        write_varint(&mut self.scratch, s.time);
        write_varint(&mut self.scratch, s.reachable_bytes);
        write_varint(&mut self.scratch, s.reachable_count);
        self.frame(TAG_GC)
    }

    fn retain(&mut self, r: &RetainRecord) -> io::Result<()> {
        write_varint(&mut self.scratch, u64::from(r.alloc_site.0));
        write_varint(&mut self.scratch, r.size);
        write_varint(&mut self.scratch, r.time);
        write_varint(&mut self.scratch, u64::from(r.depth));
        write_varint(&mut self.scratch, u64::from(r.truncated));
        self.scratch
            .extend_from_slice(normalize_chain_name(&r.path).as_bytes());
        self.frame(TAG_RETAIN)
    }

    fn end(&mut self, end_time: u64) -> io::Result<()> {
        write_varint(&mut self.scratch, end_time);
        self.frame(TAG_END)
    }
}

/// One raw frame with its byte extent, as cut by [`scan`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawFrame<'a> {
    /// 1-based frame number (reported as the error `line`).
    pub(crate) frame: usize,
    /// Byte offset of the frame start (the tag byte).
    pub(crate) byte: u64,
    /// Total frame length: tag + length prefix + payload + checksum.
    pub(crate) len: u64,
    /// The frame tag.
    pub(crate) tag: u8,
    /// The payload bytes (length prefix and checksum stripped).
    pub(crate) payload: &'a [u8],
    /// The stored (little-endian) checksum, not yet verified.
    pub(crate) crc: u16,
}

impl RawFrame<'_> {
    /// Verifies the stored checksum against the tag and payload.
    fn verify(&self) -> Result<(), LogError> {
        let want = frame_checksum(self.tag, self.payload);
        if want == self.crc {
            return Ok(());
        }
        Err(LogError::new(
            ErrorCode::FrameChecksum,
            self.frame,
            format!(
                "frame checksum mismatch (stored {:#06x}, computed {want:#06x})",
                self.crc
            ),
        ))
    }
}

/// A varint reader over one frame payload, mapping failures to the shared
/// taxonomy: an exhausted payload is `E004` (missing field), a broken or
/// overflowing varint — or a value too wide for its field — is `E005`.
struct Fields<'a> {
    payload: &'a [u8],
    pos: usize,
    frame: usize,
}

impl<'a> Fields<'a> {
    fn new(f: &RawFrame<'a>) -> Self {
        Fields {
            payload: f.payload,
            pos: 0,
            frame: f.frame,
        }
    }

    fn u64_field(&mut self, what: &str) -> Result<u64, LogError> {
        if self.pos >= self.payload.len() {
            return Err(LogError::new(
                ErrorCode::MissingField,
                self.frame,
                format!("missing field `{what}`"),
            ));
        }
        match read_varint(&self.payload[self.pos..]) {
            Some((v, used)) => {
                self.pos += used;
                Ok(v)
            }
            None => Err(LogError::new(
                ErrorCode::BadFieldValue,
                self.frame,
                format!("bad varint for `{what}`"),
            )),
        }
    }

    fn u32_field(&mut self, what: &str) -> Result<u32, LogError> {
        let v = self.u64_field(what)?;
        u32::try_from(v).map_err(|_| {
            LogError::new(
                ErrorCode::BadFieldValue,
                self.frame,
                format!("bad value `{v}` for `{what}`"),
            )
        })
    }

    fn opt_field(&mut self, what: &str) -> Result<Option<u64>, LogError> {
        match self.u64_field(what)? {
            0 => Ok(None),
            1 => self.u64_field(what).map(Some),
            flag => Err(LogError::new(
                ErrorCode::BadFieldValue,
                self.frame,
                format!("bad presence flag `{flag}` for `{what}`"),
            )),
        }
    }

    /// The payload must be consumed exactly; trailing bytes are `E005`.
    fn finish(self) -> Result<(), LogError> {
        if self.pos == self.payload.len() {
            return Ok(());
        }
        Err(LogError::new(
            ErrorCode::BadFieldValue,
            self.frame,
            format!(
                "{} trailing payload byte(s) after the last field",
                self.payload.len() - self.pos
            ),
        ))
    }
}

fn decode_obj(f: &RawFrame<'_>) -> Result<ObjectRecord, LogError> {
    let mut p = Fields::new(f);
    let object = ObjectId(p.u64_field("object id")?);
    let class = ClassId(p.u32_field("class id")?);
    let size = p.u64_field("size")?;
    let created = p.u64_field("created")?;
    let record = ObjectRecord {
        object,
        class,
        size,
        created,
        freed: created.wrapping_add(p.u64_field("freed delta")?),
        last_use: p.opt_field("last-use delta")?.map(|d| created.wrapping_add(d)),
        alloc_site: ChainId(p.u32_field("alloc chain")?),
        last_use_site: match p.opt_field("use chain")? {
            None => None,
            Some(v) => Some(ChainId(u32::try_from(v).map_err(|_| {
                LogError::new(
                    ErrorCode::BadFieldValue,
                    f.frame,
                    format!("bad value `{v}` for `use chain`"),
                )
            })?)),
        },
        at_exit: p.u64_field("at-exit flag")? != 0,
    };
    p.finish()?;
    Ok(record)
}

fn decode_gc(f: &RawFrame<'_>) -> Result<GcSample, LogError> {
    let mut p = Fields::new(f);
    let sample = GcSample {
        time: p.u64_field("time")?,
        reachable_bytes: p.u64_field("reachable bytes")?,
        reachable_count: p.u64_field("reachable count")?,
    };
    p.finish()?;
    Ok(sample)
}

fn decode_retain(f: &RawFrame<'_>) -> Result<RetainRecord, LogError> {
    let mut p = Fields::new(f);
    let alloc_site = ChainId(p.u32_field("alloc chain")?);
    let size = p.u64_field("size")?;
    let time = p.u64_field("time")?;
    let depth = p.u32_field("depth")?;
    let truncated = match p.u64_field("truncated flag")? {
        0 => false,
        1 => true,
        flag => {
            return Err(LogError::new(
                ErrorCode::BadFieldValue,
                f.frame,
                format!("bad truncated flag `{flag}`"),
            ))
        }
    };
    let path = normalize_chain_name(&String::from_utf8_lossy(&f.payload[p.pos..]));
    if path.is_empty() {
        return Err(LogError::new(
            ErrorCode::MissingField,
            f.frame,
            "missing field `path`".into(),
        ));
    }
    Ok(RetainRecord {
        alloc_site,
        size,
        time,
        depth,
        truncated,
        path,
    })
}

/// Decodes one chunk of `obj`/`gc`/`retain` frames: per-frame checksum verification
/// first (`E011` on mismatch), then payload decoding. In strict mode the
/// first bad frame ends the chunk; in salvage mode bad frames are dropped
/// and counted, and decoding continues — framing is already settled, so a
/// bad frame never takes its neighbours with it.
pub(crate) fn parse_chunk(frames: &[RawFrame<'_>], chunk: usize, salvage: bool) -> ChunkOut {
    let mut out = ChunkOut::default();
    for f in frames {
        let result = f.verify().and_then(|()| match f.tag {
            TAG_OBJ => decode_obj(f).map(|r| out.records.push(r)),
            TAG_GC => decode_gc(f).map(|s| out.samples.push(s)),
            TAG_RETAIN => decode_retain(f).map(|r| out.retains.push(r)),
            tag => unreachable!("chunked frame {} is not obj/gc/retain: {tag:#04x}", f.frame),
        });
        if let Err(mut e) = result {
            e.byte = f.byte;
            e.chunk = Some(chunk);
            out.errors.push(e);
            if !salvage {
                break;
            }
            out.units_dropped += 1;
            out.bytes_skipped += f.len;
        }
    }
    out
}

/// The binary codec's scan pass: walk the frame stream once on the
/// coordinating thread, hopping from length prefix to length prefix — no
/// delimiter search. `chain`/`end` frames are verified and decoded in
/// place; `obj`/`gc`/`retain` frames are batched into chunks of
/// `chunk_records` frames for the worker pool, checksums deferred to the
/// workers.
///
/// Framing-destroying faults (undecodable length prefix, truncation) end
/// the scan: strict aborts, salvage keeps the intact prefix and counts
/// the remainder as skipped. A complete frame with an unknown tag is
/// skipped frame-by-frame (`E003`) — the envelope still walks. Payload-
/// level faults in `chain`/`end` frames drop just that frame.
pub(crate) fn scan(bytes: &[u8], salvage: bool, chunk_records: usize) -> ScanOutput<'_> {
    let mut out = ScanOutput::new();
    let mut chunks: Vec<Vec<RawFrame<'_>>> = Vec::new();
    let mut current: Vec<RawFrame<'_>> = Vec::new();
    let mut n = 0usize;

    // The caller dispatched here on the magic, but scan() re-checks so it
    // is safe on any byte slice (fuzzed inputs included).
    let mut pos = if bytes.starts_with(&MAGIC) {
        MAGIC.len()
    } else {
        let e = LogError::new(
            ErrorCode::BadHeader,
            1,
            "input does not start with the HDLOG v2 magic".into(),
        );
        out.note(e, bytes.len() as u64, salvage);
        out.next_position = (2, bytes.len() as u64);
        return out;
    };

    while pos < bytes.len() {
        n += 1;
        let start = pos;
        let remaining = (bytes.len() - start) as u64;
        let tag = bytes[start];
        let (payload_len, len_used) = match read_varint(&bytes[start + 1..]) {
            Some(v) => v,
            None => {
                // A varint that dies within 10 available bytes is corrupt;
                // one that runs off the end of the input is a torn write.
                let (code, what) = if bytes.len() - (start + 1) >= 10 {
                    (ErrorCode::BadFieldValue, "corrupt frame length prefix")
                } else {
                    (ErrorCode::TornTail, "input ends inside a frame length prefix")
                };
                let mut e = LogError::new(code, n, format!("{what}; dropping the rest of the input"));
                e.byte = start as u64;
                out.note(e, remaining, salvage);
                break;
            }
        };
        let header = 1 + len_used as u64;
        let frame_total = match payload_len
            .checked_add(header)
            .and_then(|v| v.checked_add(2))
        {
            Some(total) if total <= remaining => total,
            _ => {
                let mut e = LogError::new(
                    ErrorCode::TornTail,
                    n,
                    format!(
                        "input ends inside frame {n} (payload length {payload_len}, {} byte(s) left)",
                        remaining.saturating_sub(header)
                    ),
                );
                e.byte = start as u64;
                out.note(e, remaining, salvage);
                break;
            }
        };
        let payload_start = start + header as usize;
        let payload_end = payload_start + payload_len as usize;
        let frame = RawFrame {
            frame: n,
            byte: start as u64,
            len: frame_total,
            tag,
            payload: &bytes[payload_start..payload_end],
            crc: u16::from_le_bytes([bytes[payload_end], bytes[payload_end + 1]]),
        };
        pos = start + frame_total as usize;

        match tag {
            TAG_OBJ | TAG_GC | TAG_RETAIN => {
                current.push(frame);
                if current.len() >= chunk_records {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            TAG_END => {
                let result = frame.verify().and_then(|()| {
                    let mut p = Fields::new(&frame);
                    let t = p.u64_field("end time")?;
                    p.finish()?;
                    Ok(t)
                });
                match result {
                    Ok(t) => {
                        out.end_time = t;
                        out.saw_end = true;
                    }
                    Err(mut e) => {
                        e.byte = frame.byte;
                        if out.note(e, frame.len, salvage) {
                            break;
                        }
                    }
                }
            }
            TAG_CHAIN => {
                let result = frame.verify().and_then(|()| {
                    let mut p = Fields::new(&frame);
                    let id = p.u32_field("chain id")?;
                    let name = &frame.payload[p.pos..];
                    Ok((id, normalize_chain_name(&String::from_utf8_lossy(name))))
                });
                match result {
                    Ok((id, name)) => {
                        out.chain_names.insert(ChainId(id), name);
                    }
                    Err(mut e) => {
                        e.byte = frame.byte;
                        if out.note(e, frame.len, salvage) {
                            break;
                        }
                    }
                }
            }
            _ => {
                // Unknown tag, but the length prefix walked to the next
                // frame: skip exactly this frame (forward compatibility).
                let mut e = LogError::new(
                    ErrorCode::UnknownDirective,
                    n,
                    format!("unknown frame tag {tag:#04x}; skipping one frame"),
                );
                e.byte = frame.byte;
                if out.note(e, frame.len, salvage) {
                    break;
                }
            }
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    out.chunks = chunks.into_iter().map(Chunk::Frames).collect();
    out.next_position = (n + 1, bytes.len() as u64);
    out
}

/// The largest claimed payload the incremental scanner will buffer while
/// waiting for the rest of a frame. Real frames are tens of bytes; a
/// claim beyond this bound is corruption, and buffering it would let a
/// three-byte length prefix demand gigabytes of memory. Past the bound
/// the scanner stops buffering, counts the remaining input, and reports
/// the frame as a torn tail at end-of-stream. (The one divergence from
/// the in-memory scan: a *legitimate* frame larger than this would have
/// decoded there — no real trace contains one.)
const MAX_BUFFERED_FRAME: u64 = 64 * 1024 * 1024;

/// Why the incremental scanner stopped walking frames before
/// end-of-input.
#[derive(Debug)]
enum StallKind {
    /// Framing lost (corrupt length prefix, missing magic): the error is
    /// already recorded; the remaining input is counted and charged as
    /// skipped at end-of-stream. (An unknown tag no longer lands here —
    /// its frame is skipped individually as long as the envelope walks.)
    Dead { from: u64 },
    /// A frame claimed more than [`MAX_BUFFERED_FRAME`]: reported as a
    /// torn tail at end-of-stream, once the leftover byte count is known.
    OverCap {
        frame: usize,
        start: u64,
        payload_len: u64,
        header: u64,
    },
}

/// The incremental counterpart of [`scan`]: fed arbitrary byte blocks,
/// it walks the frame stream across block boundaries, holding only the
/// current incomplete frame, and replays the exact error classification
/// of the in-memory scan — including the E005-vs-E007 distinction for a
/// length prefix that is corrupt versus merely truncated.
#[derive(Debug)]
pub(crate) struct StreamScanner {
    chunk_records: usize,
    /// Unconsumed bytes: at most one incomplete frame (plus whatever the
    /// last block appended).
    buf: Vec<u8>,
    /// Absolute input offset of `buf[0]`.
    base: u64,
    /// Total bytes fed so far.
    total: u64,
    /// Frames walked so far (including a final failed attempt).
    n: usize,
    checked_magic: bool,
    /// Set on a missing-magic error, which reports `next_position`
    /// differently from the frame walk.
    no_magic: bool,
    stall: Option<StallKind>,
    current: OwnedFrames,
    /// The accumulated shared state; read it after [`Self::finish`].
    pub(crate) state: StreamScanState,
}

impl StreamScanner {
    pub(crate) fn new(salvage: bool, chunk_records: usize) -> Self {
        StreamScanner {
            chunk_records: chunk_records.max(1),
            buf: Vec::new(),
            base: 0,
            total: 0,
            n: 0,
            checked_magic: false,
            no_magic: false,
            stall: None,
            current: OwnedFrames::default(),
            state: StreamScanState::new(salvage),
        }
    }

    /// Bytes currently held by the scanner itself (the incomplete frame
    /// plus the partially-filled chunk), for the peak-memory gauge.
    pub(crate) fn buffered_bytes(&self) -> u64 {
        (self.buf.len() + self.current.buf.len()) as u64
    }

    /// Feeds one block of input; completed chunks are appended to `out`.
    pub(crate) fn feed(&mut self, data: &[u8], out: &mut Vec<OwnedChunk>) {
        self.total += data.len() as u64;
        if self.state.aborted || self.stall.is_some() {
            return; // dead input is only counted, never buffered
        }
        self.buf.extend_from_slice(data);
        self.scan_buf(out);
    }

    /// Signals end-of-input: classifies whatever is left in the buffer,
    /// settles deferred framing-loss byte counts, flushes the partial
    /// chunk, and finalises `next_position`.
    pub(crate) fn finish(&mut self, out: &mut Vec<OwnedChunk>) {
        match self.stall.take() {
            Some(StallKind::Dead { from }) => {
                if self.state.salvage() {
                    self.state.bytes_skipped += self.total - from;
                }
            }
            Some(StallKind::OverCap {
                frame,
                start,
                payload_len,
                header,
            }) => {
                let remaining = self.total - start;
                let mut e = LogError::new(
                    ErrorCode::TornTail,
                    frame,
                    format!(
                        "input ends inside frame {frame} (payload length {payload_len}, {} byte(s) left)",
                        remaining.saturating_sub(header)
                    ),
                );
                e.byte = start;
                self.state.note(e, remaining);
            }
            None => {
                if !self.checked_magic && !self.no_magic && !self.state.aborted {
                    // Input ended before the eight magic bytes.
                    let e = LogError::new(
                        ErrorCode::BadHeader,
                        1,
                        "input does not start with the HDLOG v2 magic".into(),
                    );
                    self.state.note(e, self.total);
                    self.no_magic = true;
                } else if !self.buf.is_empty() && !self.state.aborted {
                    self.classify_tail();
                }
            }
        }
        if !self.current.metas.is_empty() {
            out.push(OwnedChunk::Frames(std::mem::take(&mut self.current)));
        }
        self.state.next_position = if self.no_magic {
            (2, self.total)
        } else {
            (self.n + 1, self.total)
        };
    }

    /// Records a framing-loss error and switches to counting the rest of
    /// the input (strict mode aborts via the latch inside `note`).
    fn framing_lost(&mut self, e: LogError, from: u64) {
        self.state.note(e, 0);
        if !self.state.aborted {
            self.stall = Some(StallKind::Dead { from });
        }
        self.buf.clear();
    }

    fn scan_buf(&mut self, out: &mut Vec<OwnedChunk>) {
        if !self.checked_magic {
            if self.buf.len() < MAGIC.len() {
                return;
            }
            if !self.buf.starts_with(&MAGIC) {
                self.no_magic = true;
                let e = LogError::new(
                    ErrorCode::BadHeader,
                    1,
                    "input does not start with the HDLOG v2 magic".into(),
                );
                self.framing_lost(e, 0);
                return;
            }
            self.checked_magic = true;
            self.buf.drain(..MAGIC.len());
            self.base = MAGIC.len() as u64;
        }
        let mut off = 0usize;
        loop {
            if self.state.aborted || self.stall.is_some() {
                break;
            }
            let avail = self.buf.len() - off;
            if avail == 0 {
                break;
            }
            let start_abs = self.base + off as u64;
            let tag = self.buf[off];
            let (payload_len, len_used) = match read_varint(&self.buf[off + 1..]) {
                Some(v) => v,
                None => {
                    // A varint still undecodable with 10 bytes in hand is
                    // corrupt; with fewer we wait for more input (at EOF,
                    // `classify_tail` calls it a torn write).
                    if avail > 10 {
                        self.n += 1;
                        let mut e = LogError::new(
                            ErrorCode::BadFieldValue,
                            self.n,
                            "corrupt frame length prefix; dropping the rest of the input".into(),
                        );
                        e.byte = start_abs;
                        self.base += self.buf.len() as u64;
                        self.framing_lost(e, start_abs);
                        return;
                    }
                    break;
                }
            };
            let header = 1 + len_used as u64;
            let frame_total = match payload_len
                .checked_add(header)
                .and_then(|v| v.checked_add(2))
            {
                Some(total) if total <= avail as u64 => total,
                Some(total) if total <= MAX_BUFFERED_FRAME => break, // wait for the rest
                _ => {
                    self.n += 1;
                    self.stall = Some(StallKind::OverCap {
                        frame: self.n,
                        start: start_abs,
                        payload_len,
                        header,
                    });
                    self.base += self.buf.len() as u64;
                    self.buf.clear();
                    return;
                }
            };
            self.n += 1;
            let payload_start = off + header as usize;
            let payload_end = payload_start + payload_len as usize;
            let frame = RawFrame {
                frame: self.n,
                byte: start_abs,
                len: frame_total,
                tag,
                payload: &self.buf[payload_start..payload_end],
                crc: u16::from_le_bytes([self.buf[payload_end], self.buf[payload_end + 1]]),
            };
            match tag {
                TAG_OBJ | TAG_GC | TAG_RETAIN => {
                    let start = self.current.buf.len();
                    self.current.buf.extend_from_slice(frame.payload);
                    self.current.metas.push(FrameMeta {
                        frame: self.n,
                        byte: start_abs,
                        len: frame_total,
                        tag,
                        crc: frame.crc,
                        start,
                        end: self.current.buf.len(),
                    });
                    if self.current.metas.len() >= self.chunk_records {
                        out.push(OwnedChunk::Frames(std::mem::take(&mut self.current)));
                    }
                }
                TAG_END => {
                    let result = frame.verify().and_then(|()| {
                        let mut p = Fields::new(&frame);
                        let t = p.u64_field("end time")?;
                        p.finish()?;
                        Ok(t)
                    });
                    match result {
                        Ok(t) => {
                            self.state.end_time = t;
                            self.state.saw_end = true;
                        }
                        Err(mut e) => {
                            e.byte = start_abs;
                            self.state.note(e, frame_total);
                        }
                    }
                }
                TAG_CHAIN => {
                    let result = frame.verify().and_then(|()| {
                        let mut p = Fields::new(&frame);
                        let id = p.u32_field("chain id")?;
                        let name = &frame.payload[p.pos..];
                        Ok((id, normalize_chain_name(&String::from_utf8_lossy(name))))
                    });
                    match result {
                        Ok((id, name)) => {
                            self.state.chain_names.insert(ChainId(id), name);
                        }
                        Err(mut e) => {
                            e.byte = start_abs;
                            self.state.note(e, frame_total);
                        }
                    }
                }
                _ => {
                    // Mirrors the batch scan: a complete frame with an
                    // unknown tag is skipped on its own.
                    let mut e = LogError::new(
                        ErrorCode::UnknownDirective,
                        self.n,
                        format!("unknown frame tag {tag:#04x}; skipping one frame"),
                    );
                    e.byte = start_abs;
                    self.state.note(e, frame_total);
                }
            }
            off += frame_total as usize;
        }
        self.buf.drain(..off);
        self.base += off as u64;
    }

    /// End-of-input reached with a frame still open: the torn-tail
    /// classification of the in-memory scan. (The corrupt-prefix case is
    /// impossible here — `scan_buf` flags it as soon as ten bytes are in
    /// hand.)
    fn classify_tail(&mut self) {
        let start_abs = self.base;
        let remaining = self.total - start_abs;
        self.n += 1;
        let mut e = match read_varint(&self.buf[1..]) {
            None => LogError::new(
                ErrorCode::TornTail,
                self.n,
                "input ends inside a frame length prefix; dropping the rest of the input".into(),
            ),
            Some((payload_len, len_used)) => {
                let header = 1 + len_used as u64;
                LogError::new(
                    ErrorCode::TornTail,
                    self.n,
                    format!(
                        "input ends inside frame {} (payload length {payload_len}, {} byte(s) left)",
                        self.n,
                        remaining.saturating_sub(header)
                    ),
                )
            }
        };
        e.byte = start_abs;
        self.state.note(e, remaining);
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> Vec<u8> {
        let mut buf = Vec::new();
        {
            let mut sink = BinarySink::new(&mut buf);
            sink.begin().unwrap();
            sink.chain(ChainId(0), "Main.main@3 \"big array\"").unwrap();
            sink.record(&ObjectRecord {
                object: ObjectId(1),
                class: ClassId(2),
                size: 816,
                created: 16,
                freed: 900,
                last_use: Some(320),
                alloc_site: ChainId(0),
                last_use_site: Some(ChainId(0)),
                at_exit: false,
            })
            .unwrap();
            sink.record(&ObjectRecord {
                object: ObjectId(2),
                class: ClassId(2),
                size: 24,
                created: 32,
                freed: 1000,
                last_use: None,
                alloc_site: ChainId(0),
                last_use_site: None,
                at_exit: true,
            })
            .unwrap();
            sink.sample(&GcSample {
                time: 500,
                reachable_bytes: 840,
                reachable_count: 2,
            })
            .unwrap();
            sink.retain(&RetainRecord {
                alloc_site: ChainId(0),
                size: 816,
                time: 500,
                depth: 2,
                truncated: false,
                path: "static jess.Engine.debugCache -> [Ljava.lang.Object;".into(),
            })
            .unwrap();
            sink.end(1000).unwrap();
        }
        buf
    }

    fn decode_all(bytes: &[u8], salvage: bool) -> (ScanOutput<'_>, ChunkOut) {
        let scan_out = scan(bytes, salvage, 8192);
        let mut all = ChunkOut::default();
        for (i, chunk) in scan_out.chunks.iter().enumerate() {
            let (out, _) = chunk.decode(i, salvage);
            all.records.extend(out.records);
            all.samples.extend(out.samples);
            all.retains.extend(out.retains);
            all.errors.extend(out.errors);
            all.units_dropped += out.units_dropped;
            all.bytes_skipped += out.bytes_skipped;
        }
        (scan_out, all)
    }

    #[test]
    fn roundtrips_records_samples_and_chains() {
        let bytes = sample_log();
        let (s, out) = decode_all(&bytes, false);
        assert!(s.errors.is_empty());
        assert!(s.saw_end);
        assert_eq!(s.end_time, 1000);
        assert_eq!(s.chain_names[&ChainId(0)], "Main.main@3 \"big array\"");
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.records[0].last_use, Some(320));
        assert_eq!(out.records[1].last_use, None);
        assert!(out.records[1].at_exit);
        assert_eq!(out.retains.len(), 1);
        assert_eq!(out.retains[0].alloc_site, ChainId(0));
        assert_eq!(out.retains[0].size, 816);
        assert_eq!(out.retains[0].depth, 2);
        assert!(!out.retains[0].truncated);
        assert_eq!(
            out.retains[0].path,
            "static jess.Engine.debugCache -> [Ljava.lang.Object;"
        );
        assert!(out.errors.is_empty());
    }

    #[test]
    fn retain_paths_are_normalized_on_write() {
        let mut buf = Vec::new();
        let ragged = RetainRecord {
            alloc_site: ChainId(3),
            size: 1,
            time: u64::MAX,
            depth: u32::MAX,
            truncated: true,
            path: "  static  a.B.c \t->  d.E  ".into(),
        };
        {
            let mut sink = BinarySink::new(&mut buf);
            sink.begin().unwrap();
            sink.retain(&ragged).unwrap();
            sink.end(0).unwrap();
        }
        let (s, out) = decode_all(&buf, false);
        assert!(s.errors.is_empty() && out.errors.is_empty());
        assert_eq!(out.retains.len(), 1);
        assert_eq!(out.retains[0].path, "static a.B.c -> d.E");
        assert_eq!(out.retains[0].time, u64::MAX);
        assert_eq!(out.retains[0].depth, u32::MAX);
        assert!(out.retains[0].truncated);
    }

    #[test]
    fn checksum_mismatch_drops_only_that_frame() {
        let mut bytes = sample_log();
        // The last two bytes are the end frame's checksum; flip a payload
        // byte of the first obj frame instead. Find it: it's the frame
        // after the chain frame. Easier: flip one byte in the middle and
        // verify salvage still returns the other record.
        let scan_clean = scan(&bytes, false, 8192);
        let first_obj_byte = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0].byte as usize,
            _ => unreachable!(),
        };
        drop(scan_clean);
        // Flip a payload byte (skip tag + 1-byte length prefix).
        bytes[first_obj_byte + 2] ^= 0x20;
        let (s, out) = decode_all(&bytes, true);
        assert!(s.errors.is_empty(), "framing is intact");
        assert_eq!(out.records.len(), 1, "one frame dropped, one kept");
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.errors.len(), 1);
        assert_eq!(out.errors[0].code, ErrorCode::FrameChecksum);
        assert_eq!(out.units_dropped, 1);
        // Strict decoding reports the same frame.
        let (_, strict) = decode_all(&bytes, false);
        assert_eq!(strict.errors[0].code, ErrorCode::FrameChecksum);
    }

    #[test]
    fn truncation_recovers_the_intact_prefix() {
        let bytes = sample_log();
        for cut in MAGIC.len() + 1..bytes.len() {
            let (s, out) = decode_all(&bytes[..cut], true);
            // Never panics, never invents data, and a cut strictly inside
            // the stream can't have seen the (final) end frame intact.
            assert!(out.records.len() <= 2);
            assert!(out.samples.len() <= 1);
            assert!(!s.saw_end, "cut at {cut} kept a torn end frame");
        }
        // A cut just before the end frame keeps both records and the
        // sample but loses the end marker.
        let (s, out) = decode_all(&bytes[..bytes.len() - 5], true);
        assert!(!s.saw_end);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.samples.len(), 1);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.errors[0].code, ErrorCode::TornTail);
    }

    #[test]
    fn unknown_tag_skips_one_frame() {
        let mut bytes = sample_log();
        let scan_clean = scan(&bytes, false, 8192);
        let first_obj = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0],
            _ => unreachable!(),
        };
        let (obj_byte, obj_len) = (first_obj.byte as usize, first_obj.len);
        drop(scan_clean);
        bytes[obj_byte] = 0x7f;
        // Salvage: the envelope still walks, so exactly one frame is lost.
        let (s, out) = decode_all(&bytes, true);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.errors[0].code, ErrorCode::UnknownDirective);
        assert_eq!(s.errors[0].byte, obj_byte as u64);
        assert!(s.saw_end, "frames after the bad tag survive");
        assert_eq!(out.records.len(), 1, "only the retagged record is lost");
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.retains.len(), 1);
        assert_eq!(s.units_dropped, 1);
        assert_eq!(s.bytes_skipped, obj_len, "exactly one frame skipped");
        // Strict: the first error still aborts the scan.
        let (s, out) = decode_all(&bytes, false);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.errors[0].code, ErrorCode::UnknownDirective);
        assert!(!s.saw_end);
        assert_eq!(out.records.len(), 0);
    }

    #[test]
    fn future_tag_frame_is_skipped_by_this_reader() {
        // A frame minted by a future writer (tag 0x06, opaque payload)
        // inserted mid-stream: this reader skips it and keeps everything
        // else — the forward-compatibility contract for new frame kinds.
        let bytes = sample_log();
        let scan_clean = scan(&bytes, false, 8192);
        let first_obj_byte = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0].byte as usize,
            _ => unreachable!(),
        };
        drop(scan_clean);
        let mut future = Vec::new();
        future.push(0x06);
        let payload = b"opaque future payload";
        write_varint(&mut future, payload.len() as u64);
        future.extend_from_slice(payload);
        future.extend_from_slice(&frame_checksum(0x06, payload).to_le_bytes());
        let mut spliced = bytes[..first_obj_byte].to_vec();
        spliced.extend_from_slice(&future);
        spliced.extend_from_slice(&bytes[first_obj_byte..]);

        let (s, out) = decode_all(&spliced, true);
        assert_eq!(s.errors.len(), 1);
        assert_eq!(s.errors[0].code, ErrorCode::UnknownDirective);
        assert!(s.errors[0].message.contains("0x06"));
        assert!(s.saw_end);
        assert_eq!(s.end_time, 1000);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.samples.len(), 1);
        assert_eq!(out.retains.len(), 1);
        assert_eq!(s.units_dropped, 1);
        assert_eq!(s.bytes_skipped, future.len() as u64);
        assert!(out.errors.is_empty());
        // And the incremental scanner classifies it identically.
        assert_stream_matches_batch(&spliced, "future tag");
    }

    #[test]
    fn bad_length_prefix_is_classified_by_cause() {
        let bytes = sample_log();
        let scan_clean = scan(&bytes, false, 8192);
        let obj_byte = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0].byte as usize,
            _ => unreachable!(),
        };
        drop(scan_clean);
        // Claim a payload far larger than the input: torn-tail territory.
        let mut huge = bytes[..obj_byte + 1].to_vec();
        huge.extend_from_slice(&[0xff, 0xff, 0x7f]); // ~2 MiB length
        huge.extend_from_slice(&[0u8; 16]);
        let (s, _) = decode_all(&huge, true);
        assert_eq!(s.errors.last().unwrap().code, ErrorCode::TornTail);
        // A length varint that never terminates within 10 bytes: corrupt.
        let mut corrupt = bytes[..obj_byte + 1].to_vec();
        corrupt.extend_from_slice(&[0x80; 12]);
        let (s, _) = decode_all(&corrupt, true);
        assert_eq!(s.errors.last().unwrap().code, ErrorCode::BadFieldValue);
    }

    #[test]
    fn missing_magic_is_a_bad_header() {
        let s = scan(b"heapdrag-log v1\n", false, 8192);
        assert_eq!(s.errors[0].code, ErrorCode::BadHeader);
    }

    /// Runs the incremental scanner over `bytes` in blocks of `feed`
    /// bytes and decodes every chunk it produced.
    fn stream_scan(
        bytes: &[u8],
        salvage: bool,
        chunk_records: usize,
        feed: usize,
    ) -> (StreamScanner, ChunkOut, usize) {
        let mut scanner = StreamScanner::new(salvage, chunk_records);
        let mut chunks: Vec<OwnedChunk> = Vec::new();
        for block in bytes.chunks(feed.max(1)) {
            scanner.feed(block, &mut chunks);
        }
        scanner.finish(&mut chunks);
        let mut all = ChunkOut::default();
        for (i, chunk) in chunks.iter().enumerate() {
            let (out, _) = chunk.decode(i, salvage);
            all.records.extend(out.records);
            all.samples.extend(out.samples);
            all.retains.extend(out.retains);
            all.errors.extend(out.errors);
            all.units_dropped += out.units_dropped;
            all.bytes_skipped += out.bytes_skipped;
        }
        (scanner, all, chunks.len())
    }

    /// Asserts the incremental scanner agrees with the batch scan on
    /// `bytes` for every combination of mode, chunk size, and feed size.
    fn assert_stream_matches_batch(bytes: &[u8], label: &str) {
        for salvage in [false, true] {
            for chunk_records in [1, 3, 8192] {
                let want = scan(bytes, salvage, chunk_records);
                let mut want_out = ChunkOut::default();
                for (i, chunk) in want.chunks.iter().enumerate() {
                    let (out, _) = chunk.decode(i, salvage);
                    want_out.records.extend(out.records);
                    want_out.samples.extend(out.samples);
                    want_out.retains.extend(out.retains);
                    want_out.errors.extend(out.errors);
                    want_out.units_dropped += out.units_dropped;
                    want_out.bytes_skipped += out.bytes_skipped;
                }
                for feed in [1, 2, 3, 7, 64, 4096] {
                    let ctx = format!(
                        "{label}: salvage={salvage} chunk_records={chunk_records} feed={feed}"
                    );
                    let (scanner, got_out, got_chunks) =
                        stream_scan(bytes, salvage, chunk_records, feed);
                    assert_eq!(want.chunks.len(), got_chunks, "{ctx}: chunk count");
                    assert_eq!(want_out.records, got_out.records, "{ctx}: records");
                    assert_eq!(want_out.samples, got_out.samples, "{ctx}: samples");
                    assert_eq!(want_out.retains, got_out.retains, "{ctx}: retains");
                    assert_eq!(want_out.errors, got_out.errors, "{ctx}: chunk errors");
                    assert_eq!(want.errors, scanner.state.errors, "{ctx}: scan errors");
                    if !scanner.state.aborted {
                        assert_eq!(want.chain_names, scanner.state.chain_names, "{ctx}");
                        assert_eq!(want.end_time, scanner.state.end_time, "{ctx}");
                        assert_eq!(want.saw_end, scanner.state.saw_end, "{ctx}");
                        assert_eq!(want.units_dropped, scanner.state.units_dropped, "{ctx}");
                        assert_eq!(want.bytes_skipped, scanner.state.bytes_skipped, "{ctx}");
                        assert_eq!(want.next_position, scanner.state.next_position, "{ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_scan_matches_batch_on_clean_log() {
        assert_stream_matches_batch(&sample_log(), "clean");
    }

    #[test]
    fn incremental_scan_matches_batch_on_truncations() {
        let bytes = sample_log();
        for cut in 0..bytes.len() {
            assert_stream_matches_batch(&bytes[..cut], &format!("cut at {cut}"));
        }
    }

    #[test]
    fn incremental_scan_matches_batch_on_faults() {
        let bytes = sample_log();
        let scan_clean = scan(&bytes, false, 8192);
        let first_obj_byte = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0].byte as usize,
            _ => unreachable!(),
        };
        drop(scan_clean);

        // Unknown tag: framing lost.
        let mut unknown = bytes.clone();
        unknown[first_obj_byte] = 0x7f;
        assert_stream_matches_batch(&unknown, "unknown tag");

        // Flipped payload byte: checksum mismatch, framing intact.
        let mut flipped = bytes.clone();
        flipped[first_obj_byte + 2] ^= 0x20;
        assert_stream_matches_batch(&flipped, "checksum mismatch");

        // Huge claimed payload (fits a varint, exceeds the input).
        let mut huge = bytes[..first_obj_byte + 1].to_vec();
        huge.extend_from_slice(&[0xff, 0xff, 0x7f]); // ~2 MiB length claim
        huge.extend_from_slice(&[0u8; 16]);
        assert_stream_matches_batch(&huge, "huge claim");

        // A length varint that never terminates within 10 bytes.
        let mut corrupt = bytes[..first_obj_byte + 1].to_vec();
        corrupt.extend_from_slice(&[0x80; 12]);
        assert_stream_matches_batch(&corrupt, "corrupt prefix");

        // No magic at all.
        assert_stream_matches_batch(b"heapdrag-log v1\n", "text input");
        assert_stream_matches_batch(b"\x89HDL", "short bad prefix");
    }

    #[test]
    fn over_cap_claim_is_a_torn_tail_without_buffering() {
        // A frame claiming more than MAX_BUFFERED_FRAME: the scanner must
        // not buffer the claim; it reports E007 with the true leftover
        // count once the input ends.
        let bytes = sample_log();
        let scan_clean = scan(&bytes, false, 8192);
        let first_obj_byte = match &scan_clean.chunks[0] {
            Chunk::Frames(frames) => frames[0].byte as usize,
            _ => unreachable!(),
        };
        drop(scan_clean);
        let mut input = bytes[..first_obj_byte + 1].to_vec();
        let mut prefix = Vec::new();
        write_varint(&mut prefix, MAX_BUFFERED_FRAME + 1);
        input.extend_from_slice(&prefix);
        let junk = 100_000usize;
        input.extend_from_slice(&vec![0u8; junk]);

        let (scanner, _, _) = stream_scan(&input, true, 8192, 4096);
        assert!(scanner.buffered_bytes() < 8192, "claim must not be buffered");
        let e = scanner.state.errors.last().unwrap();
        assert_eq!(e.code, ErrorCode::TornTail);
        let left = (prefix.len() + junk) as u64 - prefix.len() as u64 - 1 + 1;
        // left = remaining - header = (1 + prefix + junk) - (1 + prefix)
        assert_eq!(left, junk as u64);
        assert!(
            e.message.contains(&format!("{junk} byte(s) left")),
            "message `{}` must count the true leftover",
            e.message
        );
        // The in-memory scan classifies this identically (the claim also
        // exceeds that input's length).
        let batch = scan(&input, true, 8192);
        assert_eq!(batch.errors.last().unwrap(), e);
    }

    #[test]
    fn option_fields_are_lossless_at_extremes() {
        let mut buf = Vec::new();
        let record = ObjectRecord {
            object: ObjectId(u64::MAX),
            class: ClassId(u32::MAX),
            size: u64::MAX,
            created: 0,
            freed: u64::MAX,
            last_use: Some(u64::MAX),
            alloc_site: ChainId(u32::MAX),
            last_use_site: Some(ChainId(u32::MAX)),
            at_exit: true,
        };
        {
            let mut sink = BinarySink::new(&mut buf);
            sink.begin().unwrap();
            sink.record(&record).unwrap();
            sink.end(u64::MAX).unwrap();
        }
        let (s, out) = decode_all(&buf, false);
        assert_eq!(out.records, vec![record]);
        assert_eq!(s.end_time, u64::MAX);
    }
}
