//! The line-oriented `heapdrag-log v1` text codec.
//!
//! One line per directive, whitespace-separated fields, `-` for absent
//! optional fields:
//!
//! ```text
//! heapdrag-log v1
//! chain 3 Juru.readDocument@12 "new char[]" <- Juru.run@4
//! obj 17 8 816 1024 204800 2048 3 5 0
//! gc 102400 81920 512
//! retain 3 816 102400 2 0 static Juru.cache -> char[]
//! end 1048576
//! ```
//!
//! A `retain` line is `retain <alloc-chain> <size> <time> <depth>
//! <truncated 0|1> <path...>` — the path is the rest of the line,
//! whitespace-normalized on both write and read.
//!
//! `scan` is the codec's half of the ingest engine: it walks the input
//! once, parses the header/`chain`/`end` directives in place, and batches
//! `obj`/`gc`/`retain` lines into `Chunk`s for the worker pool.
//! [`TextSink`] is the streaming encoder. See [`crate::log`] for the
//! strict/salvage semantics shared with the binary codec.

use std::io::{self, Write};

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

use crate::log::{ErrorCode, LogError};
use crate::record::{GcSample, ObjectRecord, RetainRecord};

use super::{
    normalize_chain_name, Chunk, ChunkOut, LineMeta, OwnedChunk, OwnedLines, ScanOutput,
    StreamScanState, TraceSink,
};

/// The line-1 header every v1 text log starts with.
pub const TEXT_HEADER: &str = "heapdrag-log v1";

/// Streams a trace in the text format to any [`io::Write`].
#[derive(Debug)]
pub struct TextSink<W> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// Wraps `writer` in a text-format sink.
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        writeln!(self.writer, "{TEXT_HEADER}")
    }

    fn chain(&mut self, id: ChainId, name: &str) -> io::Result<()> {
        writeln!(self.writer, "chain {} {}", id.0, name)
    }

    fn record(&mut self, r: &ObjectRecord) -> io::Result<()> {
        writeln!(
            self.writer,
            "obj {} {} {} {} {} {} {} {} {}",
            r.object.0,
            r.class.0,
            r.size,
            r.created,
            r.freed,
            r.last_use.map_or("-".to_string(), |t| t.to_string()),
            r.alloc_site.0,
            r.last_use_site.map_or("-".to_string(), |c| c.0.to_string()),
            r.at_exit as u8,
        )
    }

    fn sample(&mut self, s: &GcSample) -> io::Result<()> {
        writeln!(
            self.writer,
            "gc {} {} {}",
            s.time, s.reachable_bytes, s.reachable_count
        )
    }

    fn retain(&mut self, r: &RetainRecord) -> io::Result<()> {
        writeln!(
            self.writer,
            "retain {} {} {} {} {} {}",
            r.alloc_site.0,
            r.size,
            r.time,
            r.depth,
            r.truncated as u8,
            normalize_chain_name(&r.path),
        )
    }

    fn end(&mut self, end_time: u64) -> io::Result<()> {
        writeln!(self.writer, "end {end_time}")
    }
}

/// One raw input line with its byte extent, as produced by [`SplitLines`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawLine<'a> {
    /// 1-based line number.
    pub(crate) line: usize,
    /// Byte offset of the line start.
    pub(crate) byte: u64,
    /// Raw byte length, terminator included when present.
    pub(crate) len: u64,
    /// Line content, terminator excluded.
    pub(crate) text: &'a str,
    /// False only for a final line with no `\n` — a torn write.
    pub(crate) terminated: bool,
}

/// Like `str::lines`, but tracking byte offsets and whether each line was
/// terminated, so torn tails are detectable and skipped bytes countable.
struct SplitLines<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> SplitLines<'a> {
    fn new(text: &'a str) -> Self {
        SplitLines { text, pos: 0, line: 0 }
    }
}

impl<'a> Iterator for SplitLines<'a> {
    type Item = RawLine<'a>;

    fn next(&mut self) -> Option<RawLine<'a>> {
        if self.pos >= self.text.len() {
            return None;
        }
        let start = self.pos;
        let rest = &self.text[start..];
        let (content, len, terminated) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1, true),
            None => (rest, rest.len(), false),
        };
        self.pos = start + len;
        self.line += 1;
        Some(RawLine {
            line: self.line,
            byte: start as u64,
            len: len as u64,
            text: content,
            terminated,
        })
    }
}

fn field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, LogError> {
    let word = parts.next().ok_or_else(|| {
        LogError::new(
            ErrorCode::MissingField,
            line,
            format!("missing field `{what}`"),
        )
    })?;
    word.parse().map_err(|_| {
        LogError::new(
            ErrorCode::BadFieldValue,
            line,
            format!("bad value `{word}` for `{what}`"),
        )
    })
}

fn opt_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<Option<T>, LogError> {
    let word = parts.next().ok_or_else(|| {
        LogError::new(
            ErrorCode::MissingField,
            line,
            format!("missing field `{what}`"),
        )
    })?;
    if word == "-" {
        return Ok(None);
    }
    word.parse().map(Some).map_err(|_| {
        LogError::new(
            ErrorCode::BadFieldValue,
            line,
            format!("bad value `{word}` for `{what}`"),
        )
    })
}

/// Parses one `obj` line body (after the directive word).
fn parse_obj<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<ObjectRecord, LogError> {
    let object = ObjectId(field(parts, n, "object id")?);
    let class = ClassId(field(parts, n, "class id")?);
    let size = field(parts, n, "size")?;
    let created = field(parts, n, "created")?;
    let freed = field(parts, n, "freed")?;
    let last_use = opt_field(parts, n, "last use")?;
    let alloc_site = ChainId(field(parts, n, "alloc chain")?);
    let last_use_site = opt_field::<u32>(parts, n, "use chain")?.map(ChainId);
    let at_exit: u8 = field(parts, n, "at-exit flag")?;
    Ok(ObjectRecord {
        object,
        class,
        size,
        created,
        freed,
        last_use,
        alloc_site,
        last_use_site,
        at_exit: at_exit != 0,
    })
}

/// Parses one `gc` line body (after the directive word).
fn parse_gc<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<GcSample, LogError> {
    Ok(GcSample {
        time: field(parts, n, "time")?,
        reachable_bytes: field(parts, n, "reachable bytes")?,
        reachable_count: field(parts, n, "reachable count")?,
    })
}

/// Parses one `retain` line body (after the directive word). The path is
/// the rest of the line, re-joined with single spaces — the same
/// normalization the sink applies on write.
fn parse_retain<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<RetainRecord, LogError> {
    let alloc_site = ChainId(field(parts, n, "alloc chain")?);
    let size = field(parts, n, "size")?;
    let time = field(parts, n, "time")?;
    let depth = field(parts, n, "depth")?;
    let truncated = match field::<u8>(parts, n, "truncated flag")? {
        0 => false,
        1 => true,
        flag => {
            return Err(LogError::new(
                ErrorCode::BadFieldValue,
                n,
                format!("bad truncated flag `{flag}`"),
            ))
        }
    };
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() {
        return Err(LogError::new(
            ErrorCode::MissingField,
            n,
            "missing field `path`".into(),
        ));
    }
    Ok(RetainRecord {
        alloc_site,
        size,
        time,
        depth,
        truncated,
        path: rest.join(" "),
    })
}

/// Decodes one chunk of `obj`/`gc`/`retain` lines. In strict mode the
/// first bad line ends the chunk (the sequential scan would stop there
/// too); in salvage mode bad lines are dropped and counted, and decoding
/// continues.
pub(crate) fn parse_chunk(lines: &[RawLine<'_>], chunk: usize, salvage: bool) -> ChunkOut {
    let mut out = ChunkOut::default();
    for raw in lines {
        let mut parts = raw.text.split_whitespace();
        let result = match parts.next() {
            Some("obj") => parse_obj(&mut parts, raw.line).map(|r| out.records.push(r)),
            Some("gc") => parse_gc(&mut parts, raw.line).map(|s| out.samples.push(s)),
            Some("retain") => parse_retain(&mut parts, raw.line).map(|r| out.retains.push(r)),
            other => unreachable!("chunked line {} is not obj/gc/retain: {other:?}", raw.line),
        };
        if let Err(mut e) = result {
            e.byte = raw.byte;
            e.chunk = Some(chunk);
            out.errors.push(e);
            if !salvage {
                break;
            }
            out.units_dropped += 1;
            out.bytes_skipped += raw.len;
        }
    }
    out
}

/// The text codec's scan pass: one walk over the input on the
/// coordinating thread. The header and the `end`/`chain` directives are
/// parsed in place (they are rare and carry shared state), while
/// `obj`/`gc`/`retain` lines — the bulk of a trace — are batched into
/// chunks of `chunk_records` lines for the worker pool. In strict mode the scan
/// aborts at the first scan-level error; in salvage mode bad lines are
/// dropped and counted.
pub(crate) fn scan(text: &str, salvage: bool, chunk_records: usize) -> ScanOutput<'_> {
    let mut out = ScanOutput::new();
    let mut chunks: Vec<Vec<RawLine<'_>>> = Vec::new();
    let mut current: Vec<RawLine<'_>> = Vec::new();
    let mut last_line = 0;

    for raw in SplitLines::new(text) {
        last_line = raw.line;
        // A torn tail can only be the final line; drop or abort on it.
        if !raw.terminated {
            let mut e = LogError::new(
                ErrorCode::TornTail,
                raw.line,
                "unterminated final line (torn write)".into(),
            );
            e.byte = raw.byte;
            if out.note(e, raw.len, salvage) {
                break;
            }
            continue;
        }
        let content = raw.text.trim();
        if raw.line == 1 {
            if content == TEXT_HEADER {
                continue;
            }
            let mut e = LogError::new(
                ErrorCode::BadHeader,
                raw.line,
                format!("unrecognised header `{content}`"),
            );
            e.byte = raw.byte;
            if out.note(e, raw.len, salvage) {
                break;
            }
            continue;
        }
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("end") => match field(&mut parts, raw.line, "end time") {
                Ok(t) => {
                    out.end_time = t;
                    out.saw_end = true;
                }
                Err(mut e) => {
                    e.byte = raw.byte;
                    if out.note(e, raw.len, salvage) {
                        break;
                    }
                }
            },
            Some("chain") => match field::<u32>(&mut parts, raw.line, "chain id") {
                Ok(id) => {
                    let rest: Vec<&str> = parts.collect();
                    out.chain_names.insert(ChainId(id), rest.join(" "));
                }
                Err(mut e) => {
                    e.byte = raw.byte;
                    if out.note(e, raw.len, salvage) {
                        break;
                    }
                }
            },
            Some("obj") | Some("gc") | Some("retain") => {
                current.push(raw);
                if current.len() >= chunk_records {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            Some(other) => {
                let mut e = LogError::new(
                    ErrorCode::UnknownDirective,
                    raw.line,
                    format!("unknown directive `{other}`"),
                );
                e.byte = raw.byte;
                if out.note(e, raw.len, salvage) {
                    break;
                }
            }
            None => {}
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    out.chunks = chunks.into_iter().map(Chunk::Lines).collect();
    out.next_position = (last_line + 1, text.len() as u64);
    out
}

/// The incremental counterpart of [`scan`]: fed arbitrary byte blocks
/// (however a reader happens to split them), it cuts at raw `\n` bytes,
/// lossy-decodes each line on its own, and replays the exact per-line
/// decision ladder of the in-memory scan. Cutting on raw `0x0A` before
/// decoding is sound because `0x0A` never occurs inside a multi-byte
/// UTF-8 sequence and always terminates an invalid run, so per-line lossy
/// decoding concatenates to exactly the whole-input lossy decoding — line
/// numbers and (lossy) byte offsets match the in-memory scan bit for bit.
#[derive(Debug)]
pub(crate) struct StreamScanner {
    chunk_records: usize,
    /// Raw bytes of the current, incomplete line.
    carry: Vec<u8>,
    /// Lines processed so far.
    line: usize,
    /// Cumulative lossy-decoded length, i.e. the byte offset (in
    /// in-memory-scan coordinates) of the next line.
    lossy_pos: u64,
    current: OwnedLines,
    /// The accumulated shared state; read it after [`Self::finish`].
    pub(crate) state: StreamScanState,
}

impl StreamScanner {
    pub(crate) fn new(salvage: bool, chunk_records: usize) -> Self {
        StreamScanner {
            chunk_records: chunk_records.max(1),
            carry: Vec::new(),
            line: 0,
            lossy_pos: 0,
            current: OwnedLines::default(),
            state: StreamScanState::new(salvage),
        }
    }

    /// Bytes currently held by the scanner itself (the torn-line carry
    /// plus the partially-filled chunk), for the peak-memory gauge.
    pub(crate) fn buffered_bytes(&self) -> u64 {
        (self.carry.len() + self.current.buf.len()) as u64
    }

    /// Feeds one block of input; completed chunks are appended to `out`.
    /// After a strict-mode error the scanner ignores further input (the
    /// in-memory scan breaks at the same line).
    pub(crate) fn feed(&mut self, data: &[u8], out: &mut Vec<OwnedChunk>) {
        if self.state.aborted {
            return;
        }
        let mut rest = data;
        if !self.carry.is_empty() {
            match rest.iter().position(|&b| b == b'\n') {
                None => {
                    self.carry.extend_from_slice(rest);
                    return;
                }
                Some(i) => {
                    self.carry.extend_from_slice(&rest[..i]);
                    let line = std::mem::take(&mut self.carry);
                    self.process_line(&line, true, out);
                    rest = &rest[i + 1..];
                }
            }
        }
        while let Some(i) = rest.iter().position(|&b| b == b'\n') {
            if self.state.aborted {
                return;
            }
            self.process_line(&rest[..i], true, out);
            rest = &rest[i + 1..];
        }
        if !rest.is_empty() && !self.state.aborted {
            self.carry.extend_from_slice(rest);
        }
    }

    /// Signals end-of-input: classifies a torn tail, flushes the partial
    /// chunk, and finalises `next_position`.
    pub(crate) fn finish(&mut self, out: &mut Vec<OwnedChunk>) {
        if !self.state.aborted && !self.carry.is_empty() {
            let line = std::mem::take(&mut self.carry);
            self.process_line(&line, false, out);
        }
        if !self.current.metas.is_empty() {
            out.push(OwnedChunk::Lines(std::mem::take(&mut self.current)));
        }
        self.state.next_position = (self.line + 1, self.lossy_pos);
    }

    fn process_line(&mut self, raw: &[u8], terminated: bool, out: &mut Vec<OwnedChunk>) {
        self.line += 1;
        let n = self.line;
        let content = String::from_utf8_lossy(raw);
        let len = content.len() as u64 + u64::from(terminated);
        let byte = self.lossy_pos;
        self.lossy_pos += len;
        if !terminated {
            let mut e = LogError::new(
                ErrorCode::TornTail,
                n,
                "unterminated final line (torn write)".into(),
            );
            e.byte = byte;
            self.state.note(e, len);
            return;
        }
        let trimmed = content.trim();
        if n == 1 {
            if trimmed == TEXT_HEADER {
                return;
            }
            let mut e = LogError::new(
                ErrorCode::BadHeader,
                n,
                format!("unrecognised header `{trimmed}`"),
            );
            e.byte = byte;
            self.state.note(e, len);
            return;
        }
        if trimmed.is_empty() {
            return;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("end") => match field(&mut parts, n, "end time") {
                Ok(t) => {
                    self.state.end_time = t;
                    self.state.saw_end = true;
                }
                Err(mut e) => {
                    e.byte = byte;
                    self.state.note(e, len);
                }
            },
            Some("chain") => match field::<u32>(&mut parts, n, "chain id") {
                Ok(id) => {
                    let rest: Vec<&str> = parts.collect();
                    self.state.chain_names.insert(ChainId(id), rest.join(" "));
                }
                Err(mut e) => {
                    e.byte = byte;
                    self.state.note(e, len);
                }
            },
            Some("obj") | Some("gc") | Some("retain") => {
                let start = self.current.buf.len();
                self.current.buf.push_str(&content);
                self.current.metas.push(LineMeta {
                    line: n,
                    byte,
                    len,
                    start,
                    end: self.current.buf.len(),
                });
                if self.current.metas.len() >= self.chunk_records {
                    out.push(OwnedChunk::Lines(std::mem::take(&mut self.current)));
                }
            }
            Some(other) => {
                let mut e = LogError::new(
                    ErrorCode::UnknownDirective,
                    n,
                    format!("unknown directive `{other}`"),
                );
                e.byte = byte;
                self.state.note(e, len);
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::OwnedChunk;

    /// Decodes every chunk of a batch scan, in order.
    fn batch_outs(scan_out: &ScanOutput<'_>, salvage: bool) -> Vec<ChunkOut> {
        scan_out
            .chunks
            .iter()
            .enumerate()
            .map(|(i, c)| c.decode(i, salvage).0)
            .collect()
    }

    /// Runs the incremental scanner over `bytes` in blocks of `feed`
    /// bytes and decodes every chunk it produced.
    fn stream_scan(
        bytes: &[u8],
        salvage: bool,
        chunk_records: usize,
        feed: usize,
    ) -> (StreamScanner, Vec<ChunkOut>) {
        let mut scanner = StreamScanner::new(salvage, chunk_records);
        let mut chunks: Vec<OwnedChunk> = Vec::new();
        for block in bytes.chunks(feed.max(1)) {
            scanner.feed(block, &mut chunks);
        }
        scanner.finish(&mut chunks);
        let outs = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| c.decode(i, salvage).0)
            .collect();
        (scanner, outs)
    }

    fn assert_same_out(a: &ChunkOut, b: &ChunkOut, ctx: &str) {
        assert_eq!(a.records, b.records, "{ctx}: records");
        assert_eq!(a.samples, b.samples, "{ctx}: samples");
        assert_eq!(a.retains, b.retains, "{ctx}: retains");
        assert_eq!(a.errors, b.errors, "{ctx}: errors");
        assert_eq!(a.units_dropped, b.units_dropped, "{ctx}: units_dropped");
        assert_eq!(a.bytes_skipped, b.bytes_skipped, "{ctx}: bytes_skipped");
    }

    /// Asserts the incremental scanner agrees with the batch scan on
    /// `bytes` for every combination of mode, chunk size, and feed size.
    fn assert_stream_matches_batch(bytes: &[u8], label: &str) {
        let text = String::from_utf8_lossy(bytes).into_owned();
        for salvage in [false, true] {
            for chunk_records in [1, 3, 8192] {
                let want = scan(&text, salvage, chunk_records);
                let want_outs = batch_outs(&want, salvage);
                for feed in [1, 2, 3, 7, 64, 4096] {
                    let ctx = format!(
                        "{label}: salvage={salvage} chunk_records={chunk_records} feed={feed}"
                    );
                    let (scanner, got_outs) = stream_scan(bytes, salvage, chunk_records, feed);
                    assert_eq!(want_outs.len(), got_outs.len(), "{ctx}: chunk count");
                    for (i, (a, b)) in want_outs.iter().zip(&got_outs).enumerate() {
                        assert_same_out(a, b, &format!("{ctx}: chunk {i}"));
                    }
                    assert_eq!(want.errors, scanner.state.errors, "{ctx}: scan errors");
                    if !scanner.state.aborted {
                        assert_eq!(want.chain_names, scanner.state.chain_names, "{ctx}");
                        assert_eq!(want.end_time, scanner.state.end_time, "{ctx}");
                        assert_eq!(want.saw_end, scanner.state.saw_end, "{ctx}");
                        assert_eq!(want.units_dropped, scanner.state.units_dropped, "{ctx}");
                        assert_eq!(want.bytes_skipped, scanner.state.bytes_skipped, "{ctx}");
                        assert_eq!(want.next_position, scanner.state.next_position, "{ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_scan_matches_batch_on_clean_log() {
        let log = "heapdrag-log v1\n\
                   chain 0 Main.main@3 \"big array\"\n\
                   chain 1 Main.run@9\n\
                   obj 1 2 816 16 900 320 0 1 0\n\
                   obj 2 2 24 32 1000 - 1 - 1\n\
                   gc 500 840 2\n\
                   retain 0 816 500 2 0 static Main.cache -> char[]\n\
                   end 1000\n";
        assert_stream_matches_batch(log.as_bytes(), "clean");
    }

    #[test]
    fn retain_lines_roundtrip_and_normalize() {
        let record = RetainRecord {
            alloc_site: ChainId(7),
            size: 4096,
            time: 123456,
            depth: 3,
            truncated: true,
            path: "  static a.B.c  ->   d.E[3] ".into(),
        };
        let mut buf = Vec::new();
        {
            let mut sink = TextSink::new(&mut buf);
            sink.begin().unwrap();
            sink.retain(&record).unwrap();
            sink.end(200000).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("retain 7 4096 123456 3 1 static a.B.c -> d.E[3]\n"));
        let s = scan(&text, false, 8192);
        assert!(s.errors.is_empty());
        let (out, _) = s.chunks[0].decode(0, false);
        assert!(out.errors.is_empty());
        assert_eq!(out.retains.len(), 1);
        assert_eq!(
            out.retains[0],
            RetainRecord {
                path: "static a.B.c -> d.E[3]".into(),
                ..record
            }
        );
    }

    #[test]
    fn retain_line_faults_are_classified() {
        // Bad truncated flag → E005; missing path → E004; both survive
        // salvage without taking neighbours.
        let log = "heapdrag-log v1\n\
                   retain 0 816 500 2 9 static Main.cache\n\
                   retain 0 816 500 2 0\n\
                   retain 0 24 600 1 1 static Main.pool -> int[]\n\
                   end 1000\n";
        let s = scan(log, true, 8192);
        assert!(s.errors.is_empty());
        let (out, _) = s.chunks[0].decode(0, true);
        assert_eq!(out.errors.len(), 2);
        assert_eq!(out.errors[0].code, ErrorCode::BadFieldValue);
        assert_eq!(out.errors[1].code, ErrorCode::MissingField);
        assert_eq!(out.retains.len(), 1);
        assert!(out.retains[0].truncated);
        assert_eq!(out.units_dropped, 2);
        assert_stream_matches_batch(log.as_bytes(), "retain faults");
    }

    #[test]
    fn incremental_scan_matches_batch_on_faults() {
        let cases: &[(&str, &str)] = &[
            ("torn tail", "heapdrag-log v1\nobj 1 2 816 16 900 320 0 1 0\ngc 500 840"),
            ("bad header", "not a heapdrag log\nobj 1 2 816 16 900 320 0 1 0\nend 9\n"),
            ("unknown directive", "heapdrag-log v1\nwat 1 2 3\nobj 1 2 816 16 900 320 0 1 0\nend 9\n"),
            ("bad end value", "heapdrag-log v1\nobj 1 2 816 16 900 320 0 1 0\nend soon\n"),
            ("bad chain id", "heapdrag-log v1\nchain x Main.main@3\nend 9\n"),
            ("blank lines", "heapdrag-log v1\n\n  \nobj 1 2 816 16 900 320 0 1 0\n\nend 9\n"),
            ("missing end", "heapdrag-log v1\nobj 1 2 816 16 900 320 0 1 0\n"),
            ("bad obj field", "heapdrag-log v1\nobj 1 2 many 16 900 320 0 1 0\ngc 500 840 2\nend 9\n"),
            ("torn header", "heapdrag-log"),
            ("only header", "heapdrag-log v1\n"),
        ];
        for (label, log) in cases {
            assert_stream_matches_batch(log.as_bytes(), label);
        }
    }

    #[test]
    fn incremental_scan_matches_batch_on_invalid_utf8() {
        // Invalid UTF-8 inside a chain name and inside an obj line: the
        // per-line lossy decode must agree with the whole-input lossy
        // decode, offsets included.
        let mut log = b"heapdrag-log v1\nchain 0 Ma\xffin.m\xc3\x28ain@3\n".to_vec();
        log.extend_from_slice(b"obj 1 2 816 16 900 320 \xf0\x9f 0 1 0\n");
        log.extend_from_slice(b"obj 2 2 24 32 1000 - 0 - 1\nend 1000\n");
        assert_stream_matches_batch(&log, "invalid utf8");
    }

    #[test]
    fn scanner_buffered_bytes_tracks_carry_and_partial_chunk() {
        let mut scanner = StreamScanner::new(false, 8192);
        let mut out = Vec::new();
        scanner.feed(b"heapdrag-log v1\nobj 1 2 816 16 900 320 0 1 0\npartial", &mut out);
        assert!(out.is_empty());
        // The obj line sits in the partial chunk, "partial" in the carry.
        assert_eq!(
            scanner.buffered_bytes(),
            ("obj 1 2 816 16 900 320 0 1 0".len() + "partial".len()) as u64
        );
    }
}
