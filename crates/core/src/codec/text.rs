//! The line-oriented `heapdrag-log v1` text codec.
//!
//! One line per directive, whitespace-separated fields, `-` for absent
//! optional fields:
//!
//! ```text
//! heapdrag-log v1
//! chain 3 Juru.readDocument@12 "new char[]" <- Juru.run@4
//! obj 17 8 816 1024 204800 2048 3 5 0
//! gc 102400 81920 512
//! end 1048576
//! ```
//!
//! `scan` is the codec's half of the ingest engine: it walks the input
//! once, parses the header/`chain`/`end` directives in place, and batches
//! `obj`/`gc` lines into `Chunk`s for the worker pool. [`TextSink`] is
//! the streaming encoder. See [`crate::log`] for the strict/salvage
//! semantics shared with the binary codec.

use std::io::{self, Write};

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

use crate::log::{ErrorCode, LogError};
use crate::record::{GcSample, ObjectRecord};

use super::{Chunk, ChunkOut, ScanOutput, TraceSink};

/// The line-1 header every v1 text log starts with.
pub const TEXT_HEADER: &str = "heapdrag-log v1";

/// Streams a trace in the text format to any [`io::Write`].
#[derive(Debug)]
pub struct TextSink<W> {
    writer: W,
}

impl<W: Write> TextSink<W> {
    /// Wraps `writer` in a text-format sink.
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }
}

impl<W: Write> TraceSink for TextSink<W> {
    fn begin(&mut self) -> io::Result<()> {
        writeln!(self.writer, "{TEXT_HEADER}")
    }

    fn chain(&mut self, id: ChainId, name: &str) -> io::Result<()> {
        writeln!(self.writer, "chain {} {}", id.0, name)
    }

    fn record(&mut self, r: &ObjectRecord) -> io::Result<()> {
        writeln!(
            self.writer,
            "obj {} {} {} {} {} {} {} {} {}",
            r.object.0,
            r.class.0,
            r.size,
            r.created,
            r.freed,
            r.last_use.map_or("-".to_string(), |t| t.to_string()),
            r.alloc_site.0,
            r.last_use_site.map_or("-".to_string(), |c| c.0.to_string()),
            r.at_exit as u8,
        )
    }

    fn sample(&mut self, s: &GcSample) -> io::Result<()> {
        writeln!(
            self.writer,
            "gc {} {} {}",
            s.time, s.reachable_bytes, s.reachable_count
        )
    }

    fn end(&mut self, end_time: u64) -> io::Result<()> {
        writeln!(self.writer, "end {end_time}")
    }
}

/// One raw input line with its byte extent, as produced by [`SplitLines`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawLine<'a> {
    /// 1-based line number.
    pub(crate) line: usize,
    /// Byte offset of the line start.
    pub(crate) byte: u64,
    /// Raw byte length, terminator included when present.
    pub(crate) len: u64,
    /// Line content, terminator excluded.
    pub(crate) text: &'a str,
    /// False only for a final line with no `\n` — a torn write.
    pub(crate) terminated: bool,
}

/// Like `str::lines`, but tracking byte offsets and whether each line was
/// terminated, so torn tails are detectable and skipped bytes countable.
struct SplitLines<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> SplitLines<'a> {
    fn new(text: &'a str) -> Self {
        SplitLines { text, pos: 0, line: 0 }
    }
}

impl<'a> Iterator for SplitLines<'a> {
    type Item = RawLine<'a>;

    fn next(&mut self) -> Option<RawLine<'a>> {
        if self.pos >= self.text.len() {
            return None;
        }
        let start = self.pos;
        let rest = &self.text[start..];
        let (content, len, terminated) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1, true),
            None => (rest, rest.len(), false),
        };
        self.pos = start + len;
        self.line += 1;
        Some(RawLine {
            line: self.line,
            byte: start as u64,
            len: len as u64,
            text: content,
            terminated,
        })
    }
}

fn field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<T, LogError> {
    let word = parts.next().ok_or_else(|| {
        LogError::new(
            ErrorCode::MissingField,
            line,
            format!("missing field `{what}`"),
        )
    })?;
    word.parse().map_err(|_| {
        LogError::new(
            ErrorCode::BadFieldValue,
            line,
            format!("bad value `{word}` for `{what}`"),
        )
    })
}

fn opt_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<Option<T>, LogError> {
    let word = parts.next().ok_or_else(|| {
        LogError::new(
            ErrorCode::MissingField,
            line,
            format!("missing field `{what}`"),
        )
    })?;
    if word == "-" {
        return Ok(None);
    }
    word.parse().map(Some).map_err(|_| {
        LogError::new(
            ErrorCode::BadFieldValue,
            line,
            format!("bad value `{word}` for `{what}`"),
        )
    })
}

/// Parses one `obj` line body (after the directive word).
fn parse_obj<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<ObjectRecord, LogError> {
    let object = ObjectId(field(parts, n, "object id")?);
    let class = ClassId(field(parts, n, "class id")?);
    let size = field(parts, n, "size")?;
    let created = field(parts, n, "created")?;
    let freed = field(parts, n, "freed")?;
    let last_use = opt_field(parts, n, "last use")?;
    let alloc_site = ChainId(field(parts, n, "alloc chain")?);
    let last_use_site = opt_field::<u32>(parts, n, "use chain")?.map(ChainId);
    let at_exit: u8 = field(parts, n, "at-exit flag")?;
    Ok(ObjectRecord {
        object,
        class,
        size,
        created,
        freed,
        last_use,
        alloc_site,
        last_use_site,
        at_exit: at_exit != 0,
    })
}

/// Parses one `gc` line body (after the directive word).
fn parse_gc<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<GcSample, LogError> {
    Ok(GcSample {
        time: field(parts, n, "time")?,
        reachable_bytes: field(parts, n, "reachable bytes")?,
        reachable_count: field(parts, n, "reachable count")?,
    })
}

/// Decodes one chunk of `obj`/`gc` lines. In strict mode the first bad
/// line ends the chunk (the sequential scan would stop there too); in
/// salvage mode bad lines are dropped and counted, and decoding continues.
pub(crate) fn parse_chunk(lines: &[RawLine<'_>], chunk: usize, salvage: bool) -> ChunkOut {
    let mut out = ChunkOut::default();
    for raw in lines {
        let mut parts = raw.text.split_whitespace();
        let result = match parts.next() {
            Some("obj") => parse_obj(&mut parts, raw.line).map(|r| out.records.push(r)),
            Some("gc") => parse_gc(&mut parts, raw.line).map(|s| out.samples.push(s)),
            other => unreachable!("chunked line {} is not obj/gc: {other:?}", raw.line),
        };
        if let Err(mut e) = result {
            e.byte = raw.byte;
            e.chunk = Some(chunk);
            out.errors.push(e);
            if !salvage {
                break;
            }
            out.units_dropped += 1;
            out.bytes_skipped += raw.len;
        }
    }
    out
}

/// The text codec's scan pass: one walk over the input on the
/// coordinating thread. The header and the `end`/`chain` directives are
/// parsed in place (they are rare and carry shared state), while
/// `obj`/`gc` lines — the bulk of a trace — are batched into chunks of
/// `chunk_records` lines for the worker pool. In strict mode the scan
/// aborts at the first scan-level error; in salvage mode bad lines are
/// dropped and counted.
pub(crate) fn scan(text: &str, salvage: bool, chunk_records: usize) -> ScanOutput<'_> {
    let mut out = ScanOutput::new();
    let mut chunks: Vec<Vec<RawLine<'_>>> = Vec::new();
    let mut current: Vec<RawLine<'_>> = Vec::new();
    let mut last_line = 0;

    for raw in SplitLines::new(text) {
        last_line = raw.line;
        // A torn tail can only be the final line; drop or abort on it.
        if !raw.terminated {
            let mut e = LogError::new(
                ErrorCode::TornTail,
                raw.line,
                "unterminated final line (torn write)".into(),
            );
            e.byte = raw.byte;
            if out.note(e, raw.len, salvage) {
                break;
            }
            continue;
        }
        let content = raw.text.trim();
        if raw.line == 1 {
            if content == TEXT_HEADER {
                continue;
            }
            let mut e = LogError::new(
                ErrorCode::BadHeader,
                raw.line,
                format!("unrecognised header `{content}`"),
            );
            e.byte = raw.byte;
            if out.note(e, raw.len, salvage) {
                break;
            }
            continue;
        }
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        match parts.next() {
            Some("end") => match field(&mut parts, raw.line, "end time") {
                Ok(t) => {
                    out.end_time = t;
                    out.saw_end = true;
                }
                Err(mut e) => {
                    e.byte = raw.byte;
                    if out.note(e, raw.len, salvage) {
                        break;
                    }
                }
            },
            Some("chain") => match field::<u32>(&mut parts, raw.line, "chain id") {
                Ok(id) => {
                    let rest: Vec<&str> = parts.collect();
                    out.chain_names.insert(ChainId(id), rest.join(" "));
                }
                Err(mut e) => {
                    e.byte = raw.byte;
                    if out.note(e, raw.len, salvage) {
                        break;
                    }
                }
            },
            Some("obj") | Some("gc") => {
                current.push(raw);
                if current.len() >= chunk_records {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            Some(other) => {
                let mut e = LogError::new(
                    ErrorCode::UnknownDirective,
                    raw.line,
                    format!("unknown directive `{other}`"),
                );
                e.byte = raw.byte;
                if out.note(e, raw.len, salvage) {
                    break;
                }
            }
            None => {}
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    out.chunks = chunks.into_iter().map(Chunk::Lines).collect();
    out.next_position = (last_line + 1, text.len() as u64);
    out
}
