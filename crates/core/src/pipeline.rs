//! The unified ingestion facade: one builder, every knob, every input
//! shape.
//!
//! Historically the crate grew seven entry points — `parse_log`,
//! `parse_log_sharded`, `ingest_log`, `write_log`, `write_log_binary`,
//! `write_log_to`, and `DragAnalyzer::analyze_sharded` — each hard-wiring
//! one combination of format, shard count, and fault policy. [`Pipeline`]
//! replaces them all (the free functions survive as thin deprecated
//! wrappers):
//!
//! ```
//! use heapdrag_core::{Pipeline, LogFormat};
//!
//! # fn main() -> Result<(), heapdrag_core::PipelineError> {
//! let log = b"heapdrag-log v1\nend 0\n";
//! // In-memory, strict, sequential:
//! let ingested = Pipeline::options().ingest_bytes(log)?;
//! assert_eq!(ingested.log.end_time, 0);
//!
//! // Streaming from any `io::Read`, sharded, salvaging, bounded memory:
//! let (ingested, stats) = Pipeline::options()
//!     .shards(4)
//!     .chunk_records(4096)
//!     .salvage(None)
//!     .ingest_reader(&log[..])?;
//! assert_eq!(stats.bytes_read, log.len() as u64);
//! # let _ = ingested;
//! # Ok(())
//! # }
//! ```
//!
//! The terminals decide the execution strategy; the options are shared:
//!
//! | terminal | input | memory | result |
//! |----------|-------|--------|--------|
//! | [`ingest_bytes`](Pipeline::ingest_bytes) | `impl AsRef<[u8]>` | O(input) | [`Ingested`] |
//! | [`ingest_reader`](Pipeline::ingest_reader) | `impl io::Read` | O(shards × chunk) + records | ([`Ingested`], [`StreamStats`]) |
//! | [`analyze_reader`](Pipeline::analyze_reader) | `impl io::Read` | O(shards × chunk + groups) | [`StreamReport`] |
//! | [`analyze_records`](Pipeline::analyze_records) | `&[ObjectRecord]` | O(groups) | ([`DragReport`], [`ParallelMetrics`]) |
//! | [`write_to`](Pipeline::write_to) | [`ProfileRun`] | O(1) | bytes written |
//!
//! [`analyze_reader`](Pipeline::analyze_reader) is the fully streaming
//! path: records are folded into the analyzer's per-site partial
//! aggregates as chunks decode and are dropped immediately, so a trace of
//! any length is analyzed without ever materialising its record vector
//! (see [`crate::stream`] for the architecture and
//! `tests/streaming_parity.rs` for the byte-identical-report guarantee).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::time::{Duration, Instant};

use heapdrag_vm::ids::{ChainId, SiteId};
use heapdrag_vm::program::Program;

use crate::analyzer::{accumulate_shard, DragAnalyzer, DragReport, ShardAccum};
use crate::codec::LogFormat;
use crate::engine::DragEngine;
use crate::log::{
    ingest_bytes_impl, write_run_to, IngestConfig, IngestMode, Ingested, LogError, ParsedLog,
    SalvageSummary,
};
use crate::parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
use crate::profiler::ProfileRun;
use crate::record::{ObjectRecord, RetainRecord};
use crate::report::ChainNamer;
use crate::serve::WorkerPool;
use crate::stream::{self, CollectFold, StreamStats};

/// What a [`Pipeline`] terminal can fail with: the reader itself, or the
/// log it carried.
#[derive(Debug)]
pub enum PipelineError {
    /// The underlying [`io::Read`] failed. Only the streaming terminals
    /// produce this.
    Io(io::Error),
    /// The log was malformed (strict) or unsalvageable, with the stable
    /// `E0xx` taxonomy of [`crate::ErrorCode`].
    Log(LogError),
}

impl PipelineError {
    /// The contained [`LogError`], if the failure was a log fault rather
    /// than an I/O fault.
    pub fn as_log(&self) -> Option<&LogError> {
        match self {
            PipelineError::Log(e) => Some(e),
            PipelineError::Io(_) => None,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "reading log: {e}"),
            PipelineError::Log(e) => e.fmt(f),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Io(e) => Some(e),
            PipelineError::Log(e) => Some(e),
        }
    }
}

impl From<LogError> for PipelineError {
    fn from(e: LogError) -> Self {
        PipelineError::Log(e)
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Io(e)
    }
}

/// The result of [`Pipeline::analyze_reader`]: the drag report plus
/// everything the record vector used to carry — log-level totals, chain
/// names, salvage accounting, per-stage metrics — without the record
/// vector itself.
#[derive(Debug)]
pub struct StreamReport {
    /// The drag report, byte-identical to analyzing the materialised log.
    pub report: DragReport,
    /// What salvage kept, dropped, and repaired (all-zero under strict).
    pub salvage: SalvageSummary,
    /// Final allocation-clock value (synthesized under salvage when the
    /// end marker was missing).
    pub end_time: u64,
    /// Readable names for the chain ids appearing in the records.
    pub chain_names: HashMap<ChainId, String>,
    /// Object records folded into the report.
    pub records: u64,
    /// Total bytes allocated by those records.
    pub alloc_bytes: u64,
    /// Records still live at exit.
    pub at_exit: u64,
    /// Deep-GC samples folded.
    pub samples: u64,
    /// Retaining-path samples folded.
    pub retains: u64,
    /// Parse-stage instrumentation (one shard entry per chunk).
    pub parse_metrics: ParallelMetrics,
    /// Aggregate-stage instrumentation. The fold runs on the merge thread
    /// concurrently with parsing, so its single shard entry reports the
    /// stream's wall-clock; `merge_elapsed` is the classification and
    /// sorting pass.
    pub analyze_metrics: ParallelMetrics,
    /// Streaming instrumentation (buffer high-water mark, stalls).
    pub stats: StreamStats,
}

impl ChainNamer for StreamReport {
    fn chain_name(&self, chain: ChainId) -> String {
        self.chain_names
            .get(&chain)
            .cloned()
            .unwrap_or_else(|| format!("<chain {}>", chain.0))
    }
}

impl StreamReport {
    /// Publishes the log-level side of the reconciliation surface — the
    /// same `heapdrag_*` names [`ParsedLog::publish_metrics`] emits,
    /// computed from the streamed totals. [`SalvageSummary`],
    /// [`DragReport`], [`ParallelMetrics`], and [`StreamStats`] publish
    /// their own families.
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        registry
            .counter("heapdrag_objects_created_total")
            .add(self.records);
        registry
            .counter("heapdrag_alloc_bytes_total")
            .add(self.alloc_bytes);
        registry
            .counter("heapdrag_objects_reclaimed_total")
            .add(self.records - self.at_exit);
        registry
            .counter("heapdrag_objects_at_exit_total")
            .add(self.at_exit);
        registry
            .counter("heapdrag_deep_gc_samples_total")
            .add(self.samples);
        registry
            .counter("heapdrag_retain_samples_total")
            .add(self.retains);
        registry
            .gauge("heapdrag_end_time_bytes")
            .set(i64::try_from(self.end_time).unwrap_or(i64::MAX));
    }
}

/// The mergeable half of a streamed analysis: the exact-integer per-site
/// partial aggregates plus the log-level context, before classification
/// and sorting. This is what a serve session retains — partials of
/// different sessions merge commutatively (the same [`ShardAccum::merge`]
/// the shard merge uses), which is what makes the fleet report invariant
/// under session arrival order.
#[derive(Debug, Clone)]
pub(crate) struct AnalyzePartials {
    /// Per-site partial aggregates (exact integers, commutative merge).
    pub(crate) accum: ShardAccum,
    /// Object records folded.
    pub(crate) records: u64,
    /// Total bytes allocated by those records.
    pub(crate) alloc_bytes: u64,
    /// Records still live at exit.
    pub(crate) at_exit: u64,
    /// Deep-GC samples folded.
    pub(crate) samples: u64,
    /// Retaining-path samples folded (full records — they merge across
    /// sessions by concatenation, then aggregate at finalize).
    pub(crate) retains: Vec<RetainRecord>,
    /// What salvage kept, dropped, and repaired.
    pub(crate) salvage: SalvageSummary,
    /// Final allocation-clock value.
    pub(crate) end_time: u64,
    /// Chain-name table of this trace.
    pub(crate) chain_names: HashMap<ChainId, String>,
    /// Parse-stage instrumentation.
    pub(crate) parse_metrics: ParallelMetrics,
    /// Streaming instrumentation.
    pub(crate) stats: StreamStats,
}

/// One builder for the whole offline pipeline: configure once, then pick
/// a terminal. See the [module docs](self) for the terminal table.
///
/// The builder is plain data — cheap to clone, reusable across inputs.
#[derive(Debug, Clone, Copy)]
pub struct Pipeline {
    par: ParallelConfig,
    ingest: IngestConfig,
    format: LogFormat,
    analyzer: DragAnalyzer,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            par: ParallelConfig::default(),
            ingest: IngestConfig::strict(),
            format: LogFormat::Text,
            analyzer: DragAnalyzer::new(),
        }
    }
}

impl Pipeline {
    /// Starts a pipeline with the defaults: strict, sequential, text
    /// output format, default analyzer thresholds.
    pub fn options() -> Self {
        Self::default()
    }

    /// Number of decode/aggregate worker shards (0 and 1 both mean
    /// sequential decoding; the streaming terminals still overlap reading
    /// with decoding).
    pub fn shards(mut self, shards: usize) -> Self {
        self.par.shards = shards;
        self
    }

    /// Record-bearing units (text lines or binary frames) per parse
    /// chunk — the work-unit handed to decode workers, and the granularity
    /// of the streaming memory bound.
    pub fn chunk_records(mut self, chunk_records: usize) -> Self {
        self.par.chunk_records = chunk_records;
        self
    }

    /// Switches to salvage mode: drop what cannot be decoded, collapse
    /// duplicates, synthesize a missing end marker, and fail only on an
    /// empty input or when more than `max_errors` faults accumulate
    /// (`None` = unbounded).
    pub fn salvage(mut self, max_errors: Option<u64>) -> Self {
        self.ingest = IngestConfig {
            mode: IngestMode::Salvage,
            max_errors,
        };
        self
    }

    /// Switches (back) to strict mode: the first malformed unit aborts.
    pub fn strict(mut self) -> Self {
        self.ingest = IngestConfig::strict();
        self
    }

    /// Output format for [`write_to`](Self::write_to) (ingestion always
    /// autodetects the input format by magic bytes).
    pub fn format(mut self, format: LogFormat) -> Self {
        self.format = format;
        self
    }

    /// Replaces the analyzer (thresholds) used by the analyze terminals.
    pub fn analyzer(mut self, analyzer: DragAnalyzer) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// The [`ParallelConfig`] this builder resolves to.
    pub fn parallel_config(&self) -> ParallelConfig {
        self.par
    }

    /// The [`IngestConfig`] this builder resolves to.
    pub fn ingest_config(&self) -> IngestConfig {
        self.ingest
    }

    /// Ingests an in-memory log (text or binary, autodetected). The
    /// historical `parse_log`/`ingest_log` path: whole input in memory,
    /// sharded decode, deterministic merge.
    ///
    /// # Errors
    ///
    /// Strict: the first malformed unit. Salvage: `E001`/`E008` only.
    /// Never [`PipelineError::Io`].
    pub fn ingest_bytes(&self, input: impl AsRef<[u8]>) -> Result<Ingested, PipelineError> {
        ingest_bytes_impl(input.as_ref(), &self.par, &self.ingest).map_err(PipelineError::from)
    }

    /// Ingests a log from any reader — a file, stdin, a socket — in
    /// bounded memory, returning the same [`Ingested`] as
    /// [`ingest_bytes`](Self::ingest_bytes) on the same bytes plus the
    /// [`StreamStats`] of the run. Peak *transit* memory is
    /// O(shards × chunk); the decoded records themselves are retained
    /// (use [`analyze_reader`](Self::analyze_reader) to avoid that too).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Io`] if the reader fails; otherwise as
    /// [`ingest_bytes`](Self::ingest_bytes).
    pub fn ingest_reader<R: io::Read>(
        &self,
        reader: R,
    ) -> Result<(Ingested, StreamStats), PipelineError> {
        let out = stream::run(
            reader,
            &self.par,
            &self.ingest,
            CollectFold::default(),
            WorkerPool::shared(),
        )?;
        let ingested = Ingested {
            log: ParsedLog {
                end_time: out.end_time,
                chain_names: out.chain_names,
                records: out.fold.records,
                samples: out.fold.samples,
                retains: out.fold.retains,
            },
            salvage: out.salvage,
            metrics: out.metrics,
        };
        Ok((ingested, out.stats))
    }

    /// The fully streaming terminal: reads, decodes, and aggregates in one
    /// pass, folding each record into the per-site partial aggregates the
    /// moment its chunk is merged. No record vector ever exists, so peak
    /// memory is O(shards × chunk + distinct sites) regardless of trace
    /// length — with one honest exception: salvage mode keeps a seen-id
    /// set for duplicate collapse, which grows with the kept record count.
    ///
    /// Chain ids in a trace are their own innermost sites, so the default
    /// resolver is the identity; use
    /// [`analyze_reader_with`](Self::analyze_reader_with) to supply a
    /// different one.
    ///
    /// # Errors
    ///
    /// As [`ingest_reader`](Self::ingest_reader).
    pub fn analyze_reader<R: io::Read>(&self, reader: R) -> Result<StreamReport, PipelineError> {
        self.analyze_reader_with(reader, |c| Some(SiteId(c.0)))
    }

    /// [`analyze_reader`](Self::analyze_reader) with an explicit
    /// innermost-site resolver (the fold runs on the calling thread, so
    /// the resolver needs no thread bounds).
    ///
    /// # Errors
    ///
    /// As [`ingest_reader`](Self::ingest_reader).
    pub fn analyze_reader_with<R, F>(
        &self,
        reader: R,
        innermost: F,
    ) -> Result<StreamReport, PipelineError>
    where
        R: io::Read,
        F: Fn(ChainId) -> Option<SiteId>,
    {
        let partials = self.analyze_partials_on(WorkerPool::shared(), reader, innermost)?;
        Ok(self.finalize_partials(partials))
    }

    /// The streaming-analyze front half: fold the whole trace into
    /// per-site partial aggregates (plus everything else the stream
    /// produced), decoding on `pool`, without finalizing a report. The
    /// serve layer runs one of these per session and keeps the partials:
    /// cloned-and-finalized for the per-session report, merged across
    /// sessions for the fleet report.
    pub(crate) fn analyze_partials_on<R, F>(
        &self,
        pool: &WorkerPool,
        reader: R,
        innermost: F,
    ) -> Result<AnalyzePartials, PipelineError>
    where
        R: io::Read,
        F: Fn(ChainId) -> Option<SiteId>,
    {
        let fold = DragEngine::offline(self.analyzer.config().patterns, innermost);
        let out = stream::run(reader, &self.par, &self.ingest, fold, pool)?;
        let (accum, records, alloc_bytes, at_exit, samples, retains) =
            out.fold.into_fold_parts();
        Ok(AnalyzePartials {
            accum,
            records,
            alloc_bytes,
            at_exit,
            samples,
            retains,
            salvage: out.salvage,
            end_time: out.end_time,
            chain_names: out.chain_names,
            parse_metrics: out.metrics,
            stats: out.stats,
        })
    }

    /// The streaming-analyze back half: classify, sort, and package the
    /// partial aggregates into a [`StreamReport`]. `finalize_partials ∘
    /// analyze_partials_on` is exactly `analyze_reader_with`.
    pub(crate) fn finalize_partials(&self, partials: AnalyzePartials) -> StreamReport {
        let finalize_start = Instant::now();
        let groups = partials.accum.group_count();
        let mut report = self.analyzer.finalize(partials.accum);
        report.attach_retains(&partials.retains);
        let finalize_elapsed = finalize_start.elapsed();
        let analyze_metrics = ParallelMetrics {
            shards: vec![ShardMetrics {
                shard: 0,
                records: partials.records,
                samples: partials.samples,
                groups,
                elapsed: partials.parse_metrics.total_elapsed,
            }],
            split_elapsed: Duration::ZERO,
            merge_elapsed: finalize_elapsed,
            total_elapsed: partials.parse_metrics.total_elapsed + finalize_elapsed,
        };
        StreamReport {
            report,
            salvage: partials.salvage,
            end_time: partials.end_time,
            chain_names: partials.chain_names,
            records: partials.records,
            alloc_bytes: partials.alloc_bytes,
            at_exit: partials.at_exit,
            samples: partials.samples,
            retains: partials.retains.len() as u64,
            parse_metrics: partials.parse_metrics,
            analyze_metrics,
            stats: partials.stats,
        }
    }

    /// Analyzes an already-materialised record slice with the builder's
    /// shard count — the historical `DragAnalyzer::analyze_sharded`.
    pub fn analyze_records<F>(
        &self,
        records: &[ObjectRecord],
        innermost: F,
    ) -> (DragReport, ParallelMetrics)
    where
        F: Fn(ChainId) -> Option<SiteId> + Sync,
    {
        self.analyzer.analyze_sharded_impl(records, innermost, &self.par)
    }

    /// Sequential analysis of a record slice (resolvers need not be
    /// `Sync`) — the historical `DragAnalyzer::analyze`.
    pub fn analyze_records_seq<F>(&self, records: &[ObjectRecord], innermost: F) -> DragReport
    where
        F: Fn(ChainId) -> Option<SiteId>,
    {
        let accum = accumulate_shard(records, &self.analyzer.config().patterns, &innermost);
        self.analyzer.finalize(accum)
    }

    /// Streams a profiling run to `writer` in the builder's
    /// [`format`](Self::format), returning the bytes written — the
    /// historical `write_log_to`/`write_log`/`write_log_binary`.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_to<W: io::Write>(
        &self,
        run: &ProfileRun,
        program: &Program,
        writer: W,
    ) -> io::Result<u64> {
        write_run_to(run, program, self.format, writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BinarySink, TextSink, TraceSink};
    use crate::log::ingest_bytes_impl;
    use crate::record::GcSample;
    use crate::report::ReportSections;
    use heapdrag_vm::ids::{ClassId, ObjectId};

    fn sample_log(format: LogFormat, end: bool) -> Vec<u8> {
        let records: Vec<ObjectRecord> = (0..40u64)
            .map(|i| ObjectRecord {
                object: ObjectId(i),
                class: ClassId((i % 2) as u32),
                size: 8 + (i % 6) * 16,
                created: i * 100,
                freed: i * 100 + 5_000,
                last_use: (i % 3 != 0).then_some(i * 100 + 2_000),
                alloc_site: ChainId((i % 5) as u32),
                last_use_site: (i % 3 != 0).then_some(ChainId((i % 5) as u32)),
                at_exit: i % 9 == 0,
            })
            .collect();
        let mut buf = Vec::new();
        let write = |sink: &mut dyn TraceSink| {
            sink.begin().unwrap();
            for c in 0..5u32 {
                sink.chain(ChainId(c), &format!("method{c} (file.java:{c})")).unwrap();
            }
            for (i, r) in records.iter().enumerate() {
                sink.record(r).unwrap();
                if i % 8 == 0 {
                    sink.sample(&GcSample {
                        time: (i as u64) * 100,
                        reachable_bytes: 4_000 + i as u64,
                        reachable_count: 40,
                    })
                    .unwrap();
                }
            }
            if end {
                sink.end(123_456).unwrap();
            }
        };
        match format {
            LogFormat::Text => write(&mut TextSink::new(&mut buf)),
            LogFormat::Binary => write(&mut BinarySink::new(&mut buf)),
        }
        buf
    }

    #[test]
    fn ingest_bytes_matches_the_legacy_engine() {
        for format in [LogFormat::Text, LogFormat::Binary] {
            let bytes = sample_log(format, true);
            let legacy =
                ingest_bytes_impl(&bytes, &ParallelConfig::default(), &IngestConfig::strict())
                    .unwrap();
            let new = Pipeline::options().ingest_bytes(&bytes).unwrap();
            assert_eq!(new.log, legacy.log);
            assert_eq!(new.salvage, legacy.salvage);
        }
    }

    #[test]
    fn analyze_reader_report_matches_materialised_analysis() {
        for format in [LogFormat::Text, LogFormat::Binary] {
            for end in [true, false] {
                let bytes = sample_log(format, end);
                let pipe = Pipeline::options().shards(3).chunk_records(7).salvage(None);
                let ingested = pipe.ingest_bytes(&bytes).unwrap();
                let (expect_report, _) = pipe.analyze_records(&ingested.log.records, |c| {
                    Some(SiteId(c.0))
                });
                let streamed = pipe.analyze_reader(&bytes[..]).unwrap();
                assert_eq!(streamed.report, expect_report, "format {format:?} end {end}");
                assert_eq!(streamed.salvage, ingested.salvage);
                assert_eq!(streamed.end_time, ingested.log.end_time);
                assert_eq!(streamed.records, ingested.log.records.len() as u64);
                assert_eq!(streamed.samples, ingested.log.samples.len() as u64);
                assert_eq!(
                    streamed.alloc_bytes,
                    ingested.log.records.iter().map(|r| r.size).sum::<u64>()
                );
                // The rendered report (the user-facing artifact) must be
                // byte-identical too, chain names included.
                assert_eq!(
                    ReportSections::standard(&streamed.report, &streamed).render(),
                    ReportSections::standard(&expect_report, &ingested.log).render()
                );
            }
        }
    }

    #[test]
    fn strict_error_is_the_same_through_both_terminals() {
        let mut bytes = sample_log(LogFormat::Text, true);
        let insert_at = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes.splice(insert_at..insert_at, b"garbage line\n".iter().copied());
        let from_bytes = Pipeline::options().ingest_bytes(&bytes).unwrap_err();
        let from_reader = Pipeline::options().ingest_reader(&bytes[..]).unwrap_err();
        let from_analyze = Pipeline::options().analyze_reader(&bytes[..]).unwrap_err();
        let e1 = from_bytes.as_log().expect("log error").clone();
        let e2 = from_reader.as_log().expect("log error").clone();
        let e3 = from_analyze.as_log().expect("log error").clone();
        assert_eq!(e1, e2);
        assert_eq!(e1, e3);
        assert_eq!(e1.line, 2);
    }

    #[test]
    fn builder_is_plain_data() {
        let p = Pipeline::options().shards(8).chunk_records(64).salvage(Some(3));
        assert_eq!(p.parallel_config().shards, 8);
        assert_eq!(p.parallel_config().chunk_records, 64);
        assert!(p.ingest_config().is_salvage());
        assert_eq!(p.ingest_config().max_errors, Some(3));
        let q = p.strict();
        assert!(!q.ingest_config().is_salvage());
    }
}
