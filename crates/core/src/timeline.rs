//! Reachable / in-use heap-size curves over allocation time (Figure 2 of
//! the paper).

use crate::profiler::ProfileRun;
use crate::record::ObjectRecord;

/// One point of the heap-size curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Allocation-clock time of the sample.
    pub time: u64,
    /// Bytes reachable at `time`.
    pub reachable: u64,
    /// Bytes in use at `time` (reachable objects still to be used).
    pub in_use: u64,
}

/// A sampled pair of curves.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timeline {
    /// Samples in increasing time order.
    pub points: Vec<TimelinePoint>,
}

/// Is the object reachable at `t`, per its record? Survivors reported at
/// exit count as reachable at the final sample.
fn reachable_at(r: &ObjectRecord, t: u64) -> bool {
    r.created <= t && (t < r.freed || (r.at_exit && t <= r.freed))
}

/// Is the object in use at `t` (created, and still to be used strictly
/// after `t`)? The strict bound keeps `in_use ⊆ reachable` at sample
/// boundaries: a use and a collection can share one byte-clock tick, and
/// the sample is taken after the collection.
fn in_use_at(r: &ObjectRecord, t: u64) -> bool {
    match r.last_use {
        Some(u) => r.created <= t && t < u,
        None => false,
    }
}

impl Timeline {
    /// Reconstructs both curves from records at the given sample times.
    pub fn from_records(records: &[ObjectRecord], times: &[u64]) -> Self {
        let points = times
            .iter()
            .map(|&t| {
                let mut reachable = 0u64;
                let mut in_use = 0u64;
                for r in records {
                    if reachable_at(r, t) {
                        reachable += r.size;
                    }
                    if in_use_at(r, t) {
                        in_use += r.size;
                    }
                }
                TimelinePoint {
                    time: t,
                    reachable,
                    in_use,
                }
            })
            .collect();
        Timeline { points }
    }

    /// Builds the curves for a profiling run at its deep-GC sample times,
    /// taking the reachable sizes from the VM's own samples (ground truth)
    /// and reconstructing in-use sizes from the records.
    pub fn from_run(run: &ProfileRun) -> Self {
        let points = run
            .samples
            .iter()
            .map(|s| {
                let in_use = run
                    .records
                    .iter()
                    .filter(|r| in_use_at(r, s.time))
                    .map(|r| r.size)
                    .sum();
                TimelinePoint {
                    time: s.time,
                    reachable: s.reachable_bytes,
                    in_use,
                }
            })
            .collect();
        Timeline { points }
    }

    /// Peak reachable size over the sampled points.
    pub fn peak_reachable(&self) -> u64 {
        self.points.iter().map(|p| p.reachable).max().unwrap_or(0)
    }

    /// Renders both curves as CSV (`time,reachable,in_use` in bytes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,reachable,in_use\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{}\n", p.time, p.reachable, p.in_use));
        }
        out
    }

    /// A terminal-friendly chart of the two curves (`#` reachable, `.` in
    /// use), `height` rows tall — the stand-in for the paper's Figure 2
    /// panels.
    pub fn ascii_chart(&self, height: usize) -> String {
        if self.points.is_empty() || height == 0 {
            return String::new();
        }
        let peak = self.peak_reachable().max(1);
        let width = self.points.len();
        let mut rows = vec![vec![b' '; width]; height];
        for (x, p) in self.points.iter().enumerate() {
            let scale = |v: u64| ((v as f64 / peak as f64) * (height as f64 - 1.0)).round() as usize;
            let ry = scale(p.reachable);
            let iy = scale(p.in_use);
            rows[height - 1 - ry][x] = b'#';
            if iy != ry {
                rows[height - 1 - iy][x] = b'.';
            }
        }
        let mut out = String::new();
        for row in rows {
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!(
            "peak reachable: {} KB over {} samples ('#' reachable, '.' in use)\n",
            peak / 1024,
            width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

    fn record(created: u64, last_use: Option<u64>, freed: u64, size: u64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(0),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(0),
            last_use_site: None,
            at_exit: false,
        }
    }

    #[test]
    fn curves_step_with_lifetimes() {
        let records = vec![record(10, Some(30), 50, 8), record(20, None, 60, 4)];
        let t = Timeline::from_records(&records, &[0, 15, 25, 35, 55, 70]);
        let reach: Vec<u64> = t.points.iter().map(|p| p.reachable).collect();
        let in_use: Vec<u64> = t.points.iter().map(|p| p.in_use).collect();
        assert_eq!(reach, vec![0, 8, 12, 12, 4, 0]);
        assert_eq!(in_use, vec![0, 8, 8, 0, 0, 0]);
    }

    #[test]
    fn in_use_never_exceeds_reachable() {
        let records = vec![
            record(0, Some(90), 100, 16),
            record(5, Some(6), 200, 8),
            record(7, None, 99, 24),
        ];
        let times: Vec<u64> = (0..210).step_by(10).collect();
        let t = Timeline::from_records(&records, &times);
        for p in &t.points {
            assert!(p.in_use <= p.reachable, "at t={}", p.time);
        }
    }

    #[test]
    fn exit_survivors_count_at_final_sample() {
        let mut r = record(10, Some(40), 100, 8);
        r.at_exit = true;
        let t = Timeline::from_records(&[r], &[100]);
        assert_eq!(t.points[0].reachable, 8);
    }

    #[test]
    fn csv_and_chart_render() {
        let records = vec![record(0, Some(50), 100, 1024)];
        let t = Timeline::from_records(&records, &[0, 25, 50, 75]);
        let csv = t.to_csv();
        assert!(csv.starts_with("time,reachable,in_use\n"));
        assert_eq!(csv.lines().count(), 5);
        let chart = t.ascii_chart(5);
        assert!(chart.contains('#'));
        assert_eq!(t.peak_reachable(), 1024);
    }
}
