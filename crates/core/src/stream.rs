//! The streaming, bounded-memory ingestion engine behind
//! [`Pipeline`](crate::pipeline::Pipeline).
//!
//! The in-memory engine ([`crate::ingest_log`]) needs the whole trace in
//! one buffer. This module reads any [`std::io::Read`] in fixed blocks
//! instead and keeps peak memory at O(shards × chunk):
//!
//! 1. The **coordinator** (the calling thread) reads blocks and feeds an
//!    incremental scanner that cuts the stream at line/frame boundaries —
//!    the same boundaries, the same error taxonomy, and the same chunking
//!    as the in-memory scan — emitting self-contained owned chunks.
//! 2. Each chunk is submitted as an independent decode job to the shared
//!    [`WorkerPool`] — the same per-chunk
//!    decoders the in-memory path uses, but on threads that outlive the
//!    call and are shared by every concurrent ingest in the process. The
//!    coordinator caps chunks in flight (dispatched but not yet merged)
//!    at `2 × shards`, blocking on results when the budget is full, so a
//!    slow consumer exerts backpressure on the reader instead of growing
//!    a queue. Stalls and the high-water mark of buffered bytes are
//!    reported in [`StreamStats`].
//! 3. The coordinator **merges** decode results strictly in chunk-index
//!    order (reordering out-of-order completions in a window the
//!    in-flight cap keeps bounded) and folds records into the caller's
//!    fold — either a record collector (streaming ingest) or the
//!    analyzer's partial aggregates (streaming analyze, which never
//!    materialises the record vector at all).
//!
//! Because chunk boundaries are input-determined, the merge runs in input
//! order, and salvage's duplicate collapse happens at that ordered merge,
//! the result is byte-identical to the in-memory engine for every shard
//! count, pool size, both formats, strict and salvage —
//! `tests/streaming_parity.rs` holds the two paths against each other.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Instant;

use heapdrag_vm::ids::{ChainId, ObjectId};

use crate::codec::{self, ChunkOut, LogFormat, OwnedChunk, StreamScanState};
use crate::log::{ErrorCode, IngestConfig, LogError, SalvageSummary, FIRST_ERRORS_CAP};
use crate::parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
use crate::pipeline::PipelineError;
use crate::record::{GcSample, ObjectRecord, RetainRecord};
use crate::serve::WorkerPool;

/// How many bytes the coordinator reads per `read()` call — also the
/// slack term of the memory bound, since the scanner may carry up to one
/// block (plus one incomplete unit) between chunk cuts.
pub const READ_BLOCK: usize = 256 * 1024;

/// Instrumentation of one streaming ingest: how hard the bounded-memory
/// machinery worked. Published as `heapdrag_ingest_*` metrics by
/// [`StreamStats::publish_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// High-water mark of bytes buffered by the pipeline at once: chunks
    /// in flight (dispatched to decode workers but not yet merged) plus
    /// the scanner's own carry. Bounded by roughly `2 × shards` chunks
    /// plus one incomplete unit — the bound `tests/streaming_parity.rs`
    /// asserts against a trace far larger than it.
    pub peak_buffered_bytes: u64,
    /// Times the reader had to wait because the full budget of in-flight
    /// chunks was already decoding — the backpressure at work.
    pub backpressure_stalls: u64,
    /// Total bytes read from the input.
    pub bytes_read: u64,
    /// The largest single chunk, in input bytes.
    pub max_chunk_bytes: u64,
    /// Chunks dispatched to decode workers.
    pub chunks: u64,
}

impl StreamStats {
    /// Publishes the stats as `heapdrag_ingest_*` metrics: the buffer
    /// high-water mark and stall count as high-water gauges, bytes and
    /// chunks as counters.
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        registry
            .gauge("heapdrag_ingest_peak_buffered_bytes")
            .set_max(clamp(self.peak_buffered_bytes));
        registry
            .gauge("heapdrag_ingest_backpressure_stalls")
            .set_max(clamp(self.backpressure_stalls));
        registry
            .counter("heapdrag_ingest_bytes_total")
            .add(self.bytes_read);
        registry
            .counter("heapdrag_ingest_chunks_total")
            .add(self.chunks);
    }
}

/// The in-flight-chunk budget of one streaming ingest at `shards` decode
/// shards: how many chunks may be dispatched-but-unmerged at once. This
/// is both the streaming memory bound (peak transit bytes ≈ this many
/// chunks) and the admission-control currency of the serve layer, which
/// charges each session exactly this many budget units.
pub(crate) fn flight_cap(shards: usize) -> usize {
    (2 * shards.max(1)).max(2)
}

/// Where the merge folds kept records and samples, in input order.
/// Implemented by the record collector (streaming ingest) and the
/// analyzer fold (streaming analyze). The fold runs on the coordinating
/// thread (the caller of [`run`]), never on pool workers.
pub(crate) trait StreamFold {
    /// Folds one kept object record (salvage duplicates never arrive).
    fn record(&mut self, r: ObjectRecord);
    /// Folds one kept deep-GC sample.
    fn sample(&mut self, s: GcSample);
    /// Folds one kept retaining-path sample. Default: ignore (folds that
    /// predate retain sampling keep working unchanged).
    fn retain(&mut self, r: RetainRecord) {
        let _ = r;
    }
}

/// Everything a streaming ingest produced besides the fold itself.
pub(crate) struct StreamedLog<F> {
    /// The caller's fold, now holding the records or aggregates.
    pub(crate) fold: F,
    /// Final allocation-clock value (synthesized under salvage when the
    /// end marker was missing).
    pub(crate) end_time: u64,
    /// Chain-name table.
    pub(crate) chain_names: HashMap<ChainId, String>,
    /// What salvage kept, dropped, and repaired.
    pub(crate) salvage: SalvageSummary,
    /// Parse-stage instrumentation (one [`ShardMetrics`] per chunk).
    pub(crate) metrics: ParallelMetrics,
    /// Streaming instrumentation.
    pub(crate) stats: StreamStats,
}

/// A decode result; `out` is `None` when the decode job panicked on this
/// chunk (degraded to a per-chunk `E010` by the merge, exactly like the
/// in-memory engine's lost slots).
struct WorkDone {
    index: usize,
    units: usize,
    first: (usize, u64),
    bytes: u64,
    out: Option<(ChunkOut, ShardMetrics)>,
}

/// The merge's running state: chunk-order error collection, salvage
/// accounting, duplicate collapse (in input order, hence shard-invariant),
/// and the fold itself.
struct Merger<F> {
    fold: F,
    salvage: bool,
    errors: Vec<LogError>,
    shard_metrics: Vec<ShardMetrics>,
    units_dropped: u64,
    bytes_skipped: u64,
    duplicates_dropped: u64,
    records_kept: u64,
    samples_kept: u64,
    retains_kept: u64,
    /// Latest `freed`/sample time over kept events, for end-time
    /// synthesis.
    max_event: Option<u64>,
    seen_objects: HashSet<ObjectId>,
    seen_samples: HashSet<(u64, u64, u64)>,
}

impl<F: StreamFold> Merger<F> {
    fn new(fold: F, salvage: bool) -> Self {
        Merger {
            fold,
            salvage,
            errors: Vec::new(),
            shard_metrics: Vec::new(),
            units_dropped: 0,
            bytes_skipped: 0,
            duplicates_dropped: 0,
            records_kept: 0,
            samples_kept: 0,
            retains_kept: 0,
            max_event: None,
            seen_objects: HashSet::new(),
            seen_samples: HashSet::new(),
        }
    }

    /// Consumes one chunk's result; must be called in chunk-index order.
    fn consume(&mut self, done: WorkDone) {
        let Some((out, m)) = done.out else {
            self.errors.push(LogError {
                code: ErrorCode::WorkerLost,
                line: done.first.0,
                byte: done.first.1,
                chunk: Some(done.index),
                message: format!(
                    "parse worker panicked; chunk {} ({} units) lost",
                    done.index, done.units
                ),
            });
            if self.salvage {
                self.units_dropped += done.units as u64;
                self.bytes_skipped += done.bytes;
            }
            return;
        };
        self.shard_metrics.push(m);
        self.errors.extend(out.errors);
        self.units_dropped += out.units_dropped;
        self.bytes_skipped += out.bytes_skipped;
        for r in out.records {
            if self.salvage {
                if !self.seen_objects.insert(r.object) {
                    self.duplicates_dropped += 1;
                    continue;
                }
                self.max_event = Some(self.max_event.map_or(r.freed, |m| m.max(r.freed)));
            }
            self.records_kept += 1;
            self.fold.record(r);
        }
        for s in out.samples {
            if self.salvage {
                if !self
                    .seen_samples
                    .insert((s.time, s.reachable_bytes, s.reachable_count))
                {
                    self.duplicates_dropped += 1;
                    continue;
                }
                self.max_event = Some(self.max_event.map_or(s.time, |m| m.max(s.time)));
            }
            self.samples_kept += 1;
            self.fold.sample(s);
        }
        for r in out.retains {
            if self.salvage {
                // No duplicate collapsing for retains: a retain sample has
                // no identity and its multiplicity is its weight — see the
                // batch merge in `log.rs` for the full argument.
                self.max_event = Some(self.max_event.map_or(r.time, |m| m.max(r.time)));
            }
            self.retains_kept += 1;
            self.fold.retain(r);
        }
    }
}

/// The codec-dispatching wrapper over the two incremental scanners.
enum Scanner {
    Text(codec::text::StreamScanner),
    Binary(codec::binary::StreamScanner),
}

impl Scanner {
    fn new(format: LogFormat, salvage: bool, chunk_records: usize) -> Self {
        match format {
            LogFormat::Text => {
                Scanner::Text(codec::text::StreamScanner::new(salvage, chunk_records))
            }
            LogFormat::Binary => {
                Scanner::Binary(codec::binary::StreamScanner::new(salvage, chunk_records))
            }
        }
    }

    fn feed(&mut self, data: &[u8], out: &mut Vec<OwnedChunk>) {
        match self {
            Scanner::Text(s) => s.feed(data, out),
            Scanner::Binary(s) => s.feed(data, out),
        }
    }

    fn finish(&mut self, out: &mut Vec<OwnedChunk>) {
        match self {
            Scanner::Text(s) => s.finish(out),
            Scanner::Binary(s) => s.finish(out),
        }
    }

    fn buffered_bytes(&self) -> u64 {
        match self {
            Scanner::Text(s) => s.buffered_bytes(),
            Scanner::Binary(s) => s.buffered_bytes(),
        }
    }

    fn aborted(&self) -> bool {
        match self {
            Scanner::Text(s) => s.state.aborted,
            Scanner::Binary(s) => s.state.aborted,
        }
    }

    fn into_state(self) -> StreamScanState {
        match self {
            Scanner::Text(s) => s.state,
            Scanner::Binary(s) => s.state,
        }
    }
}

/// The coordinator's dispatch-and-merge state: chunks go out to the pool,
/// results come back over a channel and are merged in index order. The
/// in-flight count (dispatched − merged) is capped, which bounds both the
/// transit bytes and the reorder window — the role the old per-run gate
/// played, now without any dedicated threads.
struct Engine<'p, F> {
    merger: Merger<F>,
    pool: &'p WorkerPool,
    done_tx: mpsc::Sender<WorkDone>,
    done_rx: mpsc::Receiver<WorkDone>,
    /// Out-of-order completions parked until their index is next.
    window: BTreeMap<usize, WorkDone>,
    /// Next chunk index to dispatch.
    index: usize,
    /// Next chunk index to merge.
    next: usize,
    in_flight: usize,
    in_flight_bytes: u64,
    cap: usize,
    salvage: bool,
    stats: StreamStats,
}

impl<F: StreamFold> Engine<'_, F> {
    fn new(pool: &WorkerPool, cap: usize, fold: F, salvage: bool) -> Engine<'_, F> {
        let (done_tx, done_rx) = mpsc::channel();
        Engine {
            merger: Merger::new(fold, salvage),
            pool,
            done_tx,
            done_rx,
            window: BTreeMap::new(),
            index: 0,
            next: 0,
            in_flight: 0,
            in_flight_bytes: 0,
            cap,
            salvage,
            stats: StreamStats::default(),
        }
    }

    /// Accounts one completed decode and merges every now-contiguous
    /// result. Each merged chunk releases its in-flight slot — release
    /// happens at merge, not at decode completion, so the cap also bounds
    /// the reorder window and the memory bound stays airtight.
    fn accept(&mut self, done: WorkDone) {
        self.window.insert(done.index, done);
        while let Some(d) = self.window.remove(&self.next) {
            self.in_flight -= 1;
            self.in_flight_bytes -= d.bytes;
            self.merger.consume(d);
            self.next += 1;
        }
    }

    fn note_peak(&mut self, scanner_buffered: u64) {
        let current = self.in_flight_bytes + scanner_buffered;
        self.stats.peak_buffered_bytes = self.stats.peak_buffered_bytes.max(current);
    }

    /// Submits every pending chunk to the pool, blocking on completed
    /// results whenever the in-flight budget is full.
    fn dispatch(&mut self, pending: &mut Vec<OwnedChunk>, scanner_buffered: u64) {
        for chunk in pending.drain(..) {
            let bytes = chunk.byte_len();
            self.stats.max_chunk_bytes = self.stats.max_chunk_bytes.max(bytes);
            self.stats.chunks += 1;
            if self.in_flight >= self.cap {
                self.stats.backpressure_stalls += 1;
                while self.in_flight >= self.cap {
                    let done = self.recv();
                    self.accept(done);
                }
            }
            self.in_flight += 1;
            self.in_flight_bytes += bytes;
            self.note_peak(scanner_buffered);
            let index = self.index;
            self.index += 1;
            let units = chunk.len();
            let first = chunk.first_position();
            let salvage = self.salvage;
            let tx = self.done_tx.clone();
            self.pool.execute(Box::new(move || {
                let out =
                    catch_unwind(AssertUnwindSafe(|| chunk.decode(index, salvage))).ok();
                let _ = tx.send(WorkDone {
                    index,
                    units,
                    first,
                    bytes,
                    out,
                });
            }));
        }
    }

    /// Blocks until every dispatched chunk has been merged.
    fn drain(&mut self) {
        while self.in_flight > 0 {
            let done = self.recv();
            self.accept(done);
        }
    }

    fn recv(&self) -> WorkDone {
        // Every dispatched job sends exactly one result, even when the
        // decode panics (the send is outside the catch) and even when the
        // pool is shut down mid-run (post-shutdown submissions run inline
        // on this thread) — so this cannot block forever.
        self.done_rx
            .recv()
            .expect("decode job vanished without a result")
    }
}

/// Reads one block, retrying on `Interrupted`; 0 means end-of-input.
fn read_block<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<usize, PipelineError> {
    loop {
        match reader.read(buf) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PipelineError::Io(e)),
        }
    }
}

/// The streaming engine: reads `reader` once in bounded blocks, decodes
/// chunks as jobs on `pool`, and folds kept records/samples into `fold`
/// in input order on the calling thread. Semantics (errors, salvage
/// summary, kept set, end-time synthesis) are identical to
/// [`crate::ingest_log`] on the same bytes, for any pool size.
pub(crate) fn run<R: Read, F: StreamFold>(
    mut reader: R,
    par: &ParallelConfig,
    ingest: &IngestConfig,
    fold: F,
    pool: &WorkerPool,
) -> Result<StreamedLog<F>, PipelineError> {
    let start = Instant::now();
    let salvage = ingest.is_salvage();
    let chunk_records = par.effective_chunk();

    // Prime the stream far enough to detect the format by magic bytes.
    let mut block = vec![0u8; READ_BLOCK];
    let mut head: Vec<u8> = Vec::new();
    let mut eof = false;
    while head.len() < codec::binary::MAGIC.len() && !eof {
        let n = read_block(&mut reader, &mut block)?;
        if n == 0 {
            eof = true;
        } else {
            head.extend_from_slice(&block[..n]);
        }
    }
    if head.is_empty() {
        return Err(LogError::new(ErrorCode::EmptyLog, 1, "empty log".into()).into());
    }
    let format = LogFormat::detect(&head);
    let mut scanner = Scanner::new(format, salvage, chunk_records);

    let mut bytes_read = head.len() as u64;
    let mut engine = Engine::new(pool, flight_cap(par.shards), fold, salvage);

    // The coordinator loop: read, scan, dispatch, merge what's ready,
    // repeat. A strict-mode scan abort stops the reading early; chunks
    // already cut are still decoded so the smallest line number wins
    // below.
    let split_start = Instant::now();
    let io_result = {
        let engine = &mut engine;
        let scanner = &mut scanner;
        let mut coordinate = || -> Result<(), PipelineError> {
            let mut pending: Vec<OwnedChunk> = Vec::new();
            scanner.feed(&head, &mut pending);
            engine.dispatch(&mut pending, scanner.buffered_bytes());
            while !scanner.aborted() {
                let n = read_block(&mut reader, &mut block)?;
                if n == 0 {
                    break;
                }
                bytes_read += n as u64;
                scanner.feed(&block[..n], &mut pending);
                engine.dispatch(&mut pending, scanner.buffered_bytes());
                engine.note_peak(scanner.buffered_bytes());
            }
            scanner.finish(&mut pending);
            engine.dispatch(&mut pending, scanner.buffered_bytes());
            Ok(())
        };
        coordinate()
    };
    let read_elapsed = split_start.elapsed();
    // Merge every outstanding chunk even on a read error — decode jobs
    // own their data and will send regardless; leaving them unmerged
    // would leak nothing but would leave results racing a dropped
    // receiver for no benefit.
    engine.drain();
    io_result?;
    let mut stats = engine.stats;
    stats.bytes_read = bytes_read;
    let merger = engine.merger;

    // Final assembly — a line-for-line mirror of the in-memory engine's
    // merge, so the two paths cannot drift.
    let merge_start = Instant::now();
    let StreamScanState {
        chain_names,
        end_time,
        saw_end,
        errors: scan_errors,
        units_dropped,
        bytes_skipped,
        next_position,
        ..
    } = scanner.into_state();

    let mut metrics = ParallelMetrics {
        shards: merger.shard_metrics,
        split_elapsed: read_elapsed,
        ..ParallelMetrics::default()
    };
    let mut summary = SalvageSummary {
        salvage,
        format,
        lines_dropped: units_dropped + merger.units_dropped,
        bytes_skipped: bytes_skipped + merger.bytes_skipped,
        duplicates_dropped: merger.duplicates_dropped,
        ..SalvageSummary::default()
    };
    let mut all_errors = scan_errors;
    all_errors.extend(merger.errors);
    // The smallest line/frame number wins, wherever the error was found.
    all_errors.sort_by_key(|e| e.line);

    let mut end_time = end_time;
    if !salvage {
        if let Some(e) = all_errors.into_iter().next() {
            return Err(e.into());
        }
        if !saw_end {
            return Err(LogError {
                code: ErrorCode::MissingEndMarker,
                line: next_position.0,
                byte: next_position.1,
                chunk: None,
                message: "no `end` marker — log truncated?".into(),
            }
            .into());
        }
    } else {
        if !saw_end {
            summary.synthesized_end = true;
            all_errors.push(LogError {
                code: ErrorCode::MissingEndMarker,
                line: next_position.0,
                byte: next_position.1,
                chunk: None,
                message: "no `end` marker — synthesizing exit time".into(),
            });
            end_time = merger.max_event.unwrap_or(0);
        }
        for e in &all_errors {
            *summary.errors_by_code.entry(e.code).or_insert(0) += 1;
        }
        if summary.duplicates_dropped > 0 {
            *summary
                .errors_by_code
                .entry(ErrorCode::DuplicateRecord)
                .or_insert(0) += summary.duplicates_dropped;
        }
        summary.first_errors = all_errors.iter().take(FIRST_ERRORS_CAP).cloned().collect();
        if let Some(max) = ingest.max_errors {
            let total = summary.total_errors();
            if total > max {
                return Err(LogError::new(
                    ErrorCode::TooManyErrors,
                    0,
                    format!("salvage found {total} errors, exceeding the bound of {max}"),
                )
                .into());
            }
        }
    }
    summary.records_kept = merger.records_kept;
    summary.samples_kept = merger.samples_kept;
    summary.retains_kept = merger.retains_kept;
    metrics.merge_elapsed = merge_start.elapsed();
    metrics.total_elapsed = start.elapsed();

    Ok(StreamedLog {
        fold: merger.fold,
        end_time,
        chain_names,
        salvage: summary,
        metrics,
        stats,
    })
}

/// The streaming-ingest fold: collects records and samples, yielding the
/// same [`crate::ParsedLog`] contents as the in-memory engine.
#[derive(Debug, Default)]
pub(crate) struct CollectFold {
    pub(crate) records: Vec<ObjectRecord>,
    pub(crate) samples: Vec<GcSample>,
    pub(crate) retains: Vec<RetainRecord>,
}

impl StreamFold for CollectFold {
    fn record(&mut self, r: ObjectRecord) {
        self.records.push(r);
    }

    fn sample(&mut self, s: GcSample) {
        self.samples.push(s);
    }

    fn retain(&mut self, r: RetainRecord) {
        self.retains.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{BinarySink, TextSink, TraceSink};
    use crate::log::{ingest_bytes_impl, IngestConfig};
    use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

    /// A reader that hands out at most `max` bytes per `read()` call —
    /// the pathological case for boundary handling.
    struct TrickleReader<'a> {
        data: &'a [u8],
        pos: usize,
        max: usize,
    }

    impl<'a> Read for TrickleReader<'a> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = (self.data.len() - self.pos).min(self.max).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn sample_records(n: u64) -> (Vec<ObjectRecord>, Vec<GcSample>) {
        let records: Vec<ObjectRecord> = (0..n)
            .map(|i| ObjectRecord {
                object: ObjectId(i),
                class: ClassId((i % 3) as u32),
                size: 16 + (i % 5) * 8,
                created: i * 10,
                freed: i * 10 + 100,
                last_use: (i % 4 != 0).then_some(i * 10 + 40),
                alloc_site: ChainId((i % 4) as u32),
                last_use_site: (i % 2 == 0).then_some(ChainId((i % 4) as u32)),
                at_exit: i % 7 == 0,
            })
            .collect();
        let samples: Vec<GcSample> = (0..n / 4)
            .map(|i| GcSample {
                time: i * 40,
                reachable_bytes: 1000 + i * 3,
                reachable_count: 10 + i,
            })
            .collect();
        (records, samples)
    }

    fn encode(format: LogFormat, records: &[ObjectRecord], samples: &[GcSample], end: bool) -> Vec<u8> {
        let mut buf = Vec::new();
        let write = |sink: &mut dyn TraceSink| {
            sink.begin().unwrap();
            for c in 0..4u32 {
                sink.chain(ChainId(c), &format!("site {c}")).unwrap();
            }
            for (i, r) in records.iter().enumerate() {
                sink.record(r).unwrap();
                if i % 4 == 3 {
                    if let Some(s) = samples.get(i / 4) {
                        sink.sample(s).unwrap();
                    }
                }
            }
            if end {
                sink.end(99_999).unwrap();
            }
        };
        match format {
            LogFormat::Text => {
                let mut sink = TextSink::new(&mut buf);
                write(&mut sink);
            }
            LogFormat::Binary => {
                let mut sink = BinarySink::new(&mut buf);
                write(&mut sink);
            }
        }
        buf
    }

    fn assert_stream_matches_ingest(bytes: &[u8], ingest: IngestConfig) {
        for shards in [1usize, 3, 5] {
            for chunk_records in [1usize, 7, 8192] {
                let par = ParallelConfig {
                    shards,
                    chunk_records,
                };
                let baseline = ingest_bytes_impl(bytes, &par, &ingest);
                for max_read in [1usize, 13, 4096, READ_BLOCK + 1] {
                    let reader = TrickleReader {
                        data: bytes,
                        pos: 0,
                        max: max_read,
                    };
                    let streamed =
                        run(reader, &par, &ingest, CollectFold::default(), WorkerPool::shared());
                    let ctx = format!(
                        "shards={shards} chunk_records={chunk_records} max_read={max_read}"
                    );
                    match (&baseline, streamed) {
                        (Ok(ing), Ok(out)) => {
                            assert_eq!(out.fold.records, ing.log.records, "{ctx}");
                            assert_eq!(out.fold.samples, ing.log.samples, "{ctx}");
                            assert_eq!(out.end_time, ing.log.end_time, "{ctx}");
                            assert_eq!(out.chain_names, ing.log.chain_names, "{ctx}");
                            assert_eq!(out.salvage, ing.salvage, "{ctx}");
                            assert_eq!(out.stats.bytes_read, bytes.len() as u64, "{ctx}");
                        }
                        (Err(be), Err(PipelineError::Log(se))) => {
                            assert_eq!(&se, be, "{ctx}");
                        }
                        (b, s) => panic!("{ctx}: baseline {b:?} vs streamed ok={}", s.is_ok()),
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_matches_in_memory_on_clean_logs() {
        let (records, samples) = sample_records(50);
        for format in [LogFormat::Text, LogFormat::Binary] {
            let bytes = encode(format, &records, &samples, true);
            assert_stream_matches_ingest(&bytes, IngestConfig::strict());
            assert_stream_matches_ingest(&bytes, IngestConfig::salvage());
        }
    }

    #[test]
    fn streaming_matches_in_memory_on_torn_logs() {
        let (records, samples) = sample_records(30);
        for format in [LogFormat::Text, LogFormat::Binary] {
            let whole = encode(format, &records, &samples, false);
            for cut in [whole.len(), whole.len() - 3, whole.len() / 2, 9] {
                let bytes = &whole[..cut];
                assert_stream_matches_ingest(bytes, IngestConfig::strict());
                assert_stream_matches_ingest(bytes, IngestConfig::salvage());
            }
        }
    }

    #[test]
    fn streaming_matches_in_memory_on_duplicates_and_garbage() {
        let (records, samples) = sample_records(12);
        // Text: duplicate a record line, interleave garbage directives.
        let text = String::from_utf8(encode(LogFormat::Text, &records, &samples, true)).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let obj_line = *lines.iter().find(|l| l.starts_with("obj ")).unwrap();
        lines.insert(6, obj_line);
        lines.insert(3, "wat 1 2 3");
        lines.insert(9, "obj not-a-number");
        let mutated = lines.join("\n") + "\n";
        assert_stream_matches_ingest(mutated.as_bytes(), IngestConfig::salvage());
        assert_stream_matches_ingest(mutated.as_bytes(), IngestConfig::strict());
        // Salvage error budget: identical E008 on both paths.
        let bounded = IngestConfig {
            mode: crate::log::IngestMode::Salvage,
            max_errors: Some(1),
        };
        assert_stream_matches_ingest(mutated.as_bytes(), bounded);
        // Binary: flip a byte mid-frame (checksum error on one frame).
        let mut bin = encode(LogFormat::Binary, &records, &samples, true);
        let mid = bin.len() / 2;
        bin[mid] ^= 0x5a;
        assert_stream_matches_ingest(&bin, IngestConfig::salvage());
        assert_stream_matches_ingest(&bin, IngestConfig::strict());
    }

    #[test]
    fn empty_input_is_e001() {
        let r = TrickleReader {
            data: b"",
            pos: 0,
            max: 1,
        };
        let err = run(
            r,
            &ParallelConfig::default(),
            &IngestConfig::strict(),
            CollectFold::default(),
            WorkerPool::shared(),
        )
        .err()
        .expect("empty input must fail");
        match err {
            PipelineError::Log(e) => assert_eq!(e.code, ErrorCode::EmptyLog),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reader_errors_surface_as_io() {
        struct FailingReader {
            served: usize,
        }
        impl Read for FailingReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.served == 0 {
                    self.served = 1;
                    let header = b"heapdrag-log v1\n";
                    buf[..header.len()].copy_from_slice(header);
                    Ok(header.len())
                } else {
                    Err(std::io::Error::other("disk on fire"))
                }
            }
        }
        let err = run(
            FailingReader { served: 0 },
            &ParallelConfig::default(),
            &IngestConfig::salvage(),
            CollectFold::default(),
            WorkerPool::shared(),
        )
        .err()
        .expect("io error must surface");
        match err {
            PipelineError::Io(e) => assert_eq!(e.to_string(), "disk on fire"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn merge_degrades_a_lost_chunk_to_e010() {
        // The envelope of a chunk whose decode panicked arrives with
        // `out: None`; the merge must degrade it to a per-chunk E010 and
        // keep going — the exact path a pool-worker panic takes.
        let mut merger = Merger::new(CollectFold::default(), true);
        merger.consume(WorkDone {
            index: 0,
            units: 5,
            first: (3, 120),
            bytes: 400,
            out: None,
        });
        assert_eq!(merger.errors.len(), 1);
        assert_eq!(merger.errors[0].code, ErrorCode::WorkerLost);
        assert_eq!(merger.errors[0].line, 3);
        assert_eq!(merger.errors[0].chunk, Some(0));
        assert_eq!(merger.units_dropped, 5);
        assert_eq!(merger.bytes_skipped, 400);
        // Subsequent chunks still merge normally.
        let (records, samples) = sample_records(4);
        merger.consume(WorkDone {
            index: 1,
            units: 4,
            first: (8, 520),
            bytes: 300,
            out: Some((
                ChunkOut {
                    records,
                    samples,
                    retains: Vec::new(),
                    errors: Vec::new(),
                    units_dropped: 0,
                    bytes_skipped: 0,
                },
                ShardMetrics::default(),
            )),
        });
        assert_eq!(merger.records_kept, 4);
        assert_eq!(merger.errors.len(), 1, "the lost chunk stays one error");
    }

    #[test]
    fn pool_size_does_not_change_the_result() {
        // The same trace through pools of 1, 2, and 5 workers must yield
        // identical folds — ordering comes from the merge window, not
        // from worker count.
        let (records, samples) = sample_records(80);
        let bytes = encode(LogFormat::Text, &records, &samples, true);
        let par = ParallelConfig {
            shards: 4,
            chunk_records: 8,
        };
        let mut outputs = Vec::new();
        for workers in [1usize, 2, 5] {
            let pool = WorkerPool::new(workers);
            let out = run(
                std::io::Cursor::new(&bytes),
                &par,
                &IngestConfig::salvage(),
                CollectFold::default(),
                &pool,
            )
            .expect("clean log");
            outputs.push((out.fold.records, out.fold.samples, out.end_time));
            pool.shutdown();
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn backpressure_bounds_buffered_bytes() {
        // A slow fold forces the in-flight budget to fill; the peak must
        // stay within the budget plus one unit of scanner carry.
        struct SlowFold(CollectFold);
        impl StreamFold for SlowFold {
            fn record(&mut self, r: ObjectRecord) {
                std::thread::sleep(std::time::Duration::from_micros(50));
                self.0.record(r);
            }
            fn sample(&mut self, s: GcSample) {
                self.0.sample(s);
            }
        }
        let (records, samples) = sample_records(600);
        let bytes = encode(LogFormat::Text, &records, &samples, true);
        let par = ParallelConfig {
            shards: 2,
            chunk_records: 8,
        };
        let out = run(
            std::io::Cursor::new(&bytes),
            &par,
            &IngestConfig::strict(),
            SlowFold(CollectFold::default()),
            WorkerPool::shared(),
        )
        .expect("clean log");
        assert_eq!(out.fold.0.records.len(), records.len());
        let cap = 2 * par.shards as u64 + 2;
        assert!(
            out.stats.peak_buffered_bytes <= cap * out.stats.max_chunk_bytes + READ_BLOCK as u64,
            "peak {} vs cap {} chunks of max {}",
            out.stats.peak_buffered_bytes,
            cap,
            out.stats.max_chunk_bytes
        );
        assert!(out.stats.backpressure_stalls > 0, "slow fold must stall the reader");
        assert_eq!(out.stats.bytes_read, bytes.len() as u64);
    }
}
