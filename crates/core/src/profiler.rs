//! The on-line phase: a [`HeapObserver`] that maintains object trailers and
//! emits [`ObjectRecord`]s as objects die.

use std::collections::HashMap;

use heapdrag_obs::{Counter, Gauge, Registry};
use heapdrag_vm::error::VmError;
use heapdrag_vm::ids::ObjectId;
use heapdrag_vm::interp::{RunOutcome, Vm, VmConfig};
use heapdrag_vm::observer::{
    AllocEvent, FreeEvent, GcEvent, HeapObserver, RetainDelivery, RetainEvent, UseDelivery,
    UseEvent, UseKind,
};
use heapdrag_vm::program::Program;
use heapdrag_vm::site::SiteTable;

use crate::record::{GcSample, ObjectRecord, RetainRecord};

/// The live trailer attached to every object during the run.
#[derive(Debug, Clone, Copy)]
struct Trailer {
    record: ObjectRecord,
}

/// Metric handles for the on-line phase.
///
/// The `heapdrag_*` family is the **reconciliation surface**: the off-line
/// analyzer publishes the same names from the parsed log
/// ([`crate::log::ParsedLog::publish_metrics`]), and the two snapshots must
/// agree exactly. `profiler_events_total{kind="..."}` additionally counts
/// raw observer callbacks per event kind.
#[derive(Debug, Clone)]
pub struct ProfilerMetrics {
    created: Counter,
    alloc_bytes: Counter,
    reclaimed: Counter,
    at_exit: Counter,
    samples: Counter,
    retains: Counter,
    end_time: Gauge,
    ev_alloc: Counter,
    ev_free: Counter,
    ev_deep_gc: Counter,
    ev_exit: Counter,
    ev_use: [Counter; UseKind::ALL.len()],
}

impl ProfilerMetrics {
    /// Registers (or re-attaches to) the profiler metric family in
    /// `registry`.
    pub fn register(registry: &Registry) -> Self {
        ProfilerMetrics {
            created: registry.counter("heapdrag_objects_created_total"),
            alloc_bytes: registry.counter("heapdrag_alloc_bytes_total"),
            reclaimed: registry.counter("heapdrag_objects_reclaimed_total"),
            at_exit: registry.counter("heapdrag_objects_at_exit_total"),
            samples: registry.counter("heapdrag_deep_gc_samples_total"),
            retains: registry.counter("heapdrag_retain_samples_total"),
            end_time: registry.gauge("heapdrag_end_time_bytes"),
            ev_alloc: registry.counter("profiler_events_total{kind=\"alloc\"}"),
            ev_free: registry.counter("profiler_events_total{kind=\"free\"}"),
            ev_deep_gc: registry.counter("profiler_events_total{kind=\"deep_gc\"}"),
            ev_exit: registry.counter("profiler_events_total{kind=\"exit\"}"),
            ev_use: std::array::from_fn(|i| {
                let kind = UseKind::ALL[i].name();
                registry.counter(&format!("profiler_events_total{{kind=\"use_{kind}\"}}"))
            }),
        }
    }
}

/// A drag profiler: attach to a [`Vm`] run (or use the
/// [`profile`] convenience) and collect per-object records plus deep-GC
/// samples.
#[derive(Debug, Default)]
pub struct DragProfiler {
    live: HashMap<ObjectId, Trailer>,
    records: Vec<ObjectRecord>,
    samples: Vec<GcSample>,
    retains: Vec<RetainRecord>,
    end_time: u64,
    metrics: Option<ProfilerMetrics>,
}

impl DragProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profiler that publishes its event counts into `registry`.
    pub fn with_metrics(registry: &Registry) -> Self {
        DragProfiler {
            metrics: Some(ProfilerMetrics::register(registry)),
            ..Self::default()
        }
    }

    /// Consumes the profiler, yielding records, samples, and retain
    /// samples.
    pub fn into_parts(self) -> (Vec<ObjectRecord>, Vec<GcSample>, Vec<RetainRecord>) {
        (self.records, self.samples, self.retains)
    }

    /// Counts a finished record — the single bookkeeping point both
    /// [`HeapObserver::on_free`] and the defensive exit flush go through, so
    /// every object ends up in exactly one of reclaimed / at-exit.
    fn note_record(&self, record: &ObjectRecord) {
        if let Some(m) = &self.metrics {
            if record.at_exit {
                m.at_exit.inc();
            } else {
                m.reclaimed.inc();
            }
        }
    }
}

impl HeapObserver for DragProfiler {
    fn on_alloc(&mut self, event: AllocEvent) {
        if let Some(m) = &self.metrics {
            m.created.inc();
            m.alloc_bytes.add(event.size);
            m.ev_alloc.inc();
        }
        self.live.insert(
            event.object,
            Trailer {
                record: ObjectRecord {
                    object: event.object,
                    class: event.class,
                    size: event.size,
                    created: event.time,
                    freed: event.time,
                    last_use: None,
                    alloc_site: event.site,
                    last_use_site: None,
                    at_exit: false,
                },
            },
        );
    }

    fn on_use(&mut self, event: UseEvent) {
        if let Some(m) = &self.metrics {
            m.ev_use[event.kind as usize].inc();
        }
        if let Some(t) = self.live.get_mut(&event.object) {
            t.record.last_use = Some(event.time);
            t.record.last_use_site = Some(event.site);
        }
    }

    fn on_free(&mut self, event: FreeEvent) {
        if let Some(m) = &self.metrics {
            m.ev_free.inc();
        }
        if let Some(mut t) = self.live.remove(&event.object) {
            t.record.freed = event.time;
            t.record.at_exit = event.at_exit;
            self.note_record(&t.record);
            self.records.push(t.record);
        }
    }

    fn on_deep_gc(&mut self, event: GcEvent) {
        if let Some(m) = &self.metrics {
            m.samples.inc();
            m.ev_deep_gc.inc();
        }
        self.samples.push(GcSample {
            time: event.time,
            reachable_bytes: event.reachable_bytes,
            reachable_count: event.reachable_count,
        });
    }

    fn on_retain_sample(&mut self, event: RetainEvent) {
        if let Some(m) = &self.metrics {
            m.retains.inc();
        }
        // The sampled object is alive (it survived the mark), so its
        // trailer resolves the allocation site.
        if let Some(t) = self.live.get(&event.object) {
            self.retains.push(RetainRecord {
                alloc_site: t.record.alloc_site,
                size: event.size,
                time: event.time,
                depth: event.path.depth,
                truncated: event.path.truncated,
                path: event.path.text,
            });
        }
    }

    fn on_exit(&mut self, time: u64) {
        self.end_time = time;
        if let Some(m) = &self.metrics {
            m.ev_exit.inc();
            m.end_time.set(i64::try_from(time).unwrap_or(i64::MAX));
        }
        // Any objects the VM did not report at exit (it normally reports
        // all survivors) are flushed defensively here.
        let leftovers: Vec<ObjectId> = self.live.keys().copied().collect();
        for id in leftovers {
            let mut t = self.live.remove(&id).expect("key just listed");
            t.record.freed = time;
            t.record.at_exit = true;
            self.note_record(&t.record);
            self.records.push(t.record);
        }
        self.records.sort_by_key(|r| r.object);
    }

    /// The trailer update is last-write-wins per object, so the fast
    /// interpreter may deliver only the final use per object per GC window
    /// — the paper's "touch the trailer once per handle", batched.
    fn use_delivery(&self) -> UseDelivery {
        UseDelivery::Coalesced
    }

    /// Retain samples are welcome whenever the VM is configured to draw
    /// them; with no [`RetainConfig`](heapdrag_vm::retain::RetainConfig)
    /// on the VM this hint alone changes nothing.
    fn retain_delivery(&self) -> RetainDelivery {
        RetainDelivery::Sample
    }
}

/// A finished profiling run: records, samples, the site table for naming,
/// and the program outcome.
#[derive(Debug)]
pub struct ProfileRun {
    /// One record per object that lived during the run.
    pub records: Vec<ObjectRecord>,
    /// Deep-GC samples, in time order.
    pub samples: Vec<GcSample>,
    /// Retaining-path samples, in draw order (empty unless the config
    /// enables sampling).
    pub retains: Vec<RetainRecord>,
    /// Site table for resolving chain ids to code locations.
    pub sites: SiteTable,
    /// The VM run outcome (program output, steps, GC statistics).
    pub outcome: RunOutcome,
}

impl ProfileRun {
    /// Streams this run's trace to `writer` in `format` — the profiler's
    /// phase-1 output path (also reachable as
    /// [`crate::Pipeline::write_to`]). The trace goes through a streaming
    /// [`crate::codec::TraceSink`], so it never materialises as one
    /// in-memory buffer.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn write_log_to<W: std::io::Write>(
        &self,
        program: &Program,
        format: crate::codec::LogFormat,
        writer: W,
    ) -> std::io::Result<u64> {
        crate::log::write_run_to(self, program, format, writer)
    }
}

/// Runs `program` under the drag profiler.
///
/// `config` is usually [`VmConfig::profiling`] (deep GC every 100 KB); the
/// deep-GC interval and site depth may be adjusted for
/// precision/overhead trade-offs, as §2.1.1 of the paper discusses.
///
/// # Errors
///
/// Propagates any [`VmError`] from the run.
pub fn profile(program: &Program, input: &[i64], config: VmConfig) -> Result<ProfileRun, VmError> {
    profile_with(program, input, config, None)
}

/// [`profile`], optionally publishing on-line metrics into `registry`:
/// the VM family (`vm_*`, via [`Vm::attach_metrics`]) and the profiler
/// family (`heapdrag_*`, `profiler_events_total{...}`, via
/// [`DragProfiler::with_metrics`]).
///
/// # Errors
///
/// Propagates any [`VmError`] from the run.
pub fn profile_with(
    program: &Program,
    input: &[i64],
    config: VmConfig,
    registry: Option<&Registry>,
) -> Result<ProfileRun, VmError> {
    let mut profiler = match registry {
        Some(r) => DragProfiler::with_metrics(r),
        None => DragProfiler::new(),
    };
    let mut vm = Vm::new(program, config);
    if let Some(r) = registry {
        vm.attach_metrics(r);
    }
    let outcome = vm.run_observed(input, &mut profiler)?;
    let (records, samples, retains) = profiler.into_parts();
    Ok(ProfileRun {
        records,
        samples,
        retains,
        sites: vm.into_sites(),
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;
    use heapdrag_vm::value::Value;

    /// A program that allocates three objects with distinct lifetimes:
    /// one used then dropped, one never used, one held to exit.
    fn lifetime_program() -> (Program, heapdrag_vm::ids::ClassId) {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("Thing")
            .field("f", Visibility::Private)
            .finish();
        let filler = b.declare_method("filler", None, true, 0, 1);
        {
            // Allocate ~120KB of garbage to force a deep GC in between.
            let mut m = b.begin_body(filler);
            m.push_int(0).store(0);
            m.label("loop");
            m.load(0).push_int(200).cmpge().branch("done");
            m.push_int(64).new_array().pop();
            m.load(0).push_int(1).add().store(0);
            m.jump("loop");
            m.label("done").ret();
            m.finish();
        }
        let holder = b.static_var("Holder.survivor", Visibility::Public, Value::Null);
        let main = b.declare_method("main", None, true, 1, 4);
        {
            let mut m = b.begin_body(main);
            // used: allocate, use, drop reference
            m.mark("used thing").new_obj(c).store(1);
            m.load(1).push_int(1).putfield(0);
            m.push_null().store(1);
            // never used: allocate, drop
            m.mark("never-used thing").new_obj(c).store(2);
            m.push_null().store(2);
            // survivor: allocate, keep reachable from a static
            m.mark("survivor").new_obj(c).store(3);
            m.load(3).putstatic(holder);
            m.call(filler);
            m.load(3).push_int(2).putfield(0);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), c)
    }

    #[test]
    fn profiler_captures_lifetimes() {
        let (p, c) = lifetime_program();
        let run = profile(&p, &[], VmConfig::profiling()).unwrap();
        let things: Vec<_> = run.records.iter().filter(|r| r.class == c).collect();
        assert_eq!(things.len(), 3);
        let used = &things[0];
        let never = &things[1];
        let survivor = &things[2];
        assert!(used.last_use.is_some());
        assert!(used.freed < run.outcome.end_time);
        assert!(never.is_never_used(0));
        assert!(survivor.at_exit);
        assert_eq!(survivor.freed, run.outcome.end_time);
        assert!(survivor.last_use.is_some());
    }

    #[test]
    fn samples_are_taken_every_interval() {
        let (p, _) = lifetime_program();
        let run = profile(&p, &[], VmConfig::profiling()).unwrap();
        // ~205 KB of allocation at 100 KB interval → at least the exit
        // sample plus one periodic sample.
        assert!(run.samples.len() >= 2, "got {} samples", run.samples.len());
        assert!(run.samples.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn smaller_interval_more_samples() {
        let (p, _) = lifetime_program();
        let coarse = profile(&p, &[], VmConfig::profiling()).unwrap();
        let mut fine_cfg = VmConfig::profiling();
        fine_cfg.deep_gc_interval = Some(25 * 1024);
        let fine = profile(&p, &[], fine_cfg).unwrap();
        assert!(fine.samples.len() > coarse.samples.len());
    }

    #[test]
    fn metrics_reconcile_with_collected_records() {
        let (p, _) = lifetime_program();
        let registry = Registry::new();
        let run = profile_with(&p, &[], VmConfig::profiling(), Some(&registry)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["heapdrag_objects_created_total"],
            run.records.len() as u64
        );
        assert_eq!(
            snap.counters["heapdrag_alloc_bytes_total"],
            run.records.iter().map(|r| r.size).sum::<u64>()
        );
        let at_exit = run.records.iter().filter(|r| r.at_exit).count() as u64;
        assert_eq!(snap.counters["heapdrag_objects_at_exit_total"], at_exit);
        assert_eq!(
            snap.counters["heapdrag_objects_reclaimed_total"],
            run.records.len() as u64 - at_exit
        );
        assert_eq!(
            snap.counters["heapdrag_deep_gc_samples_total"],
            run.samples.len() as u64
        );
        assert_eq!(
            snap.gauges["heapdrag_end_time_bytes"],
            run.outcome.end_time as i64
        );
        // VM-side counters agree with the outcome too.
        let dispatch_total: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("vm_dispatch_total{"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(dispatch_total, run.outcome.steps);
        assert_eq!(snap.counters["vm_deep_gc_total"], run.outcome.deep_gcs);
        assert_eq!(
            snap.counters["vm_heap_alloc_bytes_total"],
            run.outcome.heap.allocated_bytes
        );
    }

    #[test]
    fn drag_identity_over_all_records() {
        let (p, _) = lifetime_program();
        let run = profile(&p, &[], VmConfig::profiling()).unwrap();
        for r in &run.records {
            assert_eq!(r.reachable_product(), r.in_use_product() + r.drag());
            assert!(r.created <= r.freed);
            if let Some(u) = r.last_use {
                assert!(u >= r.created && u <= r.freed);
            }
        }
    }
}
