//! Original-vs-revised savings, as reported in Tables 2 and 3 of the paper.

use crate::integrals::Integrals;

/// Savings of a revised run relative to an original run.
///
/// *Space saving* is the relative reduction of the reachable integral.
/// *Drag saving* is the reduction of the reachable integral as a fraction
/// of the *original drag*; it exceeds 100 % when the revised reachable
/// integral drops below the original in-use integral (as for `mc` in the
/// paper, 168 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsReport {
    /// Integrals of the original run.
    pub original: Integrals,
    /// Integrals of the revised run.
    pub reduced: Integrals,
}

impl SavingsReport {
    /// Builds a report from the two runs' integrals.
    pub fn new(original: Integrals, reduced: Integrals) -> Self {
        SavingsReport { original, reduced }
    }

    /// Space saving ratio in percent:
    /// `(1 − reduced.reachable / original.reachable) · 100`.
    pub fn space_saving_pct(&self) -> f64 {
        if self.original.reachable == 0 {
            return 0.0;
        }
        (1.0 - self.reduced.reachable as f64 / self.original.reachable as f64) * 100.0
    }

    /// Drag saving ratio in percent:
    /// `(original.reachable − reduced.reachable) / original.drag · 100`.
    pub fn drag_saving_pct(&self) -> f64 {
        let drag = self.original.drag();
        if drag == 0 {
            return 0.0;
        }
        let saved = self.original.reachable as f64 - self.reduced.reachable as f64;
        saved / drag as f64 * 100.0
    }

    /// True when the revised reachable integral dropped below even the
    /// original in-use integral (drag saving above 100 %).
    pub fn beats_original_in_use(&self) -> bool {
        self.reduced.reachable < self.original.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrals(reachable: u128, in_use: u128) -> Integrals {
        Integrals { reachable, in_use }
    }

    #[test]
    fn basic_savings() {
        // original: reachable 1000, in-use 600 → drag 400
        // reduced: reachable 800
        let s = SavingsReport::new(integrals(1000, 600), integrals(800, 600));
        assert!((s.space_saving_pct() - 20.0).abs() < 1e-9);
        assert!((s.drag_saving_pct() - 50.0).abs() < 1e-9);
        assert!(!s.beats_original_in_use());
    }

    #[test]
    fn mc_style_over_100_percent_drag_saving() {
        // Revised reachable (500) below original in-use (600): the revision
        // eliminated allocations entirely, not just drag.
        let s = SavingsReport::new(integrals(1000, 600), integrals(500, 450));
        assert!(s.drag_saving_pct() > 100.0);
        assert!(s.beats_original_in_use());
    }

    #[test]
    fn db_style_no_savings() {
        let s = SavingsReport::new(integrals(1000, 900), integrals(1000, 900));
        assert_eq!(s.space_saving_pct(), 0.0);
        assert_eq!(s.drag_saving_pct(), 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let s = SavingsReport::new(integrals(0, 0), integrals(0, 0));
        assert_eq!(s.space_saving_pct(), 0.0);
        assert_eq!(s.drag_saving_pct(), 0.0);
    }

    #[test]
    fn negative_saving_when_revision_regresses() {
        let s = SavingsReport::new(integrals(1000, 600), integrals(1100, 600));
        assert!(s.space_saving_pct() < 0.0);
        assert!(s.drag_saving_pct() < 0.0);
    }
}
