//! The off-line phase: partition dragged objects by site and produce
//! drag-sorted reports (§2.2 of the paper).
//!
//! The partitioning is data-parallel: the record slice is split into
//! contiguous shards, each shard accumulates *partial groups* (exact,
//! order-independent integer sums — including the drag moments lifetime
//! classification needs, see `crate::pattern::PatternSums`) on its own
//! worker thread, and a commutative merge combines the shards. Because
//! every per-group quantity, classification included, is derived from
//! those sums after the merge, the report is byte-identical for every
//! shard count — and for the streaming ingest path, which folds records
//! into the same sums chunk by chunk without ever materialising the
//! record vector. See [`crate::parallel`] for the configuration and
//! [`crate::stream`] for the streaming fold.

use std::collections::HashMap;
use std::time::Instant;

use heapdrag_vm::ids::{ChainId, SiteId};

pub(crate) use crate::engine::{accumulate_shard, PartialStats, ShardAccum};
use crate::integrals::Integrals;
use crate::parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
use crate::pattern::{classify_from_sums, LifetimePattern, PatternConfig, TransformKind};
use crate::record::{ObjectRecord, RetainRecord};

/// Aggregate statistics for one group of objects (a partition cell).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of objects in the group.
    pub objects: u64,
    /// Objects never used (within the constructor window).
    pub never_used: u64,
    /// Total bytes allocated by the group.
    pub bytes: u64,
    /// Accumulated drag space-time product (byte²).
    pub drag: u128,
    /// Accumulated drag due to never-used objects only (byte²).
    pub never_used_drag: u128,
    /// Accumulated reachable space-time product (byte²).
    pub reachable: u128,
    /// Accumulated in-use space-time product (byte²).
    pub in_use: u128,
    /// Lifetime behaviour classification.
    pub pattern: LifetimePattern,
}

impl GroupStats {
    /// The rewriting suggested by the group's lifetime pattern.
    pub fn suggested_transform(&self) -> TransformKind {
        self.pattern.suggested_transform()
    }
}

/// Drag accumulated per nested allocation site.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedSiteEntry {
    /// The nested allocation site (call chain, innermost first).
    pub site: ChainId,
    /// Aggregates for its objects.
    pub stats: GroupStats,
}

/// Drag accumulated per coarse (innermost-only) allocation site.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseSiteEntry {
    /// The allocation site proper.
    pub site: SiteId,
    /// Aggregates for its objects.
    pub stats: GroupStats,
}

/// Drag accumulated per (nested allocation site, nested last-use site) pair;
/// the last-use site hints at where a reference goes dead (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocUsePairEntry {
    /// The nested allocation site.
    pub alloc_site: ChainId,
    /// The nested last-use site; `None` groups the never-used objects.
    pub last_use_site: Option<ChainId>,
    /// Aggregates for the pair.
    pub stats: GroupStats,
}

/// One sampled retaining path of an allocation site, with its sampled
/// weight. Weights are exact integer sums of the sampled objects' sizes,
/// so the entry is identical whatever order the samples arrived in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainPathEntry {
    /// The rendered access path, root first, e.g.
    /// `static Holder.survivor -> Thing.next`.
    pub path: String,
    /// Samples that observed this path for this site.
    pub samples: u64,
    /// Total size of the sampled objects (the path's sampled weight).
    pub bytes: u64,
    /// True if any sample hit the depth bound before reaching the object.
    pub truncated: bool,
    /// Largest edge-step count among the samples.
    pub max_depth: u32,
}

/// Sampled retaining-path summary for one allocation site: who was
/// holding this site's surviving objects at deep-GC censuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRetainEntry {
    /// The nested allocation site of the sampled objects.
    pub site: ChainId,
    /// Total samples drawn for this site.
    pub samples: u64,
    /// Total sampled bytes for this site.
    pub bytes: u64,
    /// Distinct paths, heaviest first (bytes desc, samples desc, path asc).
    pub paths: Vec<RetainPathEntry>,
}

impl SiteRetainEntry {
    /// The heaviest sampled path, if any — the optimizer's anchor.
    pub fn dominant_path(&self) -> Option<&RetainPathEntry> {
        self.paths.first()
    }
}

/// The full output of the off-line analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DragReport {
    /// Sites sorted by accumulated drag, largest first.
    pub by_nested_site: Vec<NestedSiteEntry>,
    /// Coarse partition (allocation site only), sorted by drag.
    pub by_coarse_site: Vec<CoarseSiteEntry>,
    /// Partition by (allocation site, last-use site), sorted by drag.
    pub by_alloc_and_last_use: Vec<AllocUsePairEntry>,
    /// Nested sites whose objects are *all* never-used — the paper's "sure
    /// bet" list — sorted by drag.
    pub never_used_sites: Vec<NestedSiteEntry>,
    /// Sampled retaining-path summaries per site, heaviest first. Empty
    /// until [`attach_retains`](Self::attach_retains) is called (and
    /// always empty when sampling was off), so reports without samples
    /// are unchanged byte-for-byte.
    pub retaining: Vec<SiteRetainEntry>,
    /// Whole-run integrals.
    pub totals: Integrals,
}

impl DragReport {
    /// Total drag across the run (byte²).
    pub fn total_drag(&self) -> u128 {
        self.totals.drag()
    }

    /// The entry for a specific nested site, if present.
    pub fn nested_site(&self, site: ChainId) -> Option<&NestedSiteEntry> {
        self.by_nested_site.iter().find(|e| e.site == site)
    }

    /// The retaining-path summary for a specific nested site, if any
    /// samples were attached for it.
    pub fn retain_entry(&self, site: ChainId) -> Option<&SiteRetainEntry> {
        self.retaining.iter().find(|e| e.site == site)
    }

    /// Folds retaining-path samples into per-site summaries and attaches
    /// them to the report.
    ///
    /// Aggregation is keyed by `(site, path)` with exact integer sums, and
    /// every sort key is total (path strings are unique within a site), so
    /// the result is byte-identical for any sample order — which is why
    /// the sharded ingest can hand the merged sample vector over in
    /// whatever order the shards produced. Calling with an empty slice
    /// leaves the report untouched.
    pub fn attach_retains(&mut self, retains: &[RetainRecord]) {
        if retains.is_empty() {
            return;
        }
        let mut sites: HashMap<ChainId, HashMap<&str, RetainPathEntry>> = HashMap::new();
        for r in retains {
            let paths = sites.entry(r.alloc_site).or_default();
            let e = paths.entry(r.path.as_str()).or_insert_with(|| RetainPathEntry {
                path: r.path.clone(),
                samples: 0,
                bytes: 0,
                truncated: false,
                max_depth: 0,
            });
            e.samples += 1;
            e.bytes += r.size;
            e.truncated |= r.truncated;
            e.max_depth = e.max_depth.max(r.depth);
        }
        let mut retaining: Vec<SiteRetainEntry> = sites
            .into_iter()
            .map(|(site, paths)| {
                let mut paths: Vec<RetainPathEntry> = paths.into_values().collect();
                paths.sort_by(|a, b| {
                    b.bytes
                        .cmp(&a.bytes)
                        .then(b.samples.cmp(&a.samples))
                        .then(a.path.cmp(&b.path))
                });
                SiteRetainEntry {
                    site,
                    samples: paths.iter().map(|p| p.samples).sum(),
                    bytes: paths.iter().map(|p| p.bytes).sum(),
                    paths,
                }
            })
            .collect();
        retaining.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.site.cmp(&b.site)));
        self.retaining = retaining;
    }

    /// Publishes report shape and totals into `registry` as
    /// `offline_report_*` gauges. Drag is a `byte²` `u128`; it is saturated
    /// to `i64::MAX` for the gauge (the exact value stays in the report).
    pub fn publish_metrics(&self, registry: &heapdrag_obs::Registry) {
        let g = |name: &str, v: usize| {
            registry
                .gauge(name)
                .set(i64::try_from(v).unwrap_or(i64::MAX));
        };
        g("offline_report_nested_sites", self.by_nested_site.len());
        g("offline_report_coarse_sites", self.by_coarse_site.len());
        g("offline_report_pairs", self.by_alloc_and_last_use.len());
        g("offline_report_never_used_sites", self.never_used_sites.len());
        registry
            .gauge("offline_total_drag_bytes2")
            .set(i64::try_from(self.total_drag()).unwrap_or(i64::MAX));
    }
}

/// Configuration of the off-line analyzer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalyzerConfig {
    /// Pattern-classification thresholds.
    pub patterns: PatternConfig,
}

/// The off-line analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DragAnalyzer {
    config: AnalyzerConfig,
}

/// Finishes one merged group: copies the exact sums and derives the
/// classification from them — a constant-time step per group, identical
/// whatever order or sharding produced the sums.
fn group_stats(partial: &PartialStats, patterns: &PatternConfig) -> GroupStats {
    GroupStats {
        objects: partial.pattern.objects,
        never_used: partial.pattern.never_used,
        bytes: partial.bytes,
        drag: partial.pattern.drag,
        never_used_drag: partial.never_used_drag,
        reachable: partial.reachable,
        in_use: partial.in_use,
        pattern: classify_from_sums(&partial.pattern, patterns),
    }
}

/// Turns merged groups into report entries. Classification is a
/// constant-time derivation from the sums, so no fan-out is needed; the
/// caller sorts the entries with a total order.
fn finalize_groups<K, E, M>(
    groups: HashMap<K, PartialStats>,
    patterns: &PatternConfig,
    make: M,
) -> Vec<E>
where
    M: Fn(K, GroupStats) -> E,
{
    groups
        .into_iter()
        .map(|(k, g)| make(k, group_stats(&g, patterns)))
        .collect()
}

impl DragAnalyzer {
    /// Creates an analyzer with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with explicit thresholds.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        DragAnalyzer { config }
    }

    /// The thresholds this analyzer runs with.
    pub(crate) fn config(&self) -> &AnalyzerConfig {
        &self.config
    }

    /// Partitions `records` (with the innermost-site resolver `innermost`,
    /// typically [`SiteTable::innermost`](heapdrag_vm::site::SiteTable::innermost))
    /// and produces the report. Sequential — the `shards = 1` special case
    /// of [`analyze_sharded`](Self::analyze_sharded), kept separate so
    /// resolvers need not be [`Sync`].
    pub fn analyze<F>(&self, records: &[ObjectRecord], innermost: F) -> DragReport
    where
        F: Fn(ChainId) -> Option<SiteId>,
    {
        let accum = accumulate_shard(records, &self.config.patterns, &innermost);
        self.finalize(accum)
    }

    /// The sharded analysis: splits `records` into
    /// [`ParallelConfig::shards`] contiguous shards, accumulates each as a
    /// job on the shared [`WorkerPool`](crate::serve::WorkerPool), merges
    /// the partial groups
    /// deterministically, and classifies the merged groups. The report is
    /// byte-identical to [`analyze`](Self::analyze) for every shard count;
    /// the returned [`ParallelMetrics`] carry per-shard record counts and
    /// timings for the bench harness.
    #[deprecated(note = "use `Pipeline::options().shards(n).analyze_records(records, innermost)`")]
    pub fn analyze_sharded<F>(
        &self,
        records: &[ObjectRecord],
        innermost: F,
        par: &ParallelConfig,
    ) -> (DragReport, ParallelMetrics)
    where
        F: Fn(ChainId) -> Option<SiteId> + Sync,
    {
        self.analyze_sharded_impl(records, innermost, par)
    }

    /// The analysis engine behind [`crate::Pipeline::analyze_records`] and
    /// the deprecated [`analyze_sharded`](Self::analyze_sharded) wrapper.
    pub(crate) fn analyze_sharded_impl<F>(
        &self,
        records: &[ObjectRecord],
        innermost: F,
        par: &ParallelConfig,
    ) -> (DragReport, ParallelMetrics)
    where
        F: Fn(ChainId) -> Option<SiteId> + Sync,
    {
        let start = Instant::now();
        let patterns = &self.config.patterns;
        let workers = par.effective_shards(records.len());
        let mut metrics = ParallelMetrics::default();

        let split_start = Instant::now();
        // Contiguous, near-even shards; shard i covers
        // records[bounds[i]..bounds[i + 1]].
        let per_shard = records.len().div_ceil(workers.max(1));
        let slices: Vec<&[ObjectRecord]> = (0..workers)
            .map(|i| {
                let lo = (i * per_shard).min(records.len());
                let hi = ((i + 1) * per_shard).min(records.len());
                &records[lo..hi]
            })
            .collect();
        metrics.split_elapsed = split_start.elapsed();

        let innermost = &innermost;
        let shard_results: Vec<(ShardAccum, ShardMetrics)> = if workers <= 1 {
            let t = Instant::now();
            let accum = accumulate_shard(records, patterns, innermost);
            let m = ShardMetrics {
                shard: 0,
                records: records.len() as u64,
                samples: 0,
                groups: accum.group_count(),
                elapsed: t.elapsed(),
            };
            vec![(accum, m)]
        } else {
            // One borrowing job per shard on the shared pool; `scope`
            // blocks until every slot is written.
            let mut slots: Vec<Option<(ShardAccum, ShardMetrics)>> =
                slices.iter().map(|_| None).collect();
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter_mut()
                .zip(slices.iter().copied())
                .enumerate()
                .map(|(shard, (slot, slice))| {
                    Box::new(move || {
                        let t = Instant::now();
                        let accum = accumulate_shard(slice, patterns, innermost);
                        let m = ShardMetrics {
                            shard,
                            records: slice.len() as u64,
                            samples: 0,
                            groups: accum.group_count(),
                            elapsed: t.elapsed(),
                        };
                        *slot = Some((accum, m));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            crate::serve::WorkerPool::shared().scope(jobs);
            slots
                .into_iter()
                .map(|s| s.expect("analysis shard panicked"))
                .collect()
        };

        let merge_start = Instant::now();
        let mut merged = ShardAccum::default();
        for (accum, m) in shard_results {
            merged.merge(accum);
            metrics.shards.push(m);
        }
        let report = self.finalize(merged);
        metrics.merge_elapsed = merge_start.elapsed();
        metrics.total_elapsed = start.elapsed();
        (report, metrics)
    }

    /// Classification, entry construction, and sorting over merged groups.
    pub(crate) fn finalize(&self, accum: ShardAccum) -> DragReport {
        let patterns = &self.config.patterns;
        let ShardAccum {
            nested,
            coarse,
            pairs,
            totals,
        } = accum;

        let mut by_nested_site: Vec<NestedSiteEntry> =
            finalize_groups(nested, patterns, |site, stats| NestedSiteEntry { site, stats });
        by_nested_site.sort_by(|a, b| b.stats.drag.cmp(&a.stats.drag).then(a.site.cmp(&b.site)));

        let mut by_coarse_site: Vec<CoarseSiteEntry> =
            finalize_groups(coarse, patterns, |site, stats| CoarseSiteEntry { site, stats });
        by_coarse_site.sort_by(|a, b| b.stats.drag.cmp(&a.stats.drag).then(a.site.cmp(&b.site)));

        let mut by_alloc_and_last_use: Vec<AllocUsePairEntry> =
            finalize_groups(pairs, patterns, |(alloc_site, last_use_site), stats| {
                AllocUsePairEntry {
                    alloc_site,
                    last_use_site,
                    stats,
                }
            });
        by_alloc_and_last_use.sort_by(|a, b| {
            b.stats
                .drag
                .cmp(&a.stats.drag)
                .then(a.alloc_site.cmp(&b.alloc_site))
                .then(a.last_use_site.cmp(&b.last_use_site))
        });

        let never_used_sites: Vec<NestedSiteEntry> = by_nested_site
            .iter()
            .filter(|e| e.stats.pattern == LifetimePattern::AllNeverUsed)
            .cloned()
            .collect();

        DragReport {
            by_nested_site,
            by_coarse_site,
            by_alloc_and_last_use,
            never_used_sites,
            retaining: Vec::new(),
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ClassId, ObjectId};

    fn record(
        id: u64,
        site: u32,
        created: u64,
        last_use: Option<u64>,
        freed: u64,
        size: u64,
    ) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(id),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(site),
            last_use_site: last_use.map(|_| ChainId(100 + site)),
            at_exit: false,
        }
    }

    fn analyze(records: &[ObjectRecord]) -> DragReport {
        // Innermost site of chain k is site k (identity-ish resolver).
        DragAnalyzer::new().analyze(records, |c| Some(SiteId(c.0)))
    }

    #[test]
    fn sites_sorted_by_drag() {
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),  // drag 900
            record(2, 1, 0, Some(90), 100, 10),  // drag 100
            record(3, 2, 0, None, 1000, 100),    // drag 100_000
        ];
        let report = analyze(&records);
        let order: Vec<u32> = report.by_nested_site.iter().map(|e| e.site.0).collect();
        assert_eq!(order, vec![2, 0, 1]);
        assert_eq!(report.by_nested_site[0].stats.drag, 100_000);
        assert_eq!(report.total_drag(), 101_000);
    }

    #[test]
    fn never_used_partition() {
        let records = vec![
            record(1, 0, 0, None, 100_000, 10),
            record(2, 0, 0, None, 100_000, 10),
            record(3, 1, 0, Some(50_000), 100_000, 10),
        ];
        let report = analyze(&records);
        assert_eq!(report.never_used_sites.len(), 1);
        assert_eq!(report.never_used_sites[0].site, ChainId(0));
        assert_eq!(report.never_used_sites[0].stats.never_used, 2);
        assert_eq!(
            report.never_used_sites[0].stats.pattern,
            LifetimePattern::AllNeverUsed
        );
    }

    #[test]
    fn pair_partition_separates_last_use_sites() {
        let mut a = record(1, 0, 0, Some(50_000), 100_000, 10);
        a.last_use_site = Some(ChainId(7));
        let mut b = record(2, 0, 0, Some(60_000), 100_000, 10);
        b.last_use_site = Some(ChainId(8));
        let c = record(3, 0, 0, None, 100_000, 10);
        let report = analyze(&[a, b, c]);
        assert_eq!(report.by_alloc_and_last_use.len(), 3);
        assert!(report
            .by_alloc_and_last_use
            .iter()
            .any(|e| e.last_use_site.is_none()));
    }

    #[test]
    fn coarse_partition_merges_chains_with_same_innermost() {
        // Chains 0 and 1 share innermost site 5; chain 2 maps to site 6.
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),
            record(2, 1, 0, Some(10), 100, 10),
            record(3, 2, 0, Some(10), 100, 10),
        ];
        let report = DragAnalyzer::new().analyze(&records, |c| {
            Some(if c.0 <= 1 { SiteId(5) } else { SiteId(6) })
        });
        assert_eq!(report.by_coarse_site.len(), 2);
        let merged = report
            .by_coarse_site
            .iter()
            .find(|e| e.site == SiteId(5))
            .unwrap();
        assert_eq!(merged.stats.objects, 2);
    }

    #[test]
    fn group_invariants() {
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),
            record(2, 0, 5, None, 50, 20),
        ];
        let report = analyze(&records);
        let e = &report.by_nested_site[0];
        assert_eq!(e.stats.reachable, e.stats.in_use + e.stats.drag);
        assert!(e.stats.never_used_drag <= e.stats.drag);
        assert_eq!(e.stats.bytes, 30);
    }

    #[test]
    fn sharded_matches_sequential_on_small_inputs() {
        let records: Vec<ObjectRecord> = (0..37)
            .map(|i| {
                record(
                    i,
                    (i % 5) as u32,
                    i * 3,
                    (i % 3 == 0).then_some(i * 3 + 40),
                    i * 3 + 200,
                    8 + (i % 7) * 16,
                )
            })
            .collect();
        let sequential = analyze(&records);
        for shards in [1, 2, 3, 8, 64] {
            let (sharded, metrics) = DragAnalyzer::new().analyze_sharded_impl(
                &records,
                |c| Some(SiteId(c.0)),
                &ParallelConfig::with_shards(shards),
            );
            assert_eq!(sharded, sequential, "shards = {shards}");
            assert_eq!(metrics.total_records(), records.len() as u64);
            assert_eq!(metrics.shards.len(), shards.min(records.len()));
        }
    }

    #[test]
    fn sharded_handles_empty_input() {
        let (report, metrics) = DragAnalyzer::new().analyze_sharded_impl(
            &[],
            |c| Some(SiteId(c.0)),
            &ParallelConfig::with_shards(4),
        );
        assert_eq!(report, analyze(&[]));
        assert_eq!(metrics.total_records(), 0);
    }
}
