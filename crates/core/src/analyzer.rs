//! The off-line phase: partition dragged objects by site and produce
//! drag-sorted reports (§2.2 of the paper).

use std::collections::HashMap;

use heapdrag_vm::ids::{ChainId, SiteId};

use crate::integrals::Integrals;
use crate::pattern::{classify, LifetimePattern, PatternConfig, TransformKind};
use crate::record::ObjectRecord;

/// Aggregate statistics for one group of objects (a partition cell).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Number of objects in the group.
    pub objects: u64,
    /// Objects never used (within the constructor window).
    pub never_used: u64,
    /// Total bytes allocated by the group.
    pub bytes: u64,
    /// Accumulated drag space-time product (byte²).
    pub drag: u128,
    /// Accumulated drag due to never-used objects only (byte²).
    pub never_used_drag: u128,
    /// Accumulated reachable space-time product (byte²).
    pub reachable: u128,
    /// Accumulated in-use space-time product (byte²).
    pub in_use: u128,
    /// Lifetime behaviour classification.
    pub pattern: LifetimePattern,
}

impl GroupStats {
    /// The rewriting suggested by the group's lifetime pattern.
    pub fn suggested_transform(&self) -> TransformKind {
        self.pattern.suggested_transform()
    }
}

/// Drag accumulated per nested allocation site.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedSiteEntry {
    /// The nested allocation site (call chain, innermost first).
    pub site: ChainId,
    /// Aggregates for its objects.
    pub stats: GroupStats,
}

/// Drag accumulated per coarse (innermost-only) allocation site.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseSiteEntry {
    /// The allocation site proper.
    pub site: SiteId,
    /// Aggregates for its objects.
    pub stats: GroupStats,
}

/// Drag accumulated per (nested allocation site, nested last-use site) pair;
/// the last-use site hints at where a reference goes dead (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocUsePairEntry {
    /// The nested allocation site.
    pub alloc_site: ChainId,
    /// The nested last-use site; `None` groups the never-used objects.
    pub last_use_site: Option<ChainId>,
    /// Aggregates for the pair.
    pub stats: GroupStats,
}

/// The full output of the off-line analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DragReport {
    /// Sites sorted by accumulated drag, largest first.
    pub by_nested_site: Vec<NestedSiteEntry>,
    /// Coarse partition (allocation site only), sorted by drag.
    pub by_coarse_site: Vec<CoarseSiteEntry>,
    /// Partition by (allocation site, last-use site), sorted by drag.
    pub by_alloc_and_last_use: Vec<AllocUsePairEntry>,
    /// Nested sites whose objects are *all* never-used — the paper's "sure
    /// bet" list — sorted by drag.
    pub never_used_sites: Vec<NestedSiteEntry>,
    /// Whole-run integrals.
    pub totals: Integrals,
}

impl DragReport {
    /// Total drag across the run (byte²).
    pub fn total_drag(&self) -> u128 {
        self.totals.drag()
    }

    /// The entry for a specific nested site, if present.
    pub fn nested_site(&self, site: ChainId) -> Option<&NestedSiteEntry> {
        self.by_nested_site.iter().find(|e| e.site == site)
    }
}

/// Configuration of the off-line analyzer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalyzerConfig {
    /// Pattern-classification thresholds.
    pub patterns: PatternConfig,
}

/// The off-line analyzer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DragAnalyzer {
    config: AnalyzerConfig,
}

impl DragAnalyzer {
    /// Creates an analyzer with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an analyzer with explicit thresholds.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        DragAnalyzer { config }
    }

    /// Partitions `records` (with the innermost-site resolver `innermost`,
    /// typically [`SiteTable::innermost`](heapdrag_vm::site::SiteTable::innermost))
    /// and produces the report.
    pub fn analyze<F>(&self, records: &[ObjectRecord], innermost: F) -> DragReport
    where
        F: Fn(ChainId) -> Option<SiteId>,
    {
        let window = self.config.patterns.ctor_use_window;

        let mut nested: HashMap<ChainId, Vec<&ObjectRecord>> = HashMap::new();
        let mut coarse: HashMap<SiteId, Vec<&ObjectRecord>> = HashMap::new();
        let mut pairs: HashMap<(ChainId, Option<ChainId>), Vec<&ObjectRecord>> = HashMap::new();
        for r in records {
            nested.entry(r.alloc_site).or_default().push(r);
            if let Some(s) = innermost(r.alloc_site) {
                coarse.entry(s).or_default().push(r);
            }
            let use_site = if r.is_never_used(window) {
                None
            } else {
                r.last_use_site
            };
            pairs.entry((r.alloc_site, use_site)).or_default().push(r);
        }

        let stats_of = |group: &[&ObjectRecord]| -> GroupStats {
            let mut s = GroupStats {
                objects: group.len() as u64,
                never_used: 0,
                bytes: 0,
                drag: 0,
                never_used_drag: 0,
                reachable: 0,
                in_use: 0,
                pattern: LifetimePattern::Mixed,
            };
            for r in group {
                s.bytes += r.size;
                s.drag += r.drag();
                s.reachable += r.reachable_product();
                s.in_use += r.in_use_product();
                if r.is_never_used(window) {
                    s.never_used += 1;
                    s.never_used_drag += r.drag();
                }
            }
            s.pattern = classify(group, &self.config.patterns);
            s
        };

        let mut by_nested_site: Vec<NestedSiteEntry> = nested
            .iter()
            .map(|(site, group)| NestedSiteEntry {
                site: *site,
                stats: stats_of(group),
            })
            .collect();
        by_nested_site.sort_by(|a, b| b.stats.drag.cmp(&a.stats.drag).then(a.site.cmp(&b.site)));

        let mut by_coarse_site: Vec<CoarseSiteEntry> = coarse
            .iter()
            .map(|(site, group)| CoarseSiteEntry {
                site: *site,
                stats: stats_of(group),
            })
            .collect();
        by_coarse_site.sort_by(|a, b| b.stats.drag.cmp(&a.stats.drag).then(a.site.cmp(&b.site)));

        let mut by_alloc_and_last_use: Vec<AllocUsePairEntry> = pairs
            .iter()
            .map(|((alloc, last_use), group)| AllocUsePairEntry {
                alloc_site: *alloc,
                last_use_site: *last_use,
                stats: stats_of(group),
            })
            .collect();
        by_alloc_and_last_use.sort_by(|a, b| {
            b.stats
                .drag
                .cmp(&a.stats.drag)
                .then(a.alloc_site.cmp(&b.alloc_site))
                .then(a.last_use_site.cmp(&b.last_use_site))
        });

        let never_used_sites: Vec<NestedSiteEntry> = by_nested_site
            .iter()
            .filter(|e| e.stats.pattern == LifetimePattern::AllNeverUsed)
            .cloned()
            .collect();

        DragReport {
            by_nested_site,
            by_coarse_site,
            by_alloc_and_last_use,
            never_used_sites,
            totals: Integrals::from_records(records),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ClassId, ObjectId};

    fn record(
        id: u64,
        site: u32,
        created: u64,
        last_use: Option<u64>,
        freed: u64,
        size: u64,
    ) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(id),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(site),
            last_use_site: last_use.map(|_| ChainId(100 + site)),
            at_exit: false,
        }
    }

    fn analyze(records: &[ObjectRecord]) -> DragReport {
        // Innermost site of chain k is site k (identity-ish resolver).
        DragAnalyzer::new().analyze(records, |c| Some(SiteId(c.0)))
    }

    #[test]
    fn sites_sorted_by_drag() {
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),  // drag 900
            record(2, 1, 0, Some(90), 100, 10),  // drag 100
            record(3, 2, 0, None, 1000, 100),    // drag 100_000
        ];
        let report = analyze(&records);
        let order: Vec<u32> = report.by_nested_site.iter().map(|e| e.site.0).collect();
        assert_eq!(order, vec![2, 0, 1]);
        assert_eq!(report.by_nested_site[0].stats.drag, 100_000);
        assert_eq!(report.total_drag(), 101_000);
    }

    #[test]
    fn never_used_partition() {
        let records = vec![
            record(1, 0, 0, None, 100_000, 10),
            record(2, 0, 0, None, 100_000, 10),
            record(3, 1, 0, Some(50_000), 100_000, 10),
        ];
        let report = analyze(&records);
        assert_eq!(report.never_used_sites.len(), 1);
        assert_eq!(report.never_used_sites[0].site, ChainId(0));
        assert_eq!(report.never_used_sites[0].stats.never_used, 2);
        assert_eq!(
            report.never_used_sites[0].stats.pattern,
            LifetimePattern::AllNeverUsed
        );
    }

    #[test]
    fn pair_partition_separates_last_use_sites() {
        let mut a = record(1, 0, 0, Some(50_000), 100_000, 10);
        a.last_use_site = Some(ChainId(7));
        let mut b = record(2, 0, 0, Some(60_000), 100_000, 10);
        b.last_use_site = Some(ChainId(8));
        let c = record(3, 0, 0, None, 100_000, 10);
        let report = analyze(&[a, b, c]);
        assert_eq!(report.by_alloc_and_last_use.len(), 3);
        assert!(report
            .by_alloc_and_last_use
            .iter()
            .any(|e| e.last_use_site.is_none()));
    }

    #[test]
    fn coarse_partition_merges_chains_with_same_innermost() {
        // Chains 0 and 1 share innermost site 5; chain 2 maps to site 6.
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),
            record(2, 1, 0, Some(10), 100, 10),
            record(3, 2, 0, Some(10), 100, 10),
        ];
        let report = DragAnalyzer::new().analyze(&records, |c| {
            Some(if c.0 <= 1 { SiteId(5) } else { SiteId(6) })
        });
        assert_eq!(report.by_coarse_site.len(), 2);
        let merged = report
            .by_coarse_site
            .iter()
            .find(|e| e.site == SiteId(5))
            .unwrap();
        assert_eq!(merged.stats.objects, 2);
    }

    #[test]
    fn group_invariants() {
        let records = vec![
            record(1, 0, 0, Some(10), 100, 10),
            record(2, 0, 5, None, 50, 20),
        ];
        let report = analyze(&records);
        let e = &report.by_nested_site[0];
        assert_eq!(e.stats.reachable, e.stats.in_use + e.stats.drag);
        assert!(e.stats.never_used_drag <= e.stats.drag);
        assert_eq!(e.stats.bytes, 30);
    }
}
