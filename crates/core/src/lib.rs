//! # heapdrag-core
//!
//! The drag heap profiler of *Heap Profiling for Space-Efficient Java*
//! (Shaham, Kolodner & Sagiv, PLDI 2001), on top of
//! [`heapdrag-vm`](heapdrag_vm).
//!
//! The tool has two phases:
//!
//! 1. **On-line** ([`profiler`]): a [`DragProfiler`] observes a VM run,
//!    maintaining a *trailer* per object — creation time, last-use time and
//!    site, size, nested allocation site — and emitting an
//!    [`record::ObjectRecord`] when the object is reclaimed (the VM forces a
//!    deep GC every 100 KB of allocation so collection time approximates
//!    unreachability time). Records can be serialised to a [`log`] file.
//! 2. **Off-line** ([`analyzer`]): partition records by nested allocation
//!    site, coarse site, and (allocation, last-use) site pair; accumulate
//!    the *drag* space-time product per site; classify each site's
//!    lifetime [`pattern`]; and print a drag-sorted [`report`] that points
//!    the programmer (or the `heapdrag-transform` optimizer) at the
//!    rewriting opportunities.
//!
//! [`timeline`] reconstructs Figure 2's reachable/in-use curves,
//! [`integrals`] the space-time integrals, and [`compare`] the savings
//! ratios of Tables 2 and 3.
//!
//! Every off-line entry point is reachable through one builder,
//! [`Pipeline`]: in-memory or streaming input, strict or salvage fault
//! policy, any shard count, either trace format. For production-size
//! traces both off-line stages — log decoding and per-site aggregation —
//! run sharded across worker threads; see [`parallel`] for the
//! [`ParallelConfig`] knobs and the determinism argument (reports are
//! byte-identical for every shard count). Traces larger than memory
//! stream through [`Pipeline::analyze_reader`], which reads any
//! [`std::io::Read`] in bounded memory (see [`stream`]).
//!
//! Logs from crashed, killed, or out-of-disk runs can still be analyzed:
//! salvage mode ([`Pipeline::salvage`]) drops what cannot be decoded,
//! repairs a missing end-of-log marker, and reports a [`SalvageSummary`];
//! see [`log`] for the stable [`ErrorCode`] taxonomy.
//!
//! ```
//! use heapdrag_core::{profile, DragAnalyzer, VmConfig};
//! use heapdrag_vm::ProgramBuilder;
//!
//! # fn main() -> Result<(), heapdrag_vm::VmError> {
//! let mut b = ProgramBuilder::new();
//! let main = b.declare_method("main", None, true, 1, 2);
//! {
//!     let mut m = b.begin_body(main);
//!     m.push_int(1000).mark("a big array").new_array().store(1);
//!     m.load(1).push_int(0).push_int(7).astore(); // one use
//!     m.ret();
//!     m.finish();
//! }
//! b.set_entry(main);
//! let program = b.finish()?;
//!
//! let run = profile(&program, &[], VmConfig::profiling())?;
//! let report = DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
//! assert_eq!(report.by_nested_site.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod codec;
pub mod compare;
pub mod engine;
pub mod histogram;
pub mod integrals;
pub mod live;
pub mod log;
pub mod parallel;
pub mod pattern;
pub mod pipeline;
pub mod profiler;
pub mod record;
pub mod report;
pub mod serve;
pub mod stream;
pub mod timeline;
mod u256;

pub use analyzer::{AnalyzerConfig, DragAnalyzer, DragReport};
pub use codec::{BinarySink, LogFormat, TextSink, TraceSink};
pub use compare::SavingsReport;
pub use engine::{
    ColdSite, DragEngine, EngineConfig, EngineSnapshot, IdleHistogram, SiteIdleSummary,
    SnapshotSite, WindowSpec,
};
pub use live::{run_live, LiveOptions, LiveRun};
pub use histogram::{Buckets, LifetimeHistogram};
pub use integrals::Integrals;
#[allow(deprecated)]
pub use log::{ingest_log, parse_log, parse_log_sharded, write_log, write_log_binary, write_log_to};
pub use log::{
    ErrorCode, IngestConfig, IngestMode, Ingested, LogError, ParsedLog, SalvageSummary,
};
pub use parallel::{ParallelConfig, ParallelMetrics, ShardMetrics};
pub use pipeline::{Pipeline, PipelineError, StreamReport};
pub use pattern::{LifetimePattern, PatternConfig, TransformKind};
pub use profiler::{profile, profile_with, DragProfiler, ProfileRun, ProfilerMetrics};
pub use record::{GcSample, ObjectRecord, RetainRecord};
pub use report::{anchor_site, ChainNamer, ProgramNamer, ReportSections};
#[allow(deprecated)]
pub use report::render;
pub use serve::{
    ServeConfig, ServeManager, SessionId, SessionSource, SessionSpec, SessionState,
    SessionSummary, WorkerPool,
};
pub use stream::StreamStats;
pub use timeline::{Timeline, TimelinePoint};

// Re-export the VM config so downstream users rarely need heapdrag-vm
// directly for simple profiling.
pub use heapdrag_vm::interp::VmConfig;
