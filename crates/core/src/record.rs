//! Per-object lifetime records — the contents of the paper's object
//! *trailers*, as written to the log when an object is reclaimed.

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

/// Everything the profiler knows about one object once it has died (or the
/// program has exited).
///
/// All times are in allocation-clock bytes. The paper's identities hold by
/// construction:
///
/// * *in-use time* = `last_use - created` (zero when never used),
/// * *drag time* = `freed - last_use` (the whole lifetime when never used),
/// * *drag* (space-time product) = `size * drag time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Run-unique object id.
    pub object: ObjectId,
    /// Class of the object.
    pub class: ClassId,
    /// Size in bytes (header + slots, aligned; excludes handle and trailer).
    pub size: u64,
    /// Creation time.
    pub created: u64,
    /// Time the object was collected — the approximation of when it became
    /// unreachable (deep GCs every 100 KB keep the approximation tight).
    pub freed: u64,
    /// Time of the last observed use, `None` if never used.
    pub last_use: Option<u64>,
    /// Nested allocation site.
    pub alloc_site: ChainId,
    /// Nested site of the last use, `None` if never used.
    pub last_use_site: Option<ChainId>,
    /// True if the object survived to program exit and was logged then.
    pub at_exit: bool,
}

impl ObjectRecord {
    /// True if the object was never used after creation, optionally
    /// widening "never" by `window` clock bytes to absorb uses that happen
    /// only during construction (the paper folds those into never-used).
    pub fn is_never_used(&self, window: u64) -> bool {
        match self.last_use {
            None => true,
            Some(t) => t.saturating_sub(self.created) <= window,
        }
    }

    /// Bytes of clock time the object was reachable.
    pub fn reachable_time(&self) -> u64 {
        self.freed.saturating_sub(self.created)
    }

    /// Bytes of clock time the object was in use (creation to last use).
    pub fn in_use_time(&self) -> u64 {
        match self.last_use {
            Some(t) => t.saturating_sub(self.created),
            None => 0,
        }
    }

    /// Bytes of clock time the object was dragged (last use, or creation if
    /// never used, to collection).
    pub fn drag_time(&self) -> u64 {
        let from = self.last_use.unwrap_or(self.created).max(self.created);
        self.freed.saturating_sub(from)
    }

    /// The drag space-time product: `size * drag_time` (byte²).
    pub fn drag(&self) -> u128 {
        self.size as u128 * self.drag_time() as u128
    }

    /// The reachable space-time product: `size * reachable_time` (byte²).
    pub fn reachable_product(&self) -> u128 {
        self.size as u128 * self.reachable_time() as u128
    }

    /// The in-use space-time product: `size * in_use_time` (byte²).
    pub fn in_use_product(&self) -> u128 {
        self.size as u128 * self.in_use_time() as u128
    }
}

/// One deep-GC sample: the reachable heap observed at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcSample {
    /// Allocation-clock time of the sample.
    pub time: u64,
    /// Bytes reachable (excluding pinned objects).
    pub reachable_bytes: u64,
    /// Objects reachable (excluding pinned objects).
    pub reachable_count: u64,
}

/// One retaining-path sample: a surviving object, attributed to its
/// allocation site, and the bounded access path that kept it reachable
/// at a deep-GC census (see `heapdrag_vm::retain`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RetainRecord {
    /// Nested allocation site of the sampled object.
    pub alloc_site: ChainId,
    /// Object size in bytes — the sample's weight.
    pub size: u64,
    /// Allocation-clock time of the census that drew the sample.
    pub time: u64,
    /// Number of edge steps between the root and the object.
    pub depth: u32,
    /// True when the real path was longer than the depth bound.
    pub truncated: bool,
    /// The rendered path, e.g. `static Holder.survivor -> Thing.next`.
    pub path: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(created: u64, last_use: Option<u64>, freed: u64, size: u64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(1),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(0),
            last_use_site: last_use.map(|_| ChainId(0)),
            at_exit: false,
        }
    }

    #[test]
    fn used_object_times() {
        let r = record(100, Some(300), 500, 24);
        assert_eq!(r.reachable_time(), 400);
        assert_eq!(r.in_use_time(), 200);
        assert_eq!(r.drag_time(), 200);
        assert_eq!(r.drag(), 24 * 200);
        assert_eq!(r.reachable_product(), 24 * 400);
        assert_eq!(r.in_use_product(), 24 * 200);
        assert!(!r.is_never_used(0));
    }

    #[test]
    fn never_used_object_drags_its_whole_life() {
        let r = record(100, None, 500, 16);
        assert_eq!(r.in_use_time(), 0);
        assert_eq!(r.drag_time(), 400);
        assert!(r.is_never_used(0));
    }

    #[test]
    fn constructor_window_folds_into_never_used() {
        let r = record(100, Some(100), 500, 16);
        assert!(r.is_never_used(0), "use with no allocation in between");
        let r = record(100, Some(140), 500, 16);
        assert!(!r.is_never_used(0));
        assert!(r.is_never_used(64), "inside the constructor window");
    }

    #[test]
    fn identities_hold() {
        let r = record(0, Some(70), 100, 8);
        assert_eq!(
            r.reachable_product(),
            r.in_use_product() + r.drag(),
            "reachable = in-use + drag, per object"
        );
    }
}
