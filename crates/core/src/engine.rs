//! The drag-engine core: one record-level aggregation fold shared by the
//! offline analyzer, the streaming pipeline, and the in-process live
//! profiler.
//!
//! Historically the per-site fold lived inside [`crate::analyzer`] (the
//! sharded record-slice path) and [`crate::pipeline`] (the streaming
//! path) as two thin private wrappers around the same accumulator. The
//! [`DragEngine`] extracts that fold behind one type so a third consumer
//! — the live in-VM feed of [`crate::live`] — folds events through
//! *exactly* the code path the offline report uses. Offline behaviour is
//! unchanged: an engine built with [`DragEngine::offline`] performs the
//! identical integer sums in the identical order, so reports stay
//! byte-identical.
//!
//! On top of the shared fold the engine offers two live-only dimensions:
//!
//! * **Rolling window** ([`WindowSpec::Rolling`]): a ring of per-site
//!   window buckets, `window / advance` slots wide, each accumulating
//!   the drag of records whose *free time* lands in its
//!   allocation-clock interval. A [snapshot](DragEngine::snapshot) sums
//!   the in-window buckets, so a long-running service sees "drag
//!   accumulated recently" instead of an ever-growing cumulative total.
//!   Ring slots are recycled in place as the clock advances (free times
//!   are nondecreasing), and stale slots are excluded by bucket index at
//!   snapshot time, so memory is O(slots × sites-per-slot).
//! * **Coldness**: a per-object resident table fed by the live alloc /
//!   use / free events, per-site log₂ idle-interval histograms
//!   ([`IdleHistogram`]) derived from the last-use trailers, and — at
//!   each snapshot — the *cold-resident* bytes per site: objects still
//!   resident whose last use (or creation) is at least
//!   [`EngineConfig::cold_after`] allocation-clock bytes in the past.
//!   These are the live objects the paper's post-mortem drag can only
//!   blame after they die.
//!
//! All state is exact integers; given the same event sequence the engine
//! is deterministic, which is what lets the live path reproduce the
//! post-mortem report byte-for-byte when no ring-buffer events were
//! dropped (see `tests/live_parity.rs`).

use std::collections::HashMap;

use heapdrag_vm::ids::{ChainId, ClassId, ObjectId, SiteId};

use crate::integrals::Integrals;
use crate::pattern::PatternConfig;
use crate::record::{GcSample, ObjectRecord, RetainRecord};

/// Exact, order-independent per-group sums — everything
/// [`GroupStats`](crate::analyzer::GroupStats) holds, with the lifetime
/// pattern represented by its sufficient statistics
/// ([`PatternSums`](crate::pattern::PatternSums)) rather than a member
/// list. Merging two partials is integer addition, so shard merges — and
/// the streaming fold, which never sees two records of a group at once —
/// cannot drift from the sequential result.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PartialStats {
    pub(crate) bytes: u64,
    pub(crate) never_used_drag: u128,
    pub(crate) reachable: u128,
    pub(crate) in_use: u128,
    pub(crate) pattern: crate::pattern::PatternSums,
}

impl PartialStats {
    pub(crate) fn add(&mut self, r: &ObjectRecord, patterns: &PatternConfig) {
        self.bytes += r.size;
        self.reachable += r.reachable_product();
        self.in_use += r.in_use_product();
        if r.is_never_used(patterns.ctor_use_window) {
            self.never_used_drag += r.drag();
        }
        self.pattern.add(r, patterns);
    }

    fn merge(&mut self, other: &PartialStats) {
        self.bytes += other.bytes;
        self.never_used_drag += other.never_used_drag;
        self.reachable += other.reachable;
        self.in_use += other.in_use;
        self.pattern.merge(&other.pattern);
    }
}

/// All three partitions plus totals for one shard of records.
/// `Clone` lets the serve layer finalize a per-session report while
/// retaining the accumulator for the fleet-wide merge.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardAccum {
    pub(crate) nested: HashMap<ChainId, PartialStats>,
    pub(crate) coarse: HashMap<SiteId, PartialStats>,
    pub(crate) pairs: HashMap<(ChainId, Option<ChainId>), PartialStats>,
    pub(crate) totals: Integrals,
}

impl ShardAccum {
    pub(crate) fn group_count(&self) -> u64 {
        (self.nested.len() + self.coarse.len() + self.pairs.len()) as u64
    }

    /// Folds one record into all three partitions and the totals.
    pub(crate) fn add<F>(&mut self, r: &ObjectRecord, patterns: &PatternConfig, innermost: &F)
    where
        F: Fn(ChainId) -> Option<SiteId> + ?Sized,
    {
        self.nested.entry(r.alloc_site).or_default().add(r, patterns);
        if let Some(s) = innermost(r.alloc_site) {
            self.coarse.entry(s).or_default().add(r, patterns);
        }
        let use_site = if r.is_never_used(patterns.ctor_use_window) {
            None
        } else {
            r.last_use_site
        };
        self.pairs
            .entry((r.alloc_site, use_site))
            .or_default()
            .add(r, patterns);
        self.totals.reachable += r.reachable_product();
        self.totals.in_use += r.in_use_product();
    }

    pub(crate) fn merge(&mut self, other: ShardAccum) {
        for (k, g) in other.nested {
            self.nested.entry(k).or_default().merge(&g);
        }
        for (k, g) in other.coarse {
            self.coarse.entry(k).or_default().merge(&g);
        }
        for (k, g) in other.pairs {
            self.pairs.entry(k).or_default().merge(&g);
        }
        self.totals.reachable += other.totals.reachable;
        self.totals.in_use += other.totals.in_use;
    }

    /// Every chain id the accumulator has seen — allocation chains plus
    /// last-use chains. The live driver resolves exactly these names
    /// after the VM exits, so its final report renders the same site
    /// strings the log writer would have emitted.
    pub(crate) fn chain_ids(&self) -> Vec<ChainId> {
        let mut ids: Vec<ChainId> = self.nested.keys().copied().collect();
        ids.extend(self.pairs.keys().filter_map(|(_, last_use)| *last_use));
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Accumulates one contiguous shard.
pub(crate) fn accumulate_shard<F>(
    records: &[ObjectRecord],
    patterns: &PatternConfig,
    innermost: &F,
) -> ShardAccum
where
    F: Fn(ChainId) -> Option<SiteId>,
{
    let mut engine = DragEngine::offline(*patterns, innermost);
    for r in records {
        engine.fold(r);
    }
    engine.into_accum()
}

/// How much history a live engine aggregates per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep everything — the cumulative fold the offline report uses.
    /// A live run with an unbounded window reproduces the post-mortem
    /// report byte-for-byte (when no events were dropped).
    Unbounded,
    /// Keep a rolling window of per-site drag buckets.
    Rolling {
        /// Window width in allocation-clock bytes; snapshots aggregate
        /// records freed within the last `window` bytes of allocation.
        window: u64,
        /// Bucket granularity in allocation-clock bytes; the ring holds
        /// `window / advance` (rounded up, at least one) buckets and
        /// recycles the oldest every `advance` bytes of allocation.
        advance: u64,
    },
}

/// Configuration of a live [`DragEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Pattern-classification thresholds (the offline analyzer's).
    pub patterns: PatternConfig,
    /// Window mode for snapshot site tables.
    pub window: WindowSpec,
    /// Idle threshold, in allocation-clock bytes, after which a resident
    /// object counts as *cold* in snapshots.
    pub cold_after: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            patterns: PatternConfig::default(),
            window: WindowSpec::Unbounded,
            cold_after: 256 * 1024,
        }
    }
}

/// A base-2 logarithmic histogram of idle intervals (allocation-clock
/// bytes between consecutive uses of the same object), 65 buckets:
/// bucket 0 holds zero, bucket `k` holds values in `[2^(k-1), 2^k)`.
/// The same bucketing `heapdrag-obs` histograms use, kept local so the
/// engine stays free of registry plumbing.
#[derive(Debug, Clone)]
pub struct IdleHistogram {
    counts: [u64; 65],
    total: u64,
    max: u64,
}

impl Default for IdleHistogram {
    fn default() -> Self {
        IdleHistogram {
            counts: [0; 65],
            total: 0,
            max: 0,
        }
    }
}

impl IdleHistogram {
    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one idle interval.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Number of intervals recorded.
    pub fn intervals(&self) -> u64 {
        self.total
    }

    /// The largest interval recorded (exact, not bucketed).
    pub fn max_idle(&self) -> u64 {
        self.max
    }

    /// Lower bound of the bucket holding the median interval (0 when
    /// empty). Exact integer arithmetic: deterministic across runs.
    pub fn median_idle(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = self.total.div_ceil(2);
        let mut seen = 0u64;
        for (k, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if k == 0 { 0 } else { 1u64 << (k - 1) };
            }
        }
        0
    }
}

/// One still-resident object in a live engine — the in-engine mirror of
/// the profiler trailer, rebuilt from alloc/use events.
#[derive(Debug, Clone, Copy)]
struct Resident {
    class: ClassId,
    site: ChainId,
    size: u64,
    created: u64,
    last_use: Option<(u64, ChainId)>,
}

impl Resident {
    /// The allocation-clock time this object was last touched: its last
    /// use, or its creation when never used.
    fn last_touch(&self) -> u64 {
        self.last_use.map_or(self.created, |(t, _)| t)
    }
}

/// One per-site cell of a rolling-window bucket.
#[derive(Debug, Clone, Copy, Default)]
struct WindowCell {
    objects: u64,
    bytes: u64,
    drag: u128,
}

/// One slot of the window ring. `index == u64::MAX` marks a slot that
/// has never been written.
#[derive(Debug, Clone, Default)]
struct WindowBucket {
    index: u64,
    sites: HashMap<ChainId, WindowCell>,
}

#[derive(Debug, Clone)]
struct WindowRing {
    advance: u64,
    buckets: Vec<WindowBucket>,
}

impl WindowRing {
    fn new(window: u64, advance: u64) -> Self {
        let slots = window.div_ceil(advance).max(1) as usize;
        WindowRing {
            advance,
            buckets: (0..slots)
                .map(|_| WindowBucket {
                    index: u64::MAX,
                    sites: HashMap::new(),
                })
                .collect(),
        }
    }

    /// Folds one freed record into its bucket, recycling the slot if it
    /// still holds an older window's cell (free times are nondecreasing,
    /// so a recycled slot can never be needed again).
    fn add(&mut self, r: &ObjectRecord) {
        let index = r.freed / self.advance;
        let slot = (index % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[slot];
        if bucket.index != index {
            bucket.index = index;
            bucket.sites.clear();
        }
        let cell = bucket.sites.entry(r.alloc_site).or_default();
        cell.objects += 1;
        cell.bytes += r.size;
        cell.drag += r.drag();
    }

    /// Sums the cells of buckets still inside the window ending at
    /// `clock`; stale (not yet recycled) slots are excluded by index.
    fn in_window(&self, clock: u64) -> HashMap<ChainId, WindowCell> {
        let newest = clock / self.advance;
        let oldest = (newest + 1).saturating_sub(self.buckets.len() as u64);
        let mut sites: HashMap<ChainId, WindowCell> = HashMap::new();
        for bucket in &self.buckets {
            if bucket.index == u64::MAX || bucket.index < oldest || bucket.index > newest {
                continue;
            }
            for (site, cell) in &bucket.sites {
                let s = sites.entry(*site).or_default();
                s.objects += cell.objects;
                s.bytes += cell.bytes;
                s.drag += cell.drag;
            }
        }
        sites
    }
}

/// Live-only engine state: the window ring, the resident table, and the
/// per-site idle histograms. Boxed so an offline engine pays one `None`.
#[derive(Debug, Clone)]
struct LiveState {
    window: WindowSpec,
    cold_after: u64,
    ring: Option<WindowRing>,
    residents: HashMap<ObjectId, Resident>,
    resident_bytes: u64,
    idle: HashMap<ChainId, IdleHistogram>,
    unmatched: u64,
}

/// One site row of an [`EngineSnapshot`]: drag accumulated inside the
/// snapshot's window (or since the run started, for
/// [`WindowSpec::Unbounded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotSite {
    /// The nested allocation site.
    pub site: ChainId,
    /// Objects freed in the window.
    pub objects: u64,
    /// Bytes those objects held.
    pub bytes: u64,
    /// Their accumulated drag (byte²).
    pub drag: u128,
}

/// One cold-resident row of an [`EngineSnapshot`]: objects still alive
/// whose last touch is at least `cold_after` allocation-clock bytes ago.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColdSite {
    /// The nested allocation site of the cold residents.
    pub site: ChainId,
    /// How many resident objects at this site are cold.
    pub objects: u64,
    /// The bytes they pin.
    pub bytes: u64,
    /// The largest idle gap among them (allocation-clock bytes).
    pub max_idle: u64,
}

/// A point-in-time view of a live engine: the windowed site table plus
/// the coldness dimension.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Allocation clock at the snapshot.
    pub clock: u64,
    /// Records folded so far (freed objects).
    pub records: u64,
    /// The window the site rows aggregate over.
    pub window: WindowSpec,
    /// Objects currently resident (allocated, not yet freed).
    pub resident_objects: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// The idle threshold the cold rows used.
    pub cold_after: u64,
    /// Resident objects idle for at least `cold_after` bytes.
    pub cold_objects: u64,
    /// Bytes those cold objects pin.
    pub cold_bytes: u64,
    /// Per-site windowed drag, sorted by drag (desc), then site.
    pub sites: Vec<SnapshotSite>,
    /// Per-site cold residents, sorted by bytes (desc), then site.
    pub cold_sites: Vec<ColdSite>,
}

/// Per-site idle-interval summary for the final live report — the
/// coldness columns appended after the standard drag report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteIdleSummary {
    /// The nested allocation site.
    pub site: ChainId,
    /// Idle intervals observed (use-to-use, plus the final use-to-free).
    pub intervals: u64,
    /// Lower bound of the median interval's log₂ bucket.
    pub median_idle: u64,
    /// The largest interval observed.
    pub max_idle: u64,
}

/// The shared aggregation fold. Offline paths construct it with
/// [`offline`](DragEngine::offline) and feed finished [`ObjectRecord`]s
/// through [`fold`](DragEngine::fold); the live path constructs it with
/// [`live`](DragEngine::live) and feeds raw heap events through
/// [`observe_alloc`](DragEngine::observe_alloc) /
/// [`observe_use`](DragEngine::observe_use) /
/// [`observe_free`](DragEngine::observe_free), which rebuild the
/// records and route them through the *same* fold.
#[derive(Debug, Clone)]
pub struct DragEngine<F> {
    accum: ShardAccum,
    patterns: PatternConfig,
    innermost: F,
    records: u64,
    alloc_bytes: u64,
    at_exit: u64,
    samples: u64,
    retains: Vec<RetainRecord>,
    clock: u64,
    live: Option<Box<LiveState>>,
}

impl<F> DragEngine<F>
where
    F: Fn(ChainId) -> Option<SiteId>,
{
    /// An engine for the offline paths: the pure fold, no window ring,
    /// no resident table. Exactly the integer sums the pre-extraction
    /// analyzer performed, in the same order.
    pub fn offline(patterns: PatternConfig, innermost: F) -> Self {
        DragEngine {
            accum: ShardAccum::default(),
            patterns,
            innermost,
            records: 0,
            alloc_bytes: 0,
            at_exit: 0,
            samples: 0,
            retains: Vec::new(),
            clock: 0,
            live: None,
        }
    }

    /// An engine for the live path: the offline fold plus the window
    /// ring, the resident table, and the idle histograms.
    pub fn live(config: EngineConfig, innermost: F) -> Self {
        let ring = match config.window {
            WindowSpec::Unbounded => None,
            WindowSpec::Rolling { window, advance } => Some(WindowRing::new(window, advance)),
        };
        DragEngine {
            accum: ShardAccum::default(),
            patterns: config.patterns,
            innermost,
            records: 0,
            alloc_bytes: 0,
            at_exit: 0,
            samples: 0,
            retains: Vec::new(),
            clock: 0,
            live: Some(Box::new(LiveState {
                window: config.window,
                cold_after: config.cold_after,
                ring,
                residents: HashMap::new(),
                resident_bytes: 0,
                idle: HashMap::new(),
                unmatched: 0,
            })),
        }
    }

    /// Folds one finished record into the per-site aggregates — the one
    /// aggregation step every consumer shares.
    pub fn fold(&mut self, r: &ObjectRecord) {
        self.records += 1;
        self.alloc_bytes += r.size;
        self.at_exit += u64::from(r.at_exit);
        self.accum.add(r, &self.patterns, &self.innermost);
        self.clock = self.clock.max(r.freed);
        if let Some(live) = &mut self.live {
            if let Some(ring) = &mut live.ring {
                ring.add(r);
            }
        }
    }

    /// Notes one deep-GC sample.
    pub fn note_sample(&mut self, s: &GcSample) {
        self.samples += 1;
        self.clock = self.clock.max(s.time);
    }

    /// Notes one retaining-path sample, already attributed to its
    /// allocation site (the offline ingest path). The engine keeps the
    /// raw samples; [`DragReport::attach_retains`](crate::analyzer::DragReport::attach_retains)
    /// folds them into per-site summaries after the report is finalized.
    pub fn note_retain(&mut self, r: RetainRecord) {
        self.clock = self.clock.max(r.time);
        self.retains.push(r);
    }

    /// Live event: a retaining-path sample for a resident object. The
    /// allocation site comes from the object's resident trailer; samples
    /// for objects the engine never saw allocated (their alloc event was
    /// dropped) count as unmatched and are otherwise ignored.
    pub fn observe_retain(
        &mut self,
        object: ObjectId,
        size: u64,
        time: u64,
        depth: u32,
        truncated: bool,
        path: String,
    ) {
        self.clock = self.clock.max(time);
        let Some(live) = &mut self.live else { return };
        let Some(resident) = live.residents.get(&object) else {
            live.unmatched += 1;
            return;
        };
        let alloc_site = resident.site;
        self.retains.push(RetainRecord {
            alloc_site,
            size,
            time,
            depth,
            truncated,
            path,
        });
    }

    /// Live event: an object was allocated. Starts its resident trailer.
    pub fn observe_alloc(
        &mut self,
        object: ObjectId,
        class: ClassId,
        site: ChainId,
        size: u64,
        time: u64,
    ) {
        self.clock = self.clock.max(time);
        let Some(live) = &mut self.live else { return };
        live.resident_bytes += size;
        live.residents.insert(
            object,
            Resident {
                class,
                site,
                size,
                created: time,
                last_use: None,
            },
        );
    }

    /// Live event: an object was used. Records the idle gap since its
    /// previous touch into the allocation site's histogram and advances
    /// the trailer (last-write-wins, same as the file-logging profiler).
    /// Unknown objects (their alloc event was dropped) count as
    /// unmatched and are otherwise ignored.
    pub fn observe_use(&mut self, object: ObjectId, site: ChainId, time: u64) {
        self.clock = self.clock.max(time);
        let Some(live) = &mut self.live else { return };
        match live.residents.get_mut(&object) {
            Some(r) => {
                let gap = time.saturating_sub(r.last_touch());
                live.idle.entry(r.site).or_default().record(gap);
                r.last_use = Some((time, site));
            }
            None => live.unmatched += 1,
        }
    }

    /// Live event: an object was reclaimed (or survived to exit, with
    /// `at_exit`). Finishes the trailer into an [`ObjectRecord`], folds
    /// it, and returns it so the caller may also retain it (the
    /// `profile --live-window` path still writes a log). Unknown objects
    /// count as unmatched and return `None`.
    pub fn observe_free(&mut self, object: ObjectId, time: u64, at_exit: bool) -> Option<ObjectRecord> {
        self.clock = self.clock.max(time);
        let live = self.live.as_mut()?;
        let Some(resident) = live.residents.remove(&object) else {
            live.unmatched += 1;
            return None;
        };
        live.resident_bytes -= resident.size;
        let gap = time.saturating_sub(resident.last_touch());
        live.idle.entry(resident.site).or_default().record(gap);
        let record = ObjectRecord {
            object,
            class: resident.class,
            size: resident.size,
            created: resident.created,
            freed: time,
            last_use: resident.last_use.map(|(t, _)| t),
            alloc_site: resident.site,
            last_use_site: resident.last_use.map(|(_, s)| s),
            at_exit,
        };
        self.fold(&record);
        Some(record)
    }

    /// Flushes every still-resident object as an at-exit record at
    /// `time` — the live equivalent of the profiler's defensive exit
    /// flush. Residents drain in object-id order, matching the sorted
    /// record order the file-logging profiler emits.
    pub fn flush_residents(&mut self, time: u64) -> Vec<ObjectRecord> {
        let Some(live) = &mut self.live else {
            return Vec::new();
        };
        let mut ids: Vec<ObjectId> = live.residents.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|id| self.observe_free(id, time, true))
            .collect()
    }

    /// A point-in-time view: the windowed per-site drag table plus the
    /// cold-resident rows. Meaningful for live engines; an offline
    /// engine reports its cumulative table and no residents.
    pub fn snapshot(&self) -> EngineSnapshot {
        let (window, cold_after) = match &self.live {
            Some(live) => (live.window, live.cold_after),
            None => (WindowSpec::Unbounded, u64::MAX),
        };
        let cells: HashMap<ChainId, WindowCell> = match self.live.as_ref().and_then(|l| l.ring.as_ref()) {
            Some(ring) => ring.in_window(self.clock),
            None => self
                .accum
                .nested
                .iter()
                .map(|(site, p)| {
                    (
                        *site,
                        WindowCell {
                            objects: p.pattern.objects,
                            bytes: p.bytes,
                            drag: p.pattern.drag,
                        },
                    )
                })
                .collect(),
        };
        let mut sites: Vec<SnapshotSite> = cells
            .into_iter()
            .map(|(site, c)| SnapshotSite {
                site,
                objects: c.objects,
                bytes: c.bytes,
                drag: c.drag,
            })
            .collect();
        sites.sort_by(|a, b| b.drag.cmp(&a.drag).then(a.site.cmp(&b.site)));

        let mut resident_objects = 0u64;
        let mut resident_bytes = 0u64;
        let mut cold_objects = 0u64;
        let mut cold_bytes = 0u64;
        let mut cold_cells: HashMap<ChainId, ColdSite> = HashMap::new();
        if let Some(live) = &self.live {
            resident_objects = live.residents.len() as u64;
            resident_bytes = live.resident_bytes;
            for r in live.residents.values() {
                let idle = self.clock.saturating_sub(r.last_touch());
                if idle < live.cold_after {
                    continue;
                }
                cold_objects += 1;
                cold_bytes += r.size;
                let cell = cold_cells.entry(r.site).or_insert(ColdSite {
                    site: r.site,
                    objects: 0,
                    bytes: 0,
                    max_idle: 0,
                });
                cell.objects += 1;
                cell.bytes += r.size;
                cell.max_idle = cell.max_idle.max(idle);
            }
        }
        let mut cold_sites: Vec<ColdSite> = cold_cells.into_values().collect();
        cold_sites.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.site.cmp(&b.site)));

        EngineSnapshot {
            clock: self.clock,
            records: self.records,
            window,
            resident_objects,
            resident_bytes,
            cold_after,
            cold_objects,
            cold_bytes,
            sites,
            cold_sites,
        }
    }

    /// Per-site idle-interval summaries, sorted by largest interval
    /// (desc), then interval count (desc), then site — the coldness
    /// columns of the final live report.
    pub fn coldness_summary(&self) -> Vec<SiteIdleSummary> {
        let Some(live) = &self.live else {
            return Vec::new();
        };
        let mut rows: Vec<SiteIdleSummary> = live
            .idle
            .iter()
            .map(|(site, h)| SiteIdleSummary {
                site: *site,
                intervals: h.intervals(),
                median_idle: h.median_idle(),
                max_idle: h.max_idle(),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.max_idle
                .cmp(&a.max_idle)
                .then(b.intervals.cmp(&a.intervals))
                .then(a.site.cmp(&b.site))
        });
        rows
    }

    /// The allocation clock: the largest event time folded so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Records folded (freed objects).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total bytes allocated by the folded records.
    pub fn alloc_bytes(&self) -> u64 {
        self.alloc_bytes
    }

    /// Folded records that were still live at exit.
    pub fn at_exit_records(&self) -> u64 {
        self.at_exit
    }

    /// Deep-GC samples noted.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The retaining-path samples folded so far.
    pub fn retain_samples(&self) -> &[RetainRecord] {
        &self.retains
    }

    /// Drains the retaining-path samples (the live driver attaches them
    /// to the final report after finalizing the accumulator).
    pub fn take_retains(&mut self) -> Vec<RetainRecord> {
        std::mem::take(&mut self.retains)
    }

    /// Events that referenced an object the engine never saw allocated
    /// (their alloc event was dropped by the ring buffer).
    pub fn unmatched(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.unmatched)
    }

    /// Every chain id the aggregates reference (allocation and last-use
    /// chains) — what the live driver must resolve names for.
    pub fn chains_seen(&self) -> Vec<ChainId> {
        self.accum.chain_ids()
    }

    pub(crate) fn into_accum(self) -> ShardAccum {
        self.accum
    }

    pub(crate) fn into_fold_parts(self) -> (ShardAccum, u64, u64, u64, u64, Vec<RetainRecord>) {
        (
            self.accum,
            self.records,
            self.alloc_bytes,
            self.at_exit,
            self.samples,
            self.retains,
        )
    }
}

impl<F> crate::stream::StreamFold for DragEngine<F>
where
    F: Fn(ChainId) -> Option<SiteId>,
{
    fn record(&mut self, r: ObjectRecord) {
        self.fold(&r);
    }

    fn sample(&mut self, s: GcSample) {
        self.note_sample(&s);
    }

    fn retain(&mut self, r: RetainRecord) {
        self.note_retain(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        site: u32,
        created: u64,
        last_use: Option<u64>,
        freed: u64,
        size: u64,
    ) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(id),
            class: ClassId(0),
            size,
            created,
            freed,
            last_use,
            alloc_site: ChainId(site),
            last_use_site: last_use.map(|_| ChainId(100 + site)),
            at_exit: false,
        }
    }

    fn live_engine(window: WindowSpec, cold_after: u64) -> DragEngine<fn(ChainId) -> Option<SiteId>> {
        DragEngine::live(
            EngineConfig {
                patterns: PatternConfig::default(),
                window,
                cold_after,
            },
            |c: ChainId| Some(SiteId(c.0)),
        )
    }

    /// The event path (alloc/use/free) folds the same sums the record
    /// path does: identical reports from either side of the engine.
    #[test]
    fn event_path_matches_record_path() {
        let records = vec![
            record(1, 0, 0, Some(1_000), 50_000, 64),
            record(2, 1, 100, None, 70_000, 32),
            record(3, 0, 200, Some(60_000), 90_000, 128),
        ];
        let offline = crate::DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));

        let mut engine = live_engine(WindowSpec::Unbounded, u64::MAX);
        for r in &records {
            engine.observe_alloc(r.object, r.class, r.alloc_site, r.size, r.created);
            if let (Some(t), Some(s)) = (r.last_use, r.last_use_site) {
                engine.observe_use(r.object, s, t);
            }
            let rebuilt = engine.observe_free(r.object, r.freed, r.at_exit).unwrap();
            assert_eq!(&rebuilt, r);
        }
        assert_eq!(engine.unmatched(), 0);
        let live = crate::DragAnalyzer::new().finalize(engine.into_accum());
        assert_eq!(live, offline);
    }

    #[test]
    fn rolling_window_evicts_old_buckets() {
        let mut engine = live_engine(
            WindowSpec::Rolling {
                window: 1000,
                advance: 100,
            },
            u64::MAX,
        );
        // Freed at clock 150: bucket 1. Freed at 5_050: bucket 50.
        engine.fold(&record(1, 0, 0, Some(50), 150, 8));
        engine.fold(&record(2, 1, 4_000, Some(4_100), 5_050, 8));
        let snap = engine.snapshot();
        // Clock is 5_050; the window covers buckets 41..=50, so only
        // site 1's record remains.
        assert_eq!(snap.sites.len(), 1);
        assert_eq!(snap.sites[0].site, ChainId(1));
        // The cumulative aggregates still hold both records.
        assert_eq!(engine.records(), 2);
    }

    #[test]
    fn ring_recycles_slots_in_place() {
        let mut ring = WindowRing::new(300, 100); // 3 slots
        for i in 0..10u64 {
            ring.add(&record(i, (i % 2) as u32, 0, None, i * 100 + 50, 8));
        }
        assert_eq!(ring.buckets.len(), 3);
        // Only the last three buckets (indices 7, 8, 9) are in-window.
        let cells = ring.in_window(950);
        let total: u64 = cells.values().map(|c| c.objects).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn coldness_tracks_idle_residents() {
        let mut engine = live_engine(WindowSpec::Unbounded, 1_000);
        engine.observe_alloc(ObjectId(1), ClassId(0), ChainId(0), 64, 0);
        engine.observe_alloc(ObjectId(2), ClassId(0), ChainId(1), 32, 0);
        engine.observe_use(ObjectId(2), ChainId(9), 4_900);
        // Advance the clock via a GC sample.
        engine.note_sample(&GcSample {
            time: 5_000,
            reachable_bytes: 96,
            reachable_count: 2,
        });
        let snap = engine.snapshot();
        assert_eq!(snap.resident_objects, 2);
        assert_eq!(snap.resident_bytes, 96);
        // Object 1 idles since creation (5_000 >= 1_000: cold); object 2
        // was touched 100 bytes ago (warm).
        assert_eq!(snap.cold_objects, 1);
        assert_eq!(snap.cold_bytes, 64);
        assert_eq!(snap.cold_sites.len(), 1);
        assert_eq!(snap.cold_sites[0].site, ChainId(0));
        assert_eq!(snap.cold_sites[0].max_idle, 5_000);
    }

    #[test]
    fn idle_histogram_quantiles() {
        let mut h = IdleHistogram::default();
        assert_eq!(h.median_idle(), 0);
        for v in [0, 3, 5, 9, 1_000] {
            h.record(v);
        }
        assert_eq!(h.intervals(), 5);
        assert_eq!(h.max_idle(), 1_000);
        // Median of the five values is 5: bucket 3 = [4, 8).
        assert_eq!(h.median_idle(), 4);
    }

    #[test]
    fn unmatched_events_are_counted_not_folded() {
        let mut engine = live_engine(WindowSpec::Unbounded, u64::MAX);
        engine.observe_use(ObjectId(7), ChainId(0), 10);
        assert!(engine.observe_free(ObjectId(7), 20, false).is_none());
        assert_eq!(engine.unmatched(), 2);
        assert_eq!(engine.records(), 0);
    }

    #[test]
    fn flush_residents_drains_in_object_order() {
        let mut engine = live_engine(WindowSpec::Unbounded, u64::MAX);
        engine.observe_alloc(ObjectId(5), ClassId(0), ChainId(0), 8, 0);
        engine.observe_alloc(ObjectId(2), ClassId(0), ChainId(0), 8, 10);
        let flushed = engine.flush_residents(100);
        let ids: Vec<u64> = flushed.iter().map(|r| r.object.0).collect();
        assert_eq!(ids, vec![2, 5]);
        assert!(flushed.iter().all(|r| r.at_exit && r.freed == 100));
        assert_eq!(engine.snapshot().resident_objects, 0);
    }
}
