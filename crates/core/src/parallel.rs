//! Sharding configuration and per-shard instrumentation for the parallel
//! off-line pipeline.
//!
//! The off-line phase (§2.2) has two data-parallel stages:
//!
//! 1. **Parse** ([`log::parse_log_sharded`](crate::log::parse_log_sharded))
//!    — shared state (the header, chain table, and end marker) is parsed
//!    once on the coordinating thread while record-bearing units are
//!    batched into chunks of [`ParallelConfig::chunk_records`] units and
//!    decoded on worker threads. Chunk boundaries follow the input's own
//!    structure — line boundaries for the text format, *frame* boundaries
//!    for HDLOG v2 binary logs (the scan hops length prefixes; workers
//!    never search the input for delimiters) — so chunking, and therefore
//!    every result, is independent of the worker count.
//! 2. **Aggregate** ([`DragAnalyzer::analyze_sharded`](crate::analyzer::DragAnalyzer::analyze_sharded))
//!    — the record slice is split into [`ParallelConfig::shards`]
//!    contiguous shards, each accumulated into partial per-site groups on
//!    its own worker, then merged deterministically.
//!
//! Both stages are *exact*: every per-group quantity that crosses a shard
//! boundary is an integer sum (associative, order-independent), and the
//! floating-point lifetime classifier runs only after the merge, over each
//! group's members in original record order. The report for `shards = n`
//! is therefore byte-identical to the sequential `shards = 1` report.
//!
//! `shards` sizes the *logical* parallelism only. No ingest spawns its
//! own threads anymore: both stages submit their chunk/shard jobs to the
//! process-wide [`serve::WorkerPool`](crate::serve::WorkerPool) (sized to
//! the host, shared by every concurrent ingest and every serve session),
//! so a thousand concurrent 8-shard ingests still run on one host-sized
//! pool rather than eight thousand transient threads.

use std::time::Duration;

/// Knobs of the parallel off-line pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker shards. `1` (the default) is the sequential path;
    /// `0` is treated as `1`.
    pub shards: usize,
    /// Record-bearing units (text lines or binary frames) per parse chunk
    /// — the work-unit handed to parse workers.
    pub chunk_records: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            shards: 1,
            chunk_records: 8192,
        }
    }
}

impl ParallelConfig {
    /// The sequential configuration (`shards = 1`).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// A configuration with `shards` workers and the default chunk size.
    pub fn with_shards(shards: usize) -> Self {
        ParallelConfig {
            shards,
            ..Self::default()
        }
    }

    /// Worker count actually used for `items` work units: at least 1, at
    /// most `shards`, and never more than the number of units.
    pub fn effective_shards(&self, items: usize) -> usize {
        self.shards.max(1).min(items.max(1))
    }

    /// Chunk size actually used (guards against a zero knob).
    pub fn effective_chunk(&self) -> usize {
        self.chunk_records.max(1)
    }
}

/// Counters for one shard (or parse chunk) of the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard (or chunk) index, in input order.
    pub shard: usize,
    /// Object records processed by this shard.
    pub records: u64,
    /// Deep-GC samples processed by this shard.
    pub samples: u64,
    /// Distinct groups (nested + coarse + pair cells) this shard touched;
    /// zero for parse chunks.
    pub groups: u64,
    /// Wall-clock the worker spent on this shard.
    pub elapsed: Duration,
}

/// Instrumentation of one parallel stage: per-shard counters plus the
/// stage-level costs that do not parallelise.
#[derive(Debug, Clone, Default)]
pub struct ParallelMetrics {
    /// One entry per shard/chunk, in input order.
    pub shards: Vec<ShardMetrics>,
    /// Sequential work before the fan-out (header/chain scan, slicing).
    pub split_elapsed: Duration,
    /// Sequential work after the fan-in (merge, classification, sorting).
    pub merge_elapsed: Duration,
    /// End-to-end wall-clock of the stage.
    pub total_elapsed: Duration,
}

impl ParallelMetrics {
    /// Total records processed across all shards.
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// The longest single shard — the stage's critical path through the
    /// fan-out section.
    pub fn slowest_shard(&self) -> Option<&ShardMetrics> {
        self.shards.iter().max_by_key(|s| s.elapsed)
    }

    /// Publishes the stage's counters into `registry` under
    /// `offline_<stage>_*` names: per-shard elapsed observations into the
    /// `offline_<stage>_shard_us` histogram, totals as counters, and the
    /// sequential split/merge/total costs as microsecond gauges.
    ///
    /// Called once per stage after the workers have joined, so nothing here
    /// is on a hot path.
    pub fn publish(&self, stage: &str, registry: &heapdrag_obs::Registry) {
        let shard_us = registry.histogram(&format!("offline_{stage}_shard_us"));
        for s in &self.shards {
            shard_us.observe_duration(s.elapsed);
        }
        registry
            .counter(&format!("offline_{stage}_shards_total"))
            .add(self.shards.len() as u64);
        registry
            .counter(&format!("offline_{stage}_records_total"))
            .add(self.total_records());
        registry
            .counter(&format!("offline_{stage}_samples_total"))
            .add(self.shards.iter().map(|s| s.samples).sum());
        registry
            .counter(&format!("offline_{stage}_groups_total"))
            .add(self.shards.iter().map(|s| s.groups).sum());
        let us = |d: Duration| i64::try_from(d.as_micros()).unwrap_or(i64::MAX);
        registry
            .gauge(&format!("offline_{stage}_split_us"))
            .set(us(self.split_elapsed));
        registry
            .gauge(&format!("offline_{stage}_merge_us"))
            .set(us(self.merge_elapsed));
        registry
            .gauge(&format!("offline_{stage}_total_us"))
            .set(us(self.total_elapsed));
    }

    /// One line per shard, for `--shards`-aware tools to print.
    pub fn render(&self, stage: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "[{stage}] {} shards, {} records, split {:?}, merge {:?}, total {:?}\n",
            self.shards.len(),
            self.total_records(),
            self.split_elapsed,
            self.merge_elapsed,
            self.total_elapsed,
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "[{stage}]   shard {:>3}: {:>9} records {:>7} samples {:>7} groups in {:?}\n",
                s.shard, s.records, s.samples, s.groups, s.elapsed,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_shards_clamps_to_work() {
        let c = ParallelConfig::with_shards(8);
        assert_eq!(c.effective_shards(3), 3);
        assert_eq!(c.effective_shards(100), 8);
        assert_eq!(c.effective_shards(0), 1);
        let z = ParallelConfig { shards: 0, chunk_records: 0 };
        assert_eq!(z.effective_shards(10), 1);
        assert_eq!(z.effective_chunk(), 1);
    }

    #[test]
    fn metrics_aggregate() {
        let m = ParallelMetrics {
            shards: vec![
                ShardMetrics { shard: 0, records: 10, samples: 1, groups: 4, elapsed: Duration::from_millis(5) },
                ShardMetrics { shard: 1, records: 20, samples: 0, groups: 6, elapsed: Duration::from_millis(9) },
            ],
            ..Default::default()
        };
        assert_eq!(m.total_records(), 30);
        assert_eq!(m.slowest_shard().unwrap().shard, 1);
        let text = m.render("analyze");
        assert!(text.contains("shard   0"));
        assert!(text.contains("2 shards"));
    }

    #[test]
    fn publish_writes_stage_prefixed_metrics() {
        let m = ParallelMetrics {
            shards: vec![
                ShardMetrics { shard: 0, records: 10, samples: 1, groups: 4, elapsed: Duration::from_micros(5) },
                ShardMetrics { shard: 1, records: 20, samples: 0, groups: 6, elapsed: Duration::from_micros(9) },
            ],
            split_elapsed: Duration::from_micros(2),
            merge_elapsed: Duration::from_micros(3),
            total_elapsed: Duration::from_micros(19),
        };
        let registry = heapdrag_obs::Registry::new();
        m.publish("parse", &registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["offline_parse_shards_total"], 2);
        assert_eq!(snap.counters["offline_parse_records_total"], 30);
        assert_eq!(snap.counters["offline_parse_samples_total"], 1);
        assert_eq!(snap.counters["offline_parse_groups_total"], 10);
        assert_eq!(snap.histograms["offline_parse_shard_us"].count, 2);
        assert_eq!(snap.histograms["offline_parse_shard_us"].sum, 14);
        assert_eq!(snap.gauges["offline_parse_split_us"], 2);
        assert_eq!(snap.gauges["offline_parse_merge_us"], 3);
        assert_eq!(snap.gauges["offline_parse_total_us"], 19);
    }
}
