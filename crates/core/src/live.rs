//! Live in-process drag profiling: run a program while a second thread
//! folds its heap events through the shared [`DragEngine`], emitting
//! periodic windowed snapshots (with the coldness dimension) and a final
//! report — no HDLOG file round-trip.
//!
//! The VM thread carries a [`LiveProfiler`] observer that pushes every
//! heap event into a bounded SPSC ring (`heapdrag_vm::live`); its fast
//! path never blocks — a full ring drops the event and counts it. The
//! consumer thread rebuilds profiler trailers inside the engine
//! ([`DragEngine::observe_alloc`] / `observe_use` / `observe_free`), so
//! the records it folds are exactly the ones the file-logging
//! [`DragProfiler`](crate::DragProfiler) would have written. With an
//! unbounded window and zero drops, the final report is therefore
//! byte-identical to `heapdrag report` over a log of the same run — the
//! differential suite in `tests/live_parity.rs` holds this for all nine
//! workloads.
//!
//! Snapshots fire on allocation-clock cadence ([`LiveOptions::every`]),
//! so their count and contents are deterministic whenever no events were
//! dropped. Mid-run snapshots label sites `chain#N`: the chain-name
//! table lives in the VM's `SiteTable`, which is only available after
//! the run; the final report resolves real (normalized) names and is the
//! place byte-parity is claimed.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use heapdrag_vm::ids::{ChainId, SiteId};
use heapdrag_vm::interp::{RunOutcome, Vm, VmConfig};
use heapdrag_vm::live::{ring, LiveEvent, LiveProfiler, LiveShared, RingConsumer};
use heapdrag_vm::program::Program;
use heapdrag_vm::site::SiteTable;
use heapdrag_vm::VmError;

use crate::analyzer::{AnalyzerConfig, DragAnalyzer, DragReport};
use crate::codec::normalize_chain_name;
use crate::engine::{DragEngine, EngineConfig, EngineSnapshot, SiteIdleSummary, WindowSpec};
use crate::pattern::PatternConfig;
use crate::record::{GcSample, ObjectRecord, RetainRecord};
use crate::report::{fmt_mb2, ChainNamer, ReportSections};

/// Configuration of a live profiling run.
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Snapshot aggregation window.
    pub window: WindowSpec,
    /// Idle threshold (allocation-clock bytes) for cold-resident rows.
    pub cold_after: u64,
    /// Snapshot cadence: one snapshot per `every` bytes of allocation.
    pub every: u64,
    /// SPSC ring capacity in events (rounded up to a power of two).
    pub ring_capacity: usize,
    /// Site rows per snapshot table.
    pub top: usize,
    /// Also retain the rebuilt records and GC samples so the caller can
    /// write a post-mortem log (`profile --live-window`).
    pub keep_records: bool,
    /// Pattern-classification thresholds (the analyzer's).
    pub patterns: PatternConfig,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            window: WindowSpec::Unbounded,
            cold_after: 256 * 1024,
            every: 512 * 1024,
            ring_capacity: 1 << 18,
            top: 10,
            keep_records: false,
            patterns: PatternConfig::default(),
        }
    }
}

/// Everything a live run produced.
#[derive(Debug)]
pub struct LiveRun {
    /// The final drag report — with [`WindowSpec::Unbounded`] and zero
    /// [`dropped`](Self::dropped), byte-identical (through
    /// [`render_final`](Self::render_final)) to `report` over a log of
    /// the same run.
    pub report: DragReport,
    /// Per-site idle-interval summaries (the coldness columns).
    pub coldness: Vec<SiteIdleSummary>,
    /// Normalized chain names for every site the report references.
    pub chain_names: HashMap<ChainId, String>,
    /// Records folded (freed objects).
    pub records: u64,
    /// Total bytes those records allocated.
    pub alloc_bytes: u64,
    /// Records still live at exit.
    pub at_exit: u64,
    /// Deep-GC samples folded.
    pub samples: u64,
    /// Final allocation-clock value.
    pub end_time: u64,
    /// Intermediate snapshots emitted.
    pub snapshots: u64,
    /// Heap events the ring buffer dropped (0 ⇒ deterministic run).
    pub dropped: u64,
    /// Events that referenced an object whose alloc event was dropped.
    pub unmatched: u64,
    /// The VM run outcome (program output, steps, GC statistics).
    pub outcome: RunOutcome,
    /// Site table of the run (for resolving further names).
    pub sites: SiteTable,
    /// The rebuilt records and samples, when
    /// [`LiveOptions::keep_records`] was set: everything needed to write
    /// the same log the file-logging profiler would have.
    pub collected: Option<(Vec<ObjectRecord>, Vec<GcSample>)>,
    /// Retaining-path samples observed live (site-resolved), in event
    /// order — already folded into [`report`](Self::report).
    pub retains: Vec<RetainRecord>,
}

impl ChainNamer for LiveRun {
    fn chain_name(&self, chain: ChainId) -> String {
        self.chain_names
            .get(&chain)
            .cloned()
            .unwrap_or_else(|| format!("<chain {}>", chain.0))
    }
}

impl LiveRun {
    /// The final report text: the standard drag report (byte-identical
    /// to `report` under an unbounded window with zero drops) followed
    /// by the coldness section.
    #[deprecated(
        since = "0.2.0",
        note = "assemble with `ReportSections::standard(&run.report, &run).coldness(&run.coldness)`"
    )]
    pub fn render_final(&self, top: usize) -> String {
        ReportSections::standard(&self.report, self)
            .top(top)
            .coldness(&self.coldness)
            .render()
    }
}

/// Renders one snapshot. Sites are labeled `chain#N` — real names are
/// only resolvable after the run (see the module docs).
fn render_snapshot(snap: &EngineSnapshot, seq: u64, dropped: u64, top: usize) -> String {
    let mut out = String::new();
    let window = match snap.window {
        WindowSpec::Unbounded => "window: unbounded".to_string(),
        WindowSpec::Rolling { window, advance } => {
            format!("window: last {window} bytes, advance {advance}")
        }
    };
    out.push_str(&format!(
        "=== live snapshot #{seq} @ {} bytes ({window}) ===\n",
        snap.clock
    ));
    out.push_str(&format!(
        "folded: {} records; dropped: {} events; resident: {} objects / {} bytes\n",
        snap.records, dropped, snap.resident_objects, snap.resident_bytes
    ));
    out.push_str(&format!(
        "cold (idle >= {} bytes): {} objects / {} bytes\n",
        snap.cold_after, snap.cold_objects, snap.cold_bytes
    ));
    out.push_str("rank  drag(MB^2)  objects       bytes  site\n");
    for (i, s) in snap.sites.iter().take(top).enumerate() {
        out.push_str(&format!(
            "{:>4}  {:>10}  {:>7}  {:>10}  chain#{}\n",
            i + 1,
            fmt_mb2(s.drag),
            s.objects,
            s.bytes,
            s.site.0,
        ));
    }
    if !snap.cold_sites.is_empty() {
        out.push_str("--- cold-resident sites ---\n");
        out.push_str("     bytes  objects     max-idle  site\n");
        for c in snap.cold_sites.iter().take(top) {
            out.push_str(&format!(
                "{:>10}  {:>7}  {:>11}  chain#{}\n",
                c.bytes, c.objects, c.max_idle, c.site.0,
            ));
        }
    }
    out
}

/// What the consumer thread hands back after draining the ring.
struct ConsumerOut {
    engine: DragEngine<fn(ChainId) -> Option<SiteId>>,
    records: Vec<ObjectRecord>,
    samples: Vec<GcSample>,
    snapshots: u64,
    events: u64,
}

fn consume<S: FnMut(&str)>(
    mut rx: RingConsumer<LiveEvent>,
    shared: &LiveShared,
    config: EngineConfig,
    every: u64,
    top: usize,
    keep: bool,
    mut on_snapshot: S,
) -> ConsumerOut {
    let mut engine: DragEngine<fn(ChainId) -> Option<SiteId>> =
        DragEngine::live(config, |c: ChainId| Some(SiteId(c.0)));
    let mut records = Vec::new();
    let mut samples = Vec::new();
    let mut snapshots = 0u64;
    let mut events = 0u64;
    let mut last_mark = 0u64;
    let mut idle_spins = 0u32;

    let mut handle = |ev: LiveEvent,
                      engine: &mut DragEngine<fn(ChainId) -> Option<SiteId>>,
                      records: &mut Vec<ObjectRecord>,
                      samples: &mut Vec<GcSample>,
                      snapshots: &mut u64,
                      events: &mut u64| {
        *events += 1;
        match ev {
            LiveEvent::Alloc(e) => {
                engine.observe_alloc(e.object, e.class, e.site, e.size, e.time);
            }
            LiveEvent::Use(e) => engine.observe_use(e.object, e.site, e.time),
            LiveEvent::Free(e) => {
                if let Some(r) = engine.observe_free(e.object, e.time, e.at_exit) {
                    if keep {
                        records.push(r);
                    }
                }
            }
            LiveEvent::DeepGc(e) => {
                let sample = GcSample {
                    time: e.time,
                    reachable_bytes: e.reachable_bytes,
                    reachable_count: e.reachable_count,
                };
                engine.note_sample(&sample);
                if keep {
                    samples.push(sample);
                }
            }
            LiveEvent::Retain(e) => {
                engine.observe_retain(
                    e.object,
                    e.size,
                    e.time,
                    e.path.depth,
                    e.path.truncated,
                    e.path.text,
                );
            }
            LiveEvent::Exit { time } => {
                let flushed = engine.flush_residents(time);
                if keep {
                    records.extend(flushed);
                }
            }
        }
        let mark = engine.clock() / every;
        if mark > last_mark {
            last_mark = mark;
            *snapshots += 1;
            let dropped = shared.dropped.load(Ordering::Relaxed);
            on_snapshot(&render_snapshot(&engine.snapshot(), *snapshots, dropped, top));
        }
    };

    loop {
        match rx.pop() {
            Some(ev) => {
                idle_spins = 0;
                handle(
                    ev,
                    &mut engine,
                    &mut records,
                    &mut samples,
                    &mut snapshots,
                    &mut events,
                );
            }
            None => {
                if shared.done.load(Ordering::Acquire) {
                    // `done` is set only after the producer's final push,
                    // so one more drain pass sees everything.
                    match rx.pop() {
                        Some(ev) => handle(
                            ev,
                            &mut engine,
                            &mut records,
                            &mut samples,
                            &mut snapshots,
                            &mut events,
                        ),
                        None => break,
                    }
                } else {
                    idle_spins = idle_spins.saturating_add(1);
                    if idle_spins < 128 {
                        std::hint::spin_loop();
                    } else if idle_spins < 1_024 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
    }

    ConsumerOut {
        engine,
        records,
        samples,
        snapshots,
        events,
    }
}

/// Runs `program` under live profiling: the VM on the calling thread,
/// the drag engine on a consumer thread, joined before returning. Each
/// rendered snapshot is passed to `on_snapshot` as it is produced (from
/// the consumer thread).
///
/// When `registry` is given, the run publishes the `heapdrag_live_*`
/// family: `heapdrag_live_events_total`, `heapdrag_live_dropped_total`,
/// `heapdrag_live_snapshots_total`, `heapdrag_live_unmatched_total`
/// counters and the `heapdrag_live_ring_capacity` gauge — plus the usual
/// `vm_*` family via [`Vm::attach_metrics`].
///
/// # Errors
///
/// Propagates any [`VmError`] from the run (the consumer thread is
/// always joined first).
pub fn run_live<S>(
    program: &Program,
    input: &[i64],
    config: VmConfig,
    options: &LiveOptions,
    registry: Option<&heapdrag_obs::Registry>,
    on_snapshot: S,
) -> Result<LiveRun, VmError>
where
    S: FnMut(&str) + Send,
{
    let (tx, rx) = ring::<LiveEvent>(options.ring_capacity);
    let capacity = tx.capacity();
    let mut profiler = LiveProfiler::new(tx);
    let shared = profiler.shared();
    let engine_config = EngineConfig {
        patterns: options.patterns,
        window: options.window,
        cold_after: options.cold_after,
    };
    let every = options.every.max(1);

    let mut vm = Vm::new(program, config);
    if let Some(r) = registry {
        vm.attach_metrics(r);
    }

    let consumer_shared = Arc::clone(&shared);
    let (outcome, out) = std::thread::scope(|scope| {
        let consumer = scope.spawn(move || {
            consume(
                rx,
                &consumer_shared,
                engine_config,
                every,
                options.top,
                options.keep_records,
                on_snapshot,
            )
        });
        let outcome = vm.run_observed(input, &mut profiler);
        // On success `on_exit` already set `done`; on error this is the
        // terminator that lets the consumer finish draining.
        profiler.abort();
        let out = consumer.join().expect("live consumer panicked");
        (outcome, out)
    });
    let outcome = outcome?;

    let ConsumerOut {
        mut engine,
        mut records,
        samples,
        snapshots,
        events,
    } = out;
    let dropped = shared.dropped.load(Ordering::Relaxed);

    let sites = vm.into_sites();
    let chain_names: HashMap<ChainId, String> = engine
        .chains_seen()
        .into_iter()
        .map(|c| (c, normalize_chain_name(&sites.format_chain(program, c))))
        .collect();
    let coldness = engine.coldness_summary();
    let (record_count, alloc_bytes, at_exit, sample_count, unmatched) = (
        engine.records(),
        engine.alloc_bytes(),
        engine.at_exit_records(),
        engine.samples(),
        engine.unmatched(),
    );
    let retains = engine.take_retains();
    let analyzer = DragAnalyzer::with_config(AnalyzerConfig {
        patterns: options.patterns,
    });
    let mut report = analyzer.finalize(engine.into_accum());
    report.attach_retains(&retains);

    if let Some(r) = registry {
        r.counter("heapdrag_live_events_total").add(events);
        r.counter("heapdrag_live_dropped_total").add(dropped);
        r.counter("heapdrag_live_snapshots_total").add(snapshots);
        r.counter("heapdrag_live_unmatched_total").add(unmatched);
        r.counter("heapdrag_retain_samples_total")
            .add(retains.len() as u64);
        r.gauge("heapdrag_live_ring_capacity")
            .set(i64::try_from(capacity).unwrap_or(i64::MAX));
    }

    let collected = options.keep_records.then(|| {
        // The file-logging profiler sorts records by object id at exit;
        // match it so a log written from a live run is byte-identical.
        records.sort_by_key(|r| r.object);
        (records, samples)
    });

    Ok(LiveRun {
        report,
        coldness,
        chain_names,
        records: record_count,
        alloc_bytes,
        at_exit,
        samples: sample_count,
        end_time: outcome.end_time,
        snapshots,
        dropped,
        unmatched,
        outcome,
        sites,
        collected,
        retains,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile;
    use heapdrag_vm::builder::ProgramBuilder;

    /// A program that allocates a dragged buffer plus loop garbage —
    /// enough churn for several deep GCs.
    fn dragging_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            m.push_int(4000).mark("big buffer").new_array().store(1);
            m.load(1).push_int(0).push_int(1).astore();
            m.push_int(0).store(2);
            m.label("work");
            m.load(2).push_int(200).cmpge().branch("done");
            m.push_int(64).mark("loop garbage").new_array().pop();
            m.load(2).push_int(1).add().store(2);
            m.jump("work");
            m.label("done").ret();
            m.finish();
        }
        b.set_entry(main);
        b.finish().unwrap()
    }

    #[test]
    fn unbounded_live_matches_post_mortem_profile() {
        let program = dragging_program();
        let config = VmConfig::profiling();
        let run = profile(&program, &[], config.clone()).unwrap();
        let offline = DragAnalyzer::new().analyze(&run.records, |c| Some(SiteId(c.0)));

        let mut snaps = Vec::new();
        let live = run_live(
            &program,
            &[],
            config,
            &LiveOptions {
                every: 2_000,
                keep_records: true,
                ..LiveOptions::default()
            },
            None,
            |s: &str| snaps.push(s.to_string()),
        )
        .unwrap();

        assert_eq!(live.dropped, 0);
        assert_eq!(live.unmatched, 0);
        assert!(live.snapshots >= 1, "no intermediate snapshot fired");
        assert_eq!(live.snapshots as usize, snaps.len());
        // The analyzer in the log path resolves chains identically.
        let log_report = DragAnalyzer::new().analyze(&run.records, |c| Some(SiteId(c.0)));
        assert_eq!(log_report, offline);
        assert_eq!(live.report, offline);
        assert_eq!(live.records, run.records.len() as u64);
        // keep_records reproduces the profiler's record vector exactly.
        let (collected, samples) = live.collected.as_ref().unwrap();
        assert_eq!(collected, &run.records);
        assert_eq!(samples, &run.samples);
        // Coldness columns exist and snapshots carried cold data.
        assert!(!live.coldness.is_empty());
        assert!(snaps.iter().all(|s| s.contains("cold (idle >=")));
    }

    #[test]
    fn rolling_window_snapshots_shrink() {
        let program = dragging_program();
        let mut snaps = Vec::new();
        let live = run_live(
            &program,
            &[],
            VmConfig::profiling(),
            &LiveOptions {
                window: WindowSpec::Rolling {
                    window: 4_096,
                    advance: 1_024,
                },
                every: 2_000,
                ..LiveOptions::default()
            },
            None,
            |s: &str| snaps.push(s.to_string()),
        )
        .unwrap();
        assert!(live.snapshots >= 1);
        assert!(snaps[0].contains("window: last 4096 bytes, advance 1024"));
        // The final cumulative report is unaffected by the window mode.
        assert!(live.report.total_drag() > 0);
    }

    #[test]
    fn vm_errors_still_join_the_consumer() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            // Index out of bounds: allocate a 1-element array, read slot 5.
            m.push_int(1).new_array().store(0);
            m.load(0).push_int(5).aload().pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let program = b.finish().unwrap();
        let err = run_live(
            &program,
            &[],
            VmConfig::profiling(),
            &LiveOptions::default(),
            None,
            |_: &str| {},
        );
        assert!(err.is_err());
    }
}
