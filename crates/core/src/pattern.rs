//! Lifetime-pattern classification of allocation sites (§3.4 of the paper)
//! and the program transformation each pattern suggests.

use std::fmt;

use crate::record::ObjectRecord;
use crate::u256::U256;

/// The four site behaviours of §3.4, plus a catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifetimePattern {
    /// Pattern 1: all of the drag at the site is due to never-used objects
    /// (counting constructor-only uses as never-used).
    AllNeverUsed,
    /// Pattern 2: most of the dragged objects at the site are never-used.
    MostlyNeverUsed,
    /// Pattern 3: most of the dragged objects at the site have a large
    /// drag relative to their lifetime.
    MostlyLargeDrag,
    /// Pattern 4: the variance of per-object drag is high — there may be no
    /// transformation that helps (e.g. the db repository).
    HighVariance,
    /// None of the four patterns applies cleanly.
    Mixed,
}

impl fmt::Display for LifetimePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LifetimePattern::AllNeverUsed => "all never-used",
            LifetimePattern::MostlyNeverUsed => "mostly never-used",
            LifetimePattern::MostlyLargeDrag => "mostly large drag",
            LifetimePattern::HighVariance => "high variance",
            LifetimePattern::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// The code-rewriting strategies of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// Assign `null` to a reference after its last use.
    AssignNull,
    /// Remove the allocation entirely (dead code removal).
    DeadCodeRemoval,
    /// Allocate lazily at the first use.
    LazyAllocation,
    /// No transformation is expected to help.
    NoTransformation,
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransformKind::AssignNull => "assigning null",
            TransformKind::DeadCodeRemoval => "code removal",
            TransformKind::LazyAllocation => "lazy allocation",
            TransformKind::NoTransformation => "none",
        };
        f.write_str(s)
    }
}

impl LifetimePattern {
    /// The rewriting §3.4 suggests for this behaviour.
    pub fn suggested_transform(self) -> TransformKind {
        match self {
            LifetimePattern::AllNeverUsed => TransformKind::DeadCodeRemoval,
            LifetimePattern::MostlyNeverUsed => TransformKind::LazyAllocation,
            LifetimePattern::MostlyLargeDrag => TransformKind::AssignNull,
            LifetimePattern::HighVariance | LifetimePattern::Mixed => {
                TransformKind::NoTransformation
            }
        }
    }
}

/// Thresholds steering [`classify`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternConfig {
    /// Clock window after creation within which uses count as
    /// constructor-only (folded into never-used). The default, 1 KB of
    /// allocation, absorbs uses performed while the constructor itself
    /// allocates sub-objects.
    pub ctor_use_window: u64,
    /// Fraction of never-used objects above which a site is "mostly
    /// never-used" (jack's sites were > 97 %).
    pub mostly_never_used: f64,
    /// An object has "large drag" when `drag_time / reachable_time`
    /// exceeds this.
    pub large_drag_fraction: f64,
    /// Fraction of large-drag objects above which a site is "mostly large
    /// drag".
    pub mostly_large_drag: f64,
    /// Coefficient of variation of per-object drag above which the site is
    /// "high variance".
    pub high_variance_cv: f64,
}

impl Default for PatternConfig {
    fn default() -> Self {
        PatternConfig {
            ctor_use_window: 1024,
            mostly_never_used: 0.9,
            large_drag_fraction: 0.4,
            mostly_large_drag: 0.6,
            high_variance_cv: 1.5,
        }
    }
}

/// True when the record's drag dominates its lifetime — the per-record
/// predicate behind "mostly large drag". Each record votes independently,
/// so the votes sum across shards like any other counter.
pub(crate) fn is_large_drag(r: &ObjectRecord, config: &PatternConfig) -> bool {
    let reach = r.reachable_time().max(1) as f64;
    r.drag_time() as f64 / reach >= config.large_drag_fraction
}

/// Order-independent sums from which a group's lifetime pattern is fully
/// derivable: object/never-used/large-drag counts plus the exact first and
/// second moments of per-object drag. Merging two accumulators is integer
/// addition, so the classification of a merged group cannot depend on how
/// records were sharded, batched, or streamed — the one float conversion
/// happens in [`classify_from_sums`], after all merging is done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PatternSums {
    /// Number of records.
    pub(crate) objects: u64,
    /// Records never used within the constructor window.
    pub(crate) never_used: u64,
    /// Records passing [`is_large_drag`].
    pub(crate) large_drag: u64,
    /// Σ drag (byte²).
    pub(crate) drag: u128,
    /// Σ drag² (byte⁴) — exact, hence 256-bit.
    pub(crate) drag_sq: U256,
}

impl PatternSums {
    pub(crate) fn add(&mut self, r: &ObjectRecord, config: &PatternConfig) {
        self.objects += 1;
        if r.is_never_used(config.ctor_use_window) {
            self.never_used += 1;
        }
        if is_large_drag(r, config) {
            self.large_drag += 1;
        }
        let d = r.drag();
        self.drag += d;
        self.drag_sq.add_assign(U256::mul_u128(d, d));
    }

    pub(crate) fn merge(&mut self, other: &PatternSums) {
        self.objects += other.objects;
        self.never_used += other.never_used;
        self.large_drag += other.large_drag;
        self.drag += other.drag;
        self.drag_sq.add_assign(other.drag_sq);
    }
}

/// The coefficient of variation of per-object drag, from exact sums:
/// `sqrt(E[d²] − mean²) / mean`. A zero drag sum means a zero mean, for
/// which the CV is defined as 0 (matching the pre-streaming behaviour).
pub(crate) fn cv_from_sums(objects: u64, drag: u128, drag_sq: U256) -> f64 {
    if drag == 0 || objects == 0 {
        return 0.0;
    }
    let n = objects as f64;
    let mean = drag as f64 / n;
    let ex2 = drag_sq.to_f64() / n;
    let var = (ex2 - mean * mean).max(0.0);
    var.sqrt() / mean
}

/// The §3.4 decision ladder over [`PatternSums`].
pub(crate) fn classify_from_sums(sums: &PatternSums, config: &PatternConfig) -> LifetimePattern {
    if sums.objects == 0 {
        return LifetimePattern::Mixed;
    }
    let n = sums.objects as f64;
    if sums.never_used == sums.objects {
        return LifetimePattern::AllNeverUsed;
    }
    if sums.never_used as f64 / n >= config.mostly_never_used {
        return LifetimePattern::MostlyNeverUsed;
    }
    // Variance check before the large-drag check only when drag sizes are
    // wildly spread — a uniform set of large drags is actionable, a spread
    // is not.
    let cv = cv_from_sums(sums.objects, sums.drag, sums.drag_sq);
    if sums.large_drag as f64 / n >= config.mostly_large_drag && cv <= config.high_variance_cv {
        return LifetimePattern::MostlyLargeDrag;
    }
    if cv > config.high_variance_cv {
        return LifetimePattern::HighVariance;
    }
    LifetimePattern::Mixed
}

/// Classifies the lifetime behaviour of one group of records (all from the
/// same allocation site). Internally this folds the records into
/// `PatternSums` and classifies the sums, so it agrees exactly with the
/// sharded and streaming analyzers, which merge the same sums.
pub fn classify(records: &[&ObjectRecord], config: &PatternConfig) -> LifetimePattern {
    let mut sums = PatternSums::default();
    for r in records {
        sums.add(r, config);
    }
    classify_from_sums(&sums, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};

    fn record(created: u64, last_use: Option<u64>, freed: u64) -> ObjectRecord {
        ObjectRecord {
            object: ObjectId(0),
            class: ClassId(0),
            size: 16,
            created,
            freed,
            last_use,
            alloc_site: ChainId(0),
            last_use_site: None,
            at_exit: false,
        }
    }

    fn classify_owned(records: &[ObjectRecord]) -> LifetimePattern {
        let refs: Vec<&ObjectRecord> = records.iter().collect();
        classify(&refs, &PatternConfig::default())
    }

    #[test]
    fn pattern_one_all_never_used() {
        let rs = vec![record(0, None, 100), record(10, Some(10), 100)];
        assert_eq!(classify_owned(&rs), LifetimePattern::AllNeverUsed);
        assert_eq!(
            LifetimePattern::AllNeverUsed.suggested_transform(),
            TransformKind::DeadCodeRemoval
        );
    }

    #[test]
    fn pattern_two_mostly_never_used() {
        let mut rs: Vec<ObjectRecord> = (0..97).map(|_| record(0, None, 100_000)).collect();
        rs.push(record(0, Some(90_000), 100_000));
        rs.push(record(0, Some(90_000), 100_000));
        rs.push(record(0, Some(90_000), 100_000));
        assert_eq!(classify_owned(&rs), LifetimePattern::MostlyNeverUsed);
        assert_eq!(
            LifetimePattern::MostlyNeverUsed.suggested_transform(),
            TransformKind::LazyAllocation
        );
    }

    #[test]
    fn pattern_three_uniform_large_drag() {
        // Every object in-use for half its life, dragged the other half
        // (times far beyond the constructor window).
        let rs: Vec<ObjectRecord> =
            (0..10).map(|i| record(i, Some(i + 50_000), i + 100_000)).collect();
        assert_eq!(classify_owned(&rs), LifetimePattern::MostlyLargeDrag);
        assert_eq!(
            LifetimePattern::MostlyLargeDrag.suggested_transform(),
            TransformKind::AssignNull
        );
    }

    #[test]
    fn pattern_four_high_variance() {
        // Mostly tiny drags with a couple of enormous ones → high CV.
        let mut rs: Vec<ObjectRecord> =
            (0..20).map(|i| record(i, Some(i + 99_000), i + 100_000)).collect();
        rs.push(record(0, Some(10_000), 100_000_000));
        rs.push(record(0, Some(10_000), 100_000_000));
        assert_eq!(classify_owned(&rs), LifetimePattern::HighVariance);
        assert_eq!(
            LifetimePattern::HighVariance.suggested_transform(),
            TransformKind::NoTransformation
        );
    }

    #[test]
    fn empty_group_is_mixed() {
        assert_eq!(classify(&[], &PatternConfig::default()), LifetimePattern::Mixed);
    }

    #[test]
    fn sums_are_split_invariant() {
        // Folding the same records through any split of PatternSums must
        // yield bit-identical sums (and hence the same classification) —
        // the property the sharded and streaming analyzers rely on.
        let config = PatternConfig::default();
        let mut rs: Vec<ObjectRecord> = (0..23)
            .map(|i| record(i * 7, (i % 3 == 0).then_some(i * 7 + 2_000), i * 7 + 90_000))
            .collect();
        rs.push(record(0, Some(10_000), 100_000_000));
        let mut whole = PatternSums::default();
        for r in &rs {
            whole.add(r, &config);
        }
        for split in [1, 2, 5, rs.len()] {
            let mut merged = PatternSums::default();
            for chunk in rs.chunks(split) {
                let mut part = PatternSums::default();
                for r in chunk {
                    part.add(r, &config);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, whole, "split = {split}");
            assert_eq!(
                classify_from_sums(&merged, &config),
                classify_from_sums(&whole, &config)
            );
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(LifetimePattern::AllNeverUsed.to_string(), "all never-used");
        assert_eq!(TransformKind::LazyAllocation.to_string(), "lazy allocation");
    }
}
