//! End-to-end parity of the sharded off-line pipeline: the same log must
//! produce a byte-identical [`DragReport`] for every shard count, and
//! malformed logs must report the same first error line as the sequential
//! scan.

use heapdrag_core::record::ObjectRecord;
use heapdrag_core::{
    profile, DragAnalyzer, DragReport, LogError, ParallelConfig, Pipeline, VmConfig,
};
use heapdrag_testkit::{check, Rng};
use heapdrag_vm::ids::{ChainId, ClassId, ObjectId};
use heapdrag_vm::{Program, ProgramBuilder, SiteId};

fn text_log(run: &heapdrag_core::ProfileRun, program: &Program) -> String {
    let mut buf = Vec::new();
    Pipeline::options().write_to(run, program, &mut buf).expect("writes");
    String::from_utf8(buf).expect("text log is utf-8")
}

fn pipeline_at(par: &ParallelConfig) -> Pipeline {
    Pipeline::options().shards(par.shards).chunk_records(par.chunk_records)
}

fn parse_at(text: &str, par: &ParallelConfig) -> Result<heapdrag_core::Ingested, LogError> {
    pipeline_at(par)
        .ingest_bytes(text)
        .map_err(|e| e.as_log().expect("log error").clone())
}

/// A program with several allocation sites of contrasting lifetimes: a
/// dragged array (one early use, long drag), a never-used buffer, and a
/// loop of short-lived objects.
fn workload_log() -> String {
    let mut b = ProgramBuilder::new();
    let main = b.declare_method("main", None, true, 1, 5);
    {
        let mut m = b.begin_body(main);
        // Slot 1: a big array used once, then dragged to exit.
        m.push_int(4000).mark("dragged array").new_array().store(1);
        m.load(1).push_int(0).push_int(7).astore();
        // Slot 2: a buffer that is never used at all.
        m.push_int(2000).mark("dead buffer").new_array().store(2);
        // Slot 3: loop counter; slot 4: short-lived arrays forcing deep GCs.
        m.push_int(0).store(3);
        m.label("top");
        m.load(3).push_int(120).cmpge().branch("done");
        m.push_int(512).mark("loop temp").new_array().store(4);
        m.load(4).push_int(1).push_int(3).astore();
        m.load(3).push_int(1).add().store(3);
        m.jump("top");
        m.label("done");
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    let program = b.finish().expect("valid program");
    let run = profile(&program, &[], VmConfig::profiling()).expect("profiles");
    text_log(&run, &program)
}

fn analyze_at(text: &str, par: &ParallelConfig) -> DragReport {
    let parsed = parse_at(text, par).expect("parses").log;
    let (report, metrics) =
        pipeline_at(par).analyze_records(&parsed.records, |c| Some(SiteId(c.0)));
    assert_eq!(metrics.total_records(), parsed.records.len() as u64);
    report
}

#[test]
fn workload_report_is_identical_across_shard_counts() {
    let text = workload_log();
    let baseline = analyze_at(&text, &ParallelConfig::sequential());
    assert!(
        baseline.by_nested_site.len() >= 2,
        "workload should hit several sites"
    );
    for shards in [2usize, 3, 8] {
        let par = ParallelConfig {
            shards,
            chunk_records: 16,
        };
        let report = analyze_at(&text, &par);
        // Spot-check the facets named in the acceptance criteria before the
        // full structural equality: totals, classification, ordering.
        assert_eq!(report.total_drag(), baseline.total_drag(), "shards = {shards}");
        let patterns: Vec<_> = report
            .by_nested_site
            .iter()
            .map(|e| (e.site, e.stats.pattern))
            .collect();
        let base_patterns: Vec<_> = baseline
            .by_nested_site
            .iter()
            .map(|e| (e.site, e.stats.pattern))
            .collect();
        assert_eq!(patterns, base_patterns, "shards = {shards}");
        assert_eq!(report, baseline, "shards = {shards}");
    }
}

#[test]
fn random_records_report_is_identical_across_shard_counts() {
    check("random_records_parity", 48, |rng: &mut Rng| {
        let records = random_records(rng);
        let sequential =
            DragAnalyzer::new().analyze(&records, |c| Some(SiteId(c.0)));
        for shards in [1usize, 2, 8] {
            let (report, _) = Pipeline::options()
                .shards(shards)
                .analyze_records(&records, |c| Some(SiteId(c.0)));
            assert_eq!(report, sequential, "shards = {shards}");
        }
    });
}

fn random_records(rng: &mut Rng) -> Vec<ObjectRecord> {
    let n = rng.range_usize(0, 200);
    (0..n)
        .map(|i| {
            let created = rng.range_u64(0, 100_000);
            let freed = created + rng.range_u64(1, 50_000);
            let used = rng.ratio(3, 4);
            ObjectRecord {
                object: ObjectId(i as u64),
                class: ClassId(rng.range_u32(0, 4)),
                size: 8 * rng.range_u64(1, 64),
                created,
                freed,
                last_use: used.then(|| rng.range_u64(created, freed + 1)),
                alloc_site: ChainId(rng.range_u32(0, 6)),
                last_use_site: used.then(|| ChainId(rng.range_u32(0, 6))),
                at_exit: rng.bool(),
            }
        })
        .collect()
}

#[test]
fn malformed_log_reports_same_line_for_every_shard_count() {
    let mut text = workload_log();
    // Corrupt one record line in the middle of the body.
    let lines: Vec<&str> = text.lines().collect();
    let bad_line = lines
        .iter()
        .position(|l| l.starts_with("obj "))
        .expect("has records")
        + 3;
    let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mangled[bad_line - 1] = "obj 9999 not-a-number".to_string();
    text = mangled.join("\n");
    text.push('\n');

    let sequential = parse_at(&text, &ParallelConfig::sequential()).expect_err("must fail");
    assert_eq!(sequential.line, bad_line);
    for shards in [1usize, 2, 8] {
        let par = ParallelConfig {
            shards,
            chunk_records: 4,
        };
        let err = parse_at(&text, &par).expect_err("must fail");
        assert_eq!(err.line, sequential.line, "shards = {shards}");
        assert_eq!(err.message, sequential.message, "shards = {shards}");
    }
}
