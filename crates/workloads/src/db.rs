//! `db` — SPECjvm98 database simulation.
//!
//! The paper's §3.4 pattern 4 example — the one benchmark with **no**
//! savings: "there may be a large repository of objects … A query on the
//! repository leads to a use of an object. However, each query accesses
//! only a small number of objects and the queries are spread out over the
//! whole application. Nevertheless the repository and all objects in it
//! need to be kept as the exact queries cannot be predicted in advance."
//!
//! Both variants build the identical program; Table 2 reports ~0 % savings
//! for db and Figure 2 omits its panel.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the db program (identical for both variants).
pub fn build(_variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    // The repository is long-lived whichever JDK it runs on; use the
    // original JDK in both variants so the programs are truly identical.
    let jdk = jdk::install(&mut b, Variant::Original);

    let record = b
        .begin_class("db.Record")
        .field("key", Visibility::Private)
        .field("payload", Visibility::Private)
        .finish();
    let record_init = b.declare_method("init", Some(record), false, 2, 2);
    {
        let mut m = b.begin_body(record_init);
        m.load(0).load(1).putfield_named(record, "key");
        m.load(0).push_int(16);
        m.mark("record payload").new_array().putfield_named(record, "payload");
        m.ret();
        m.finish();
    }
    let record_probe = b.declare_method("probe", Some(record), false, 1, 1);
    {
        let mut m = b.begin_body(record_probe);
        m.load(0).getfield_named(record, "key");
        m.load(0).getfield_named(record, "payload").array_len();
        m.add().ret_val();
        m.finish();
    }
    let _ = record_probe;

    // main(input = [records, queries, seed])
    let main = b.declare_method("main", None, true, 1, 8);
    {
        // locals: 1 records, 2 queries, 3 seed, 4 repo, 5 i, 6 acc, 7 rec
        let mut m = b.begin_body(main);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.load(0).push_int(2).aload().store(3);
        // build the repository
        m.new_obj(jdk.vector).dup().store(4);
        m.load(1).call(jdk.vec_init);
        m.push_int(0).store(5);
        m.label("build");
        m.load(5).load(1).cmpge().branch("built");
        m.mark("repository record").new_obj(record).dup().store(7);
        m.load(5).call(record_init);
        m.load(4).load(7).call(jdk.vec_add);
        m.load(5).push_int(1).add().store(5);
        m.jump("build");
        m.label("built");
        // run queries: LCG chooses a record; each query allocates a small
        // result buffer (the spread-out churn the paper describes)
        m.push_int(0).store(6);
        m.push_int(0).store(5);
        m.label("query");
        m.load(5).load(2).cmpge().branch("queried");
        // seed = (seed * 1103515245 + 12345) mod 2^31
        m.load(3).push_int(1103515245).mul().push_int(12345).add();
        m.push_int(2147483647).rem().store(3);
        m.push_int(12).mark("query result buffer").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(6);
        m.load(4);
        m.load(3).load(1).rem(); // index = seed % records (seed >= 0)
        m.call(jdk.vec_get).call_virtual("probe", 0);
        m.add().store(6);
        m.load(5).push_int(1).add().store(5);
        m.jump("query");
        m.label("queried");
        m.load(6).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("db builds")
}

/// The db workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "db",
        description: "database simulation",
        build,
        // 400 records, 2500 queries.
        default_input: || vec![400, 2500, 42],
        alternate_input: || vec![300, 3000, 7],
        rewriting: "none applicable",
        reference_kinds: "-",
        expected_analysis: "-",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_are_identical() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
        assert_eq!(o.heap.allocated_bytes, r.heap.allocated_bytes);
    }

    #[test]
    fn no_savings_for_db() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        assert!(s.drag_saving_pct().abs() < 1.0, "drag {:.2}%", s.drag_saving_pct());
        assert!(s.space_saving_pct().abs() < 1.0, "space {:.2}%", s.space_saving_pct());
    }

    #[test]
    fn repository_records_show_high_variance_or_spread_use() {
        // Pattern 4: drag spread — queries touch records at unpredictable
        // times, so per-record drag varies widely.
        let w = workload();
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling()).unwrap();
        let report =
            heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
        let entry = report
            .by_nested_site
            .iter()
            .find(|e| {
                run.sites
                    .format_chain(&program, e.site)
                    .contains("repository record")
            })
            .expect("record site profiled");
        use heapdrag_core::LifetimePattern::*;
        assert!(
            matches!(entry.stats.pattern, HighVariance | Mixed),
            "no actionable pattern at the repository site, got {}",
            entry.stats.pattern
        );
    }
}
