//! `juru` — web indexing (an IBM search engine in the paper).
//!
//! The paper's finding (§3.4.1): the largest drag site allocates 100 K-char
//! arrays into a *local variable*; each array is in use for ~200 KB of
//! allocation and then drags for another ~200 KB until the local is
//! overwritten. Assigning null to the local after its last use removes a
//! third of the total drag. The program works in cycles — one per document
//! — with the same drag in every cycle.
//!
//! This model indexes `docs` documents: each cycle reads the document into
//! a large char buffer (`jdk.Str`), derives postings from it (allocation
//! that *uses* the buffer), then merges the postings (allocation that does
//! **not** use the buffer — the drag window). The revised variant nulls
//! the buffer local before the merge.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the juru program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let jdk = jdk::install(&mut b, variant);

    // A posting: (docid, position) pair.
    let posting = b
        .begin_class("juru.Posting")
        .field("doc", Visibility::Private)
        .field("pos", Visibility::Private)
        .finish();
    let posting_init = b.declare_method("init", Some(posting), false, 3, 3);
    {
        let mut m = b.begin_body(posting_init);
        m.load(0).load(1).putfield_named(posting, "doc");
        m.load(0).load(2).putfield_named(posting, "pos");
        m.ret();
        m.finish();
    }
    let posting_pos = b.declare_method("pos", Some(posting), false, 1, 1);
    {
        let mut m = b.begin_body(posting_pos);
        m.load(0).getfield_named(posting, "pos").ret_val();
        m.finish();
    }
    let _ = posting_pos;

    // indexDocument(docid, bufChars, words) -> checksum
    //   locals: 0 docid, 1 bufChars, 2 words, 3 buffer, 4 postings,
    //           5 loop idx, 6 acc/scratch
    let index_doc = b.declare_method("indexDocument", None, true, 3, 7);
    {
        let mut m = b.begin_body(index_doc);
        // --- read: the big buffer (the paper's 100K char array site) ---
        m.new_obj(jdk.str_class).dup().store(3);
        m.load(1);
        m.mark("document buffer char[]").call(jdk.str_init);
        // --- index: derive postings, using the buffer -------------------
        m.new_obj(jdk.vector).dup().store(4);
        m.push_int(64).call(jdk.vec_init);
        m.push_int(0).store(5);
        m.label("index_loop");
        m.load(5).load(2).cmpge().branch("indexed");
        // posting position derived from the buffer (a buffer *use*)
        m.mark("posting").new_obj(posting).dup().store(6);
        m.load(0);
        m.load(3).call(jdk.str_len);
        m.load(5).add();
        m.call(posting_init);
        m.load(4).load(6).call(jdk.vec_add);
        m.load(5).push_int(1).add().store(5);
        m.jump("index_loop");
        m.label("indexed");
        if variant == Variant::Revised {
            // The paper's rewriting: the buffer's last use was above.
            m.push_null().store(3);
        }
        // --- merge: allocation that does not touch the buffer ------------
        m.push_int(0).store(6);
        m.push_int(0).store(5);
        m.label("merge_loop");
        m.load(5).load(4).call(jdk.vec_size).cmpge().branch("merged");
        // merge buckets: small scratch arrays (clock advances; buffer drags)
        m.push_int(24).new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(6);
        m.load(4).load(5).call(jdk.vec_get).call_virtual("pos", 0);
        m.add().store(6);
        m.load(5).push_int(1).add().store(5);
        m.jump("merge_loop");
        m.label("merged");
        m.load(6).ret_val();
        m.finish();
    }

    // main(input = [docs, buf_chars, words])
    let main = b.declare_method("main", None, true, 1, 6);
    {
        let mut m = b.begin_body(main);
        m.call(jdk.init_locales);
        m.load(0).push_int(0).aload().store(1); // docs
        m.load(0).push_int(1).aload().store(2); // buffer chars
        m.load(0).push_int(2).aload().store(3); // words per doc
        m.push_int(0).store(4); // checksum
        m.push_int(0).store(5); // doc index
        m.label("docs_loop");
        m.load(5).load(1).cmpge().branch("done");
        m.load(4);
        m.load(5);
        // per-doc sizes vary (real documents do; this also keeps the
        // deterministic byte clock from resonating with the GC interval)
        m.load(2).load(5).push_int(53).mul().push_int(400).rem().add();
        m.load(3).load(5).push_int(17).mul().push_int(60).rem().add();
        m.call(index_doc);
        m.add().store(4);
        m.load(5).push_int(1).add().store(5);
        m.jump("docs_loop");
        m.label("done");
        m.load(4).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("juru builds")
}

/// The juru workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "juru",
        description: "web indexing",
        build,
        // Cycle lengths are chosen to precess against the 100 KB deep-GC
        // interval (≈1.6–1.7 cycles per GC), so samples land throughout
        // the cycle rather than resonating with the big buffer allocation.
        default_input: || vec![10, 3600, 170],
        alternate_input: || vec![12, 5000, 85],
        rewriting: "assigning null",
        reference_kinds: "local variable",
        expected_analysis: "liveness",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
        assert_eq!(o.output.len(), 1, "prints one checksum");
    }

    #[test]
    fn nulling_the_buffer_saves_drag() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 33.68 % drag saving, 10.95 % space saving.
        assert!(
            s.drag_saving_pct() > 15.0 && s.drag_saving_pct() < 60.0,
            "drag saving {:.1}%",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 3.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn buffer_site_dominates_the_drag_report() {
        let w = workload();
        let input = (w.default_input)();
        let program = w.original();
        let run = profile(&program, &input, VmConfig::profiling()).unwrap();
        let report =
            heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
        let top = &report.by_nested_site[0];
        let name = run.sites.format_chain(&program, top.site);
        assert!(
            name.contains("jdk.Str char array") || name.contains("document buffer"),
            "top drag site is the buffer: {name}"
        );
    }
}
