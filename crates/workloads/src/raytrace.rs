//! `raytrace` — SPECjvm98 ray tracer.
//!
//! §3.4.2: "there are 17 allocation sites with the same behavior: an object
//! is allocated and assigned to an array element; the object's last use
//! occurs during its initialization … Thus, all objects allocated at these
//! sites are considered never-used … the code for the allocation of these
//! objects can be removed. This leads to a 45 % reduction in total drag."
//! The paper also notes a `private` field read only by a `get` method the
//! call graph shows is never invoked (§5.4).
//!
//! The model builds a scene with several distinct allocation sites filling
//! shade tables that rendering never reads (it uses a parallel int-array
//! geometry instead), then renders pixels with short-lived rays.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::spec::{Variant, Workload};

/// Builds the raytrace program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();

    // A shade entry: initialised by its constructor, never read again.
    let shade = b
        .begin_class("rt.Shade")
        .field("rgb", Visibility::Private)
        .field("gloss", Visibility::Private)
        .field("table", Visibility::Private)
        .finish();
    let shade_init = b.declare_method("init", Some(shade), false, 2, 2);
    {
        let mut m = b.begin_body(shade_init);
        m.load(0).load(1).putfield_named(shade, "rgb");
        m.load(0).load(1).push_int(2).mul().putfield_named(shade, "gloss");
        // a small per-shade lookup table, also only touched here
        m.load(0).push_int(10);
        m.mark("shade lookup table").new_array().putfield_named(shade, "table");
        m.ret();
        m.finish();
    }
    // The §5.4 example: a getter nothing ever calls.
    let shade_gloss = b.declare_method("gloss", Some(shade), false, 1, 1);
    {
        let mut m = b.begin_body(shade_gloss);
        m.load(0).getfield_named(shade, "gloss").ret_val();
        m.finish();
    }
    let _ = shade_gloss;

    let scene = b
        .begin_class("rt.Scene")
        .field("shadesA", Visibility::Private)
        .field("shadesB", Visibility::Private)
        .field("geometry", Visibility::Private)
        .finish();
    let sa = b.field_slot(scene, "shadesA");
    let sb = b.field_slot(scene, "shadesB");
    let geo = b.field_slot(scene, "geometry");

    // setup(this, n): fills geometry (used) and both shade tables
    // (never used) — two of the paper's seventeen sites.
    let setup = b.declare_method("setup", Some(scene), false, 2, 5);
    {
        // locals: 2 i, 3 arr, 4 shade
        let mut m = b.begin_body(setup);
        m.load(0).load(1).new_array().putfield(geo);
        m.load(0).load(1).new_array().putfield(sa);
        m.load(0).load(1).new_array().putfield(sb);
        m.push_int(0).store(2);
        m.label("fill");
        m.load(2).load(1).cmpge().branch("filled");
        // geometry[i] = i*i (genuinely used by render)
        m.load(0).getfield(geo).load(2).load(2).load(2).mul().astore();
        if variant == Variant::Original {
            // site A: shadesA[i] = new Shade(i)  — ctor-only use
            m.mark("site A: never-used Shade").new_obj(shade).dup().store(4);
            m.load(2).call(shade_init);
            m.load(0).getfield(sa).load(2).load(4).astore();
            // site B: shadesB[i] = new Shade(2 i) — ctor-only use
            m.mark("site B: never-used Shade").new_obj(shade).dup().store(4);
            m.load(2).push_int(2).mul().call(shade_init);
            m.load(0).getfield(sb).load(2).load(4).astore();
        }
        m.load(2).push_int(1).add().store(2);
        m.jump("fill");
        m.label("filled");
        m.ret();
        m.finish();
    }

    // render(this, pixels) -> checksum: short-lived ray objects per pixel.
    let ray = b
        .begin_class("rt.Ray")
        .field("dir", Visibility::Private)
        .finish();
    let ray_init = b.declare_method("init", Some(ray), false, 2, 2);
    {
        let mut m = b.begin_body(ray_init);
        m.load(0).load(1);
        m.mark("ray direction vector").new_array().putfield_named(ray, "dir");
        m.ret();
        m.finish();
    }
    let render = b.declare_method("render", Some(scene), false, 2, 6);
    {
        // locals: 2 i, 3 acc, 4 ray, 5 geometry
        let mut m = b.begin_body(render);
        m.load(0).getfield(geo).store(5);
        m.push_int(0).store(2);
        m.push_int(0).store(3);
        m.label("px");
        m.load(2).load(1).cmpge().branch("done");
        m.mark("per-pixel ray").new_obj(ray).dup().store(4);
        m.push_int(12).call(ray_init);
        // trace: read geometry + the ray's dir length
        m.load(3);
        m.load(5).load(2).load(5).array_len().rem().aload();
        m.add();
        m.load(4).getfield_named(ray, "dir").array_len();
        m.add().store(3);
        m.load(2).push_int(1).add().store(2);
        m.jump("px");
        m.label("done");
        m.load(3).ret_val();
        m.finish();
    }

    // main(input = [scene_size, pixels])
    let main = b.declare_method("main", None, true, 1, 4);
    {
        let mut m = b.begin_body(main);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.new_obj(scene).dup().store(3);
        m.load(1).call(setup);
        m.load(3).load(2).call(render).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("raytrace builds")
}

/// The raytrace workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "raytrace",
        description: "raytracer of a picture",
        build,
        // 400 scene entries, 2500 pixels.
        default_input: || vec![400, 2500],
        alternate_input: || vec![550, 1800],
        rewriting: "code removal + assigning null",
        reference_kinds: "private array, private",
        expected_analysis: "indirect-usage (R), array liveness",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
    }

    #[test]
    fn removal_halves_the_drag() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 51.28 % drag saving, 30.55 % space saving.
        assert!(
            s.drag_saving_pct() > 35.0 && s.drag_saving_pct() < 80.0,
            "drag saving {:.1}%",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 10.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn shade_sites_classified_never_used() {
        let w = workload();
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling()).unwrap();
        let report =
            heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
        let shade_sites: Vec<_> = report
            .by_nested_site
            .iter()
            .filter(|e| {
                run.sites
                    .format_chain(&program, e.site)
                    .contains("never-used Shade")
            })
            .collect();
        assert_eq!(shade_sites.len(), 2, "two distinct shade sites");
        for site in shade_sites {
            assert_eq!(
                site.stats.pattern,
                heapdrag_core::LifetimePattern::AllNeverUsed,
                "§3.4 pattern 1 at each site"
            );
        }
    }
}
