//! Workload descriptors: each of the paper's nine benchmarks, in an
//! *original* and a *manually revised* form, with a default and an
//! alternate input (Tables 2 and 3).

use heapdrag_vm::program::Program;

/// Which source variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The benchmark as written, with its drag.
    Original,
    /// The benchmark after the paper's manual rewritings.
    Revised,
}

/// One benchmark program.
pub struct Workload {
    /// Short name (matches the paper's Table 1).
    pub name: &'static str,
    /// One-line description (Table 1's last column).
    pub description: &'static str,
    /// Builds the requested variant.
    pub build: fn(Variant) -> Program,
    /// The input the tool is applied to (Table 2).
    pub default_input: fn() -> Vec<i64>,
    /// A second input (Table 3).
    pub alternate_input: fn() -> Vec<i64>,
    /// Rewriting strategies applied, as in Table 5.
    pub rewriting: &'static str,
    /// Reference kinds rewritten, as in Table 5.
    pub reference_kinds: &'static str,
    /// Static analysis expected to automate it, as in Table 5.
    pub expected_analysis: &'static str,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

impl Workload {
    /// Builds the original variant.
    pub fn original(&self) -> Program {
        (self.build)(Variant::Original)
    }

    /// Builds the revised variant.
    pub fn revised(&self) -> Program {
        (self.build)(Variant::Revised)
    }

    /// Static "source statement" count of the original (Table 1's stand-in).
    pub fn code_stmts(&self) -> usize {
        self.original().code_size()
    }

    /// Application class count of the original (Table 1), excluding the
    /// six builtin classes.
    pub fn class_count(&self) -> usize {
        self.original().classes.len().saturating_sub(6)
    }
}

/// All nine benchmarks in Table 1 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        crate::javac::workload(),
        crate::db::workload(),
        crate::jack::workload(),
        crate::raytrace::workload(),
        crate::jess::workload(),
        crate::mc::workload(),
        crate::euler::workload(),
        crate::juru::workload(),
        crate::analyzer::workload(),
    ]
}

/// Finds a workload by name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_workloads_with_unique_names() {
        let all = all_workloads();
        assert_eq!(all.len(), 9);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("juru").is_some());
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn every_variant_passes_the_bytecode_verifier() {
        for w in all_workloads() {
            for p in [w.original(), w.revised()] {
                heapdrag_vm::verify::verify_program(&p)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            }
        }
    }

    #[test]
    fn variants_agree_on_both_inputs() {
        use heapdrag_vm::interp::{Vm, VmConfig};
        for w in all_workloads() {
            for input in [(w.default_input)(), (w.alternate_input)()] {
                let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
                let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
                assert_eq!(o.output, r.output, "{} on {input:?}", w.name);
            }
        }
    }
}
