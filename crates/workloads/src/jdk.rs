//! A miniature class library ("mini-JDK") the benchmarks allocate through,
//! mirroring the role `java.util` plays in the paper: nested allocation
//! sites bottom out in library code (`new char[]` inside `java.util.String`
//! etc.), and one of the paper's rewritings (`jess`) edits the JDK itself.
//!
//! Provided classes:
//!
//! * `jdk.Vector` — growable array; its `removeLast` is the §5.2 vector
//!   idiom: the original *leaks* the removed element, the revised variant
//!   nulls the slot.
//! * `jdk.HashTable` — open-addressing int→ref table.
//! * `jdk.Str` — a char-array wrapper (the `java.util.String` stand-in).
//! * `jdk.Locale` — the §5.1 usage-analysis example: static fields holding
//!   pre-allocated locales, most never used; the revised variant does not
//!   allocate them.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::ids::{ClassId, MethodId, StaticId};
use heapdrag_vm::value::Value;

use crate::spec::Variant;

/// Ids of everything the mini-JDK installs.
#[derive(Debug, Clone, Copy)]
pub struct Jdk {
    /// `jdk.Vector`.
    pub vector: ClassId,
    /// `Vector.init(this, capacity)`.
    pub vec_init: MethodId,
    /// `Vector.add(this, value)` — grows when full.
    pub vec_add: MethodId,
    /// `Vector.get(this, index) -> value`.
    pub vec_get: MethodId,
    /// `Vector.removeLast(this) -> value` — leaky in the original JDK.
    pub vec_remove_last: MethodId,
    /// `Vector.size(this) -> int`.
    pub vec_size: MethodId,
    /// `jdk.HashTable`.
    pub hashtable: ClassId,
    /// `HashTable.init(this, capacity)`.
    pub ht_init: MethodId,
    /// `HashTable.put(this, key, value)`.
    pub ht_put: MethodId,
    /// `HashTable.get(this, key) -> value|null`.
    pub ht_get: MethodId,
    /// `jdk.Str`.
    pub str_class: ClassId,
    /// `Str.init(this, length)` — allocates the char array.
    pub str_init: MethodId,
    /// `Str.len(this) -> int`.
    pub str_len: MethodId,
    /// `jdk.Locale`.
    pub locale: ClassId,
    /// `Locale.initLocales()` — static initialiser for the locale table.
    pub init_locales: MethodId,
    /// The one locale static the benchmarks actually read.
    pub locale_en: StaticId,
    /// Never-read locale statics (original variant allocates into them).
    pub unused_locales: [StaticId; 3],
}

/// Installs the library into `b`. The `variant` selects the original
/// (leaky `removeLast`, eager locales) or revised JDK.
pub fn install(b: &mut ProgramBuilder, variant: Variant) -> Jdk {
    // ---- Vector ---------------------------------------------------------
    let vector = b
        .begin_class("jdk.Vector")
        .field("elements", Visibility::Private)
        .field("size", Visibility::Private)
        .finish();
    let el = b.field_slot(vector, "elements");
    let sz = b.field_slot(vector, "size");

    let vec_init = b.declare_method("init", Some(vector), false, 2, 2);
    {
        let mut m = b.begin_body(vec_init);
        m.load(0).load(1);
        m.mark("jdk.Vector backing array").new_array().putfield(el);
        m.load(0).push_int(0).putfield(sz);
        m.ret();
        m.finish();
    }
    let vec_add = b.declare_method("add", Some(vector), false, 2, 5);
    {
        // local 2: elements, local 3: grown array, local 4: copy index
        let mut m = b.begin_body(vec_add);
        m.load(0).getfield(el).store(2);
        // grow when size == elements.len
        m.load(0).getfield(sz).load(2).array_len().cmplt().branch("store");
        m.load(2).array_len().push_int(2).mul();
        m.mark("jdk.Vector grown array").new_array().store(3);
        m.push_int(0).store(4);
        m.label("copy");
        m.load(4).load(2).array_len().cmpge().branch("copied");
        // new[i] = old[i]
        m.load(3).load(4);
        m.load(2).load(4).aload();
        m.astore();
        m.load(4).push_int(1).add().store(4);
        m.jump("copy");
        m.label("copied");
        m.load(0).load(3).putfield(el);
        m.load(3).store(2);
        m.label("store");
        // elements[size] = value; size += 1
        m.load(2).load(0).getfield(sz).load(1).astore();
        m.load(0).load(0).getfield(sz).push_int(1).add().putfield(sz);
        m.ret();
        m.finish();
    }
    let vec_get = b.declare_method("get", Some(vector), false, 2, 2);
    {
        let mut m = b.begin_body(vec_get);
        m.load(0).getfield(el).load(1).aload().ret_val();
        m.finish();
    }
    let vec_remove_last = b.declare_method("removeLast", Some(vector), false, 1, 2);
    {
        let mut m = b.begin_body(vec_remove_last);
        // result = elements[size-1]
        m.load(0).getfield(el);
        m.load(0).getfield(sz).push_int(1).sub();
        m.aload().store(1);
        // size = size - 1
        m.load(0).load(0).getfield(sz).push_int(1).sub().putfield(sz);
        if variant == Variant::Revised {
            // elements[size] = null — the paper's jess fix, which the
            // original "tries to handle … but does not handle completely".
            m.load(0).getfield(el);
            m.load(0).getfield(sz);
            m.push_null().astore();
        }
        m.load(1).ret_val();
        m.finish();
    }
    let vec_size = b.declare_method("size", Some(vector), false, 1, 1);
    {
        let mut m = b.begin_body(vec_size);
        m.load(0).getfield(sz).ret_val();
        m.finish();
    }

    // ---- HashTable ------------------------------------------------------
    let hashtable = b
        .begin_class("jdk.HashTable")
        .field("keys", Visibility::Private)
        .field("vals", Visibility::Private)
        .field("cap", Visibility::Private)
        .finish();
    let hk = b.field_slot(hashtable, "keys");
    let hv = b.field_slot(hashtable, "vals");
    let hc = b.field_slot(hashtable, "cap");

    // Keys must be >= 1; slot value 0 marks an empty bucket (the key
    // array is zero-filled here, since fresh array slots hold null).
    let ht_init = b.declare_method("init", Some(hashtable), false, 2, 4);
    {
        // local 2: index, local 3: keys array
        let mut m = b.begin_body(ht_init);
        m.load(1);
        m.mark("jdk.HashTable key array").new_array().store(3);
        m.load(0).load(3).putfield(hk);
        m.load(0).load(1);
        m.mark("jdk.HashTable value array").new_array().putfield(hv);
        m.load(0).load(1).putfield(hc);
        m.push_int(0).store(2);
        m.label("zero");
        m.load(2).load(1).cmpge().branch("done");
        m.load(3).load(2).push_int(0).astore();
        m.load(2).push_int(1).add().store(2);
        m.jump("zero");
        m.label("done");
        m.ret();
        m.finish();
    }
    // put(this, key, value): linear probing; silently drops when the table
    // is full (the workloads keep load factors low).
    let ht_put = b.declare_method("put", Some(hashtable), false, 3, 6);
    {
        // local 3: index, local 4: probes, local 5: keys array
        let mut m = b.begin_body(ht_put);
        m.load(0).getfield(hk).store(5);
        m.load(1).load(0).getfield(hc).rem().store(3);
        m.push_int(0).store(4);
        m.label("probe");
        m.load(4).load(0).getfield(hc).cmpge().branch("full");
        m.load(5).load(3).aload().push_int(0).cmpeq().branch("empty");
        m.load(5).load(3).aload().load(1).cmpeq().branch("overwrite");
        m.load(3).push_int(1).add().load(0).getfield(hc).rem().store(3);
        m.load(4).push_int(1).add().store(4);
        m.jump("probe");
        m.label("empty");
        m.load(5).load(3).load(1).astore();
        m.label("overwrite");
        m.load(0).getfield(hv).load(3).load(2).astore();
        m.label("full");
        m.ret();
        m.finish();
    }
    let ht_get = b.declare_method("get", Some(hashtable), false, 2, 5);
    {
        // local 2: index, local 3: probes, local 4: keys array
        let mut m = b.begin_body(ht_get);
        m.load(0).getfield(hk).store(4);
        m.load(1).load(0).getfield(hc).rem().store(2);
        m.push_int(0).store(3);
        m.label("probe");
        m.load(3).load(0).getfield(hc).cmpge().branch("miss");
        m.load(4).load(2).aload().push_int(0).cmpeq().branch("miss");
        m.load(4).load(2).aload().load(1).cmpeq().branch("hit");
        m.load(2).push_int(1).add().load(0).getfield(hc).rem().store(2);
        m.load(3).push_int(1).add().store(3);
        m.jump("probe");
        m.label("hit");
        m.load(0).getfield(hv).load(2).aload().ret_val();
        m.label("miss");
        m.push_null().ret_val();
        m.finish();
    }

    // ---- Str -------------------------------------------------------------
    let str_class = b
        .begin_class("jdk.Str")
        .field("chars", Visibility::Private)
        .finish();
    let ch = b.field_slot(str_class, "chars");
    let str_init = b.declare_method("init", Some(str_class), false, 2, 2);
    {
        let mut m = b.begin_body(str_init);
        m.load(0).load(1);
        m.mark("jdk.Str char array").new_array().putfield(ch);
        m.ret();
        m.finish();
    }
    let str_len = b.declare_method("len", Some(str_class), false, 1, 1);
    {
        let mut m = b.begin_body(str_len);
        m.load(0).getfield(ch).array_len().ret_val();
        m.finish();
    }

    // ---- Locale -----------------------------------------------------------
    let locale = b
        .begin_class("jdk.Locale")
        .field("code", Visibility::Private)
        .finish();
    let code_slot = b.field_slot(locale, "code");
    let locale_init = b.declare_method("init", Some(locale), false, 2, 2);
    {
        let mut m = b.begin_body(locale_init);
        m.load(0).load(1).putfield(code_slot);
        m.ret();
        m.finish();
    }
    let locale_code = b.declare_method("code", Some(locale), false, 1, 1);
    {
        let mut m = b.begin_body(locale_code);
        m.load(0).getfield(code_slot).ret_val();
        m.finish();
    }
    let locale_en = b.static_var("jdk.Locale.EN", Visibility::Public, Value::Null);
    let locale_fr = b.static_var("jdk.Locale.FR", Visibility::Public, Value::Null);
    let locale_de = b.static_var("jdk.Locale.DE", Visibility::Public, Value::Null);
    let locale_jp = b.static_var("jdk.Locale.JP", Visibility::Public, Value::Null);
    let init_locales = b.declare_method("initLocales", None, true, 0, 1);
    {
        let mut m = b.begin_body(init_locales);
        // EN is genuinely read by the benchmarks.
        m.mark("jdk.Locale EN").new_obj(locale).dup().store(0);
        m.push_int(1).call(locale_init);
        m.load(0).putstatic(locale_en);
        if variant == Variant::Original {
            // The paper's Locale example: "a static variable is declared
            // for every possible locale … those which are never-used can
            // be eliminated." The original eagerly allocates them all.
            for (idx, s) in [(2, locale_fr), (3, locale_de), (4, locale_jp)] {
                m.mark("jdk.Locale never-used").new_obj(locale).dup().store(0);
                m.push_int(idx).call(locale_init);
                m.load(0).putstatic(s);
            }
        }
        m.ret();
        m.finish();
    }
    let _ = locale_code;

    Jdk {
        vector,
        vec_init,
        vec_add,
        vec_get,
        vec_remove_last,
        vec_size,
        hashtable,
        ht_init,
        ht_put,
        ht_get,
        str_class,
        str_init,
        str_len,
        locale,
        init_locales,
        locale_en,
        unused_locales: [locale_fr, locale_de, locale_jp],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::interp::{Vm, VmConfig};
    use heapdrag_vm::program::Program;

    fn with_main(
        variant: Variant,
        body: impl FnOnce(&mut ProgramBuilder, &Jdk, MethodId),
    ) -> Program {
        let mut b = ProgramBuilder::new();
        let jdk = install(&mut b, variant);
        let main = b.declare_method("main", None, true, 1, 6);
        body(&mut b, &jdk, main);
        b.set_entry(main);
        b.finish().unwrap()
    }

    fn run(p: &Program) -> Vec<i64> {
        Vm::new(p, VmConfig::default()).run(&[]).unwrap().output
    }

    #[test]
    fn vector_add_get_grow() {
        let p = with_main(Variant::Original, |b, jdk, main| {
            let mut m = b.begin_body(main);
            m.new_obj(jdk.vector).dup().store(1);
            m.push_int(2).call(jdk.vec_init); // tiny capacity → forces growth
            for i in 0..5 {
                m.load(1).push_int(i * 10).call(jdk.vec_add);
            }
            m.load(1).call(jdk.vec_size); // wait, vec_size is direct-callable
            m.print();
            for i in 0..5 {
                m.load(1).push_int(i).call(jdk.vec_get).print();
            }
            m.ret();
            m.finish();
        });
        assert_eq!(run(&p), vec![5, 0, 10, 20, 30, 40]);
    }

    #[test]
    fn vector_remove_last_leaks_or_nulls() {
        // Behavioural equivalence: both variants return the same element.
        for variant in [Variant::Original, Variant::Revised] {
            let p = with_main(variant, |b, jdk, main| {
                let mut m = b.begin_body(main);
                m.new_obj(jdk.vector).dup().store(1);
                m.push_int(4).call(jdk.vec_init);
                m.load(1).push_int(7).call(jdk.vec_add);
                m.load(1).push_int(9).call(jdk.vec_add);
                m.load(1).call(jdk.vec_remove_last).print();
                m.load(1).call(jdk.vec_size).print();
                m.ret();
                m.finish();
            });
            assert_eq!(run(&p), vec![9, 1], "{variant:?}");
        }
    }

    #[test]
    fn original_remove_last_is_the_leaky_idiom() {
        let p = with_main(Variant::Original, |b, _jdk, main| {
            let mut m = b.begin_body(main);
            m.ret();
            m.finish();
        });
        let leaks = heapdrag_analysis::find_vector_leaks(&p);
        assert!(
            leaks
                .iter()
                .any(|l| p.classes[l.class.index()].name == "jdk.Vector"),
            "analysis flags the original removeLast, found {leaks:?}"
        );
        let fixed = with_main(Variant::Revised, |b, _jdk, main| {
            let mut m = b.begin_body(main);
            m.ret();
            m.finish();
        });
        let leaks = heapdrag_analysis::find_vector_leaks(&fixed);
        assert!(
            !leaks
                .iter()
                .any(|l| fixed.classes[l.class.index()].name == "jdk.Vector"),
            "revised removeLast nulls the slot"
        );
    }

    #[test]
    fn hashtable_put_get() {
        let p = with_main(Variant::Original, |b, jdk, main| {
            let mut m = b.begin_body(main);
            m.new_obj(jdk.hashtable).dup().store(1);
            m.push_int(8).call(jdk.ht_init);
            // Store Str objects under keys 3, 11 (collide mod 8), 5.
            for key in [3, 11, 5] {
                m.new_obj(jdk.str_class).dup().store(2);
                m.push_int(key).call(jdk.str_init); // length = key (arbitrary)
                m.load(1).push_int(key).load(2).call(jdk.ht_put);
            }
            for key in [3, 11, 5] {
                m.load(1).push_int(key).call(jdk.ht_get);
                m.call_virtual("len", 0).print();
            }
            // A miss returns null.
            m.load(1).push_int(99).call(jdk.ht_get);
            m.branch_if_null("was_null");
            m.push_int(-1).print();
            m.jump("done");
            m.label("was_null");
            m.push_int(-2).print();
            m.label("done");
            m.ret();
            m.finish();
        });
        assert_eq!(run(&p), vec![3, 11, 5, -2]);
    }

    #[test]
    fn locales_eager_vs_trimmed() {
        let build = |variant| {
            with_main(variant, |b, jdk, main| {
                let mut m = b.begin_body(main);
                m.call(jdk.init_locales);
                m.getstatic(jdk.locale_en).call_virtual("code", 0).print();
                m.ret();
                m.finish();
            })
        };
        let original = build(Variant::Original);
        let revised = build(Variant::Revised);
        let o1 = Vm::new(&original, VmConfig::default()).run(&[]).unwrap();
        let o2 = Vm::new(&revised, VmConfig::default()).run(&[]).unwrap();
        assert_eq!(o1.output, o2.output);
        assert_eq!(o1.output, vec![1]);
        assert_eq!(
            o1.heap.allocated_objects - o2.heap.allocated_objects,
            3,
            "three never-used locales trimmed"
        );
    }
}
