//! `analyzer` — an IBM mutability analyzer (35 K statements in the paper,
//! the largest benchmark).
//!
//! §4.1: "the size of the reachable heap is reduced only after allocating
//! the first 78 MB in the program. This occurs because objects used for
//! the first part of the computation … are not needed later in the
//! computation." Table 5: assigning null to a *local variable and a
//! private static*, expected analysis: liveness — saving 25.34 % of drag
//! and 15.05 % of space.
//!
//! The model's phase 1 builds a class-info graph (rooted in a local and a
//! private static); phase 2 only needs the integer summary computed at the
//! end of phase 1. The revised variant nulls both roots between phases.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the analyzer program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let jdk = jdk::install(&mut b, variant);

    let class_info = b
        .begin_class("analyzer.ClassInfo")
        .field("id", Visibility::Private)
        .field("methods", Visibility::Private)
        .finish();
    let ci_init = b.declare_method("init", Some(class_info), false, 2, 2);
    {
        let mut m = b.begin_body(ci_init);
        m.load(0).load(1).putfield_named(class_info, "id");
        m.load(0).push_int(12);
        m.mark("method table").new_array().putfield_named(class_info, "methods");
        m.ret();
        m.finish();
    }
    let ci_id = b.declare_method("idOf", Some(class_info), false, 1, 1);
    {
        let mut m = b.begin_body(ci_id);
        m.load(0).getfield_named(class_info, "id").ret_val();
        m.finish();
    }
    let _ = ci_id;

    let graph_static = b.static_var("analyzer.Mutability.graph", Visibility::Private, Value::Null);

    // buildGraph(classes) -> graph vector
    let build_graph = b.declare_method("buildGraph", None, true, 1, 5);
    {
        // locals: 0 n, 1 graph, 2 i, 3 ci
        let mut m = b.begin_body(build_graph);
        m.new_obj(jdk.vector).dup().store(1);
        m.push_int(256).call(jdk.vec_init);
        m.push_int(0).store(2);
        m.label("build");
        m.load(2).load(0).cmpge().branch("built");
        m.mark("ClassInfo").new_obj(class_info).dup().store(3);
        m.load(2).call(ci_init);
        m.load(1).load(3).call(jdk.vec_add);
        m.load(2).push_int(1).add().store(2);
        m.jump("build");
        m.label("built");
        m.load(1).ret_val();
        m.finish();
    }

    // summarize(graph) -> int
    let summarize = b.declare_method("summarize", None, true, 1, 4);
    {
        // locals: 0 graph, 1 i, 2 acc
        let mut m = b.begin_body(summarize);
        m.push_int(0).store(1);
        m.push_int(0).store(2);
        m.label("sum");
        m.load(1).load(0).call(jdk.vec_size).cmpge().branch("summed");
        m.load(2);
        m.load(0).load(1).call(jdk.vec_get).call_virtual("idOf", 0);
        m.add().store(2);
        m.load(1).push_int(1).add().store(1);
        m.jump("sum");
        m.label("summed");
        m.load(2).ret_val();
        m.finish();
    }

    // main(input = [classes, report_iters])
    let main = b.declare_method("main", None, true, 1, 6);
    {
        // locals: 1 classes, 2 iters, 3 graph, 4 summary, 5 i
        let mut m = b.begin_body(main);
        m.call(jdk.init_locales);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        // ---- phase 1: build and summarize the graph ----------------------
        m.load(1).call(build_graph).store(3);
        m.load(3).putstatic(graph_static);
        m.load(3).call(summarize).store(4);
        if variant == Variant::Revised {
            // graph not needed in phase 2 — null the local and the static
            m.push_null().store(3);
            m.push_null().putstatic(graph_static);
        }
        // ---- phase 2: produce reports from the summary only --------------
        m.push_int(0).store(5);
        m.label("report");
        m.load(5).load(2).cmpge().branch("reported");
        m.push_int(28).mark("report record").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(4).load(5).add().store(4);
        m.load(5).push_int(1).add().store(5);
        m.jump("report");
        m.label("reported");
        m.load(4).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("analyzer builds")
}

/// The analyzer workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "analyzer",
        description: "mutability analyzer",
        build,
        // 160 classes (~25 KB graph), 1100 report iterations (~270 KB).
        default_input: || vec![160, 1100],
        alternate_input: || vec![120, 1500],
        rewriting: "assigning null",
        reference_kinds: "local variable + private static",
        expected_analysis: "liveness",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, Timeline, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
    }

    #[test]
    fn drag_saving_in_the_analyzer_band() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 25.34 % drag saving, 15.05 % space saving.
        assert!(
            s.drag_saving_pct() > 12.0 && s.drag_saving_pct() < 60.0,
            "drag saving {:.1}%",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 6.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn reachable_drops_only_after_phase_one() {
        // The paper's description: savings appear only after the first
        // part of the computation.
        let w = workload();
        let input = (w.default_input)();
        // Sample finely enough that deep GCs land inside phase 1 too.
        let mut config = VmConfig::profiling();
        config.deep_gc_interval = Some(8 * 1024);
        let ro = profile(&w.original(), &input, config.clone()).unwrap();
        let rr = profile(&w.revised(), &input, config).unwrap();
        let to = Timeline::from_run(&ro);
        let tr = Timeline::from_run(&rr);
        // Early samples match (graph alive in both); late revised samples
        // drop well below the original.
        let early_o = to.points.first().unwrap().reachable;
        let early_r = tr.points.first().unwrap().reachable;
        assert!(
            (early_o as f64 - early_r as f64).abs() < 0.2 * early_o as f64,
            "phase-1 curves close: {early_o} vs {early_r}"
        );
        let mid_o = to.points[to.points.len() / 2].reachable;
        let mid_r = tr.points[tr.points.len() / 2].reachable;
        assert!(
            (mid_r as f64) < 0.8 * mid_o as f64,
            "phase-2 revised curve drops: {mid_o} vs {mid_r}"
        );
    }
}
