//! `euler` — Euler equations solver (Java Grande).
//!
//! The paper: "for euler the size of the reachable heap for the original
//! run has a constant size, because all allocations are done in advance.
//! By assigning null to dead references we were able to reduce most of the
//! drag (76% of it), and the optimized heap size almost coincides with the
//! in-use object size." The rewriting assigns null to *package-visibility
//! array fields* (Table 5), detectable by liveness analysis.
//!
//! The model allocates three large grids up front into package fields of a
//! `Solver`, then runs three phases: phase 1 uses grids A and B, phase 2
//! uses B and C, phase 3 uses only C. The revised variant nulls each grid
//! field after its last phase.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::ids::{ClassId, MethodId};
use heapdrag_vm::program::Program;

use crate::spec::{Variant, Workload};

/// Builds one phase method: `phase(solver, steps, gridX[, gridY]) -> acc`.
///
/// Each step reads/writes the grids and allocates a small scratch array
/// (the solver's temporaries — they advance the byte clock and die fast).
fn build_phase(
    b: &mut ProgramBuilder,
    name: &str,
    solver: ClassId,
    read_grid: &str,
    write_grid: Option<&str>,
) -> MethodId {
    // params: 0 solver, 1 steps; locals: 2 i, 3 acc, 4 grid, 5 wgrid
    let m_id = b.declare_method(name, Some(solver), false, 2, 6);
    let read_slot = b.field_slot(solver, read_grid);
    let write_slot = write_grid.map(|g| b.field_slot(solver, g));
    let mut m = b.begin_body(m_id);
    m.load(0).getfield(read_slot).store(4);
    if let Some(ws) = write_slot {
        m.load(0).getfield(ws).store(5);
    }
    m.push_int(0).store(2);
    m.push_int(0).store(3);
    m.label("step");
    m.load(2).load(1).cmpge().branch("done");
    // scratch temporaries for this step
    m.push_int(40).mark("solver temporaries").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
    // acc += grid[i % len]
    m.load(3);
    m.load(4).load(2).load(4).array_len().rem().aload();
    m.add().store(3);
    if write_slot.is_some() {
        // wgrid[i % len] = acc
        m.load(5).load(2).load(5).array_len().rem().load(3).astore();
    }
    m.load(2).push_int(1).add().store(2);
    m.jump("step");
    m.label("done");
    m.load(3).ret_val();
    m.finish();
    m_id
}

/// Builds the euler program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let solver = b
        .begin_class("euler.Solver")
        .field("gridA", Visibility::Package)
        .field("gridB", Visibility::Package)
        .field("gridC", Visibility::Package)
        .finish();
    let ga = b.field_slot(solver, "gridA");
    let gb = b.field_slot(solver, "gridB");
    let gc = b.field_slot(solver, "gridC");

    // init(this, cells): allocate everything in advance, zero-filled.
    let init = b.declare_method("init", Some(solver), false, 2, 4);
    {
        // local 2: loop idx, local 3: grid scratch
        let mut m = b.begin_body(init);
        for (slot, label) in [(ga, "grid A"), (gb, "grid B"), (gc, "grid C")] {
            m.load(1);
            m.mark(label).new_array().store(3);
            m.load(0).load(3).putfield(slot);
            // zero-fill so phase arithmetic sees ints
            m.push_int(0).store(2);
            m.label(format!("zero{slot}"));
            m.load(2).load(1).cmpge().branch(format!("zeroed{slot}"));
            m.load(3).load(2).push_int(0).astore();
            m.load(2).push_int(1).add().store(2);
            m.jump(format!("zero{slot}"));
            m.label(format!("zeroed{slot}"));
        }
        m.ret();
        m.finish();
    }

    let phase1 = build_phase(&mut b, "phase1", solver, "gridA", Some("gridB"));
    let phase2 = build_phase(&mut b, "phase2", solver, "gridB", Some("gridC"));
    let phase3 = build_phase(&mut b, "phase3", solver, "gridC", None);

    // main(input = [cells, steps])
    let main = b.declare_method("main", None, true, 1, 5);
    {
        let mut m = b.begin_body(main);
        m.load(0).push_int(0).aload().store(1); // cells
        m.load(0).push_int(1).aload().store(2); // steps per phase
        m.new_obj(solver).dup().store(3);
        m.load(1).call(init);
        m.push_int(0).store(4);
        m.load(4).load(3).load(2).call(phase1).add().store(4);
        if variant == Variant::Revised {
            // grid A is dead from here on.
            m.load(3).push_null().putfield(ga);
        }
        m.load(4).load(3).load(2).call(phase2).add().store(4);
        if variant == Variant::Revised {
            m.load(3).push_null().putfield(gb);
        }
        m.load(4).load(3).load(2).call(phase3).add().store(4);
        m.load(4).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("euler builds")
}

/// The euler workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "euler",
        description: "Euler equations solver",
        build,
        // 25000-cell grids (~200 KB each), 900 steps/phase (~115 KB of
        // temporaries per phase).
        default_input: || vec![25_000, 900],
        alternate_input: || vec![18_000, 1200],
        rewriting: "assigning null",
        reference_kinds: "package array",
        expected_analysis: "liveness (R)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        for input in [(w.default_input)(), (w.alternate_input)()] {
            let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
            let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
            assert_eq!(o.output, r.output);
        }
    }

    #[test]
    fn most_drag_removed_by_nulling_grids() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 76.46 % drag saving, 7.28 % space saving.
        assert!(
            s.drag_saving_pct() > 50.0,
            "drag saving {:.1}% (expected euler-scale, >50%)",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 3.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn original_reachable_is_roughly_constant() {
        // All allocations up front: after init, the reachable curve stays
        // flat within the garbage ripple.
        let w = workload();
        let run = profile(&w.original(), &(w.default_input)(), VmConfig::profiling()).unwrap();
        // Skip the ramp-up while the grids themselves are being allocated.
        // …and the post-exit sample, where everything is unreachable.
        let heights: Vec<u64> = run
            .samples
            .iter()
            .filter(|s| s.time > 650_000 && s.time < run.outcome.end_time)
            .map(|s| s.reachable_bytes)
            .collect();
        assert!(heights.len() >= 4);
        let max = *heights.iter().max().unwrap() as f64;
        let min = *heights.iter().min().unwrap() as f64;
        assert!(
            min > 0.8 * max,
            "reachable curve nearly flat: min {min}, max {max}"
        );
    }
}
