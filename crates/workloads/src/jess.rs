//! `jess` — SPECjvm98 expert system shell.
//!
//! Three of the paper's findings meet here (Table 5):
//!
//! * a *private array* element leak in a vector-like structure: "after
//!   removing the logically last element from this array, that element has
//!   no future use. Interestingly, the original code tries to handle this
//!   case … but it does not handle it completely" (§5.2) — our
//!   `jdk.Vector.removeLast`;
//! * a JDK rewrite removing never-used `public static final` locale
//!   objects (§5.1's usage-analysis example);
//! * removal of a never-used `private static` (a debug cache).
//!
//! Overall the paper saves 15.47 % of jess's drag — modest, because most
//! of the engine's heap is genuinely in flux.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the jess program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let jdk = jdk::install(&mut b, variant);

    let fact = b
        .begin_class("jess.Fact")
        .field("id", Visibility::Private)
        .field("slots", Visibility::Private)
        .finish();
    let fact_init = b.declare_method("init", Some(fact), false, 2, 2);
    {
        let mut m = b.begin_body(fact_init);
        m.load(0).load(1).putfield_named(fact, "id");
        m.load(0).push_int(24);
        m.mark("fact slots").new_array().putfield_named(fact, "slots");
        m.ret();
        m.finish();
    }
    let fact_id = b.declare_method("id", Some(fact), false, 1, 1);
    {
        let mut m = b.begin_body(fact_id);
        m.load(0).getfield_named(fact, "id").ret_val();
        m.finish();
    }
    let _ = fact_id;

    // The never-used private static debug cache, and the engine's working
    // memory (rooted in a static like a real engine's singleton).
    let debug_cache = b.static_var("jess.Engine.debugCache", Visibility::Private, Value::Null);
    let wm_static = b.static_var("jess.Engine.workingMemory", Visibility::Private, Value::Null);

    // cycle(wm, base, asserts, retracts) -> acc : one match-fire-retract
    // cycle over the working memory.
    let cycle = b.declare_method("cycle", None, true, 4, 7);
    {
        // locals: 0 wm, 1 base, 2 asserts, 3 retracts, 4 i, 5 acc, 6 fact
        let mut m = b.begin_body(cycle);
        // assert phase
        m.push_int(0).store(4);
        m.label("assert");
        m.load(4).load(2).cmpge().branch("asserted");
        m.mark("asserted fact").new_obj(fact).dup().store(6);
        m.load(1).load(4).add().call(fact_init);
        m.load(0).load(6).call(jdk.vec_add);
        m.load(4).push_int(1).add().store(4);
        m.jump("assert");
        m.label("asserted");
        // fire phase: read a few facts + rule scratch
        m.push_int(0).store(5);
        m.push_int(0).store(4);
        m.label("fire");
        m.load(4).push_int(8).cmpge().branch("fired");
        m.push_int(16).mark("rule activation scratch").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(5);
        m.load(0).load(4).load(0).call(jdk.vec_size).rem().call(jdk.vec_get);
        m.call_virtual("id", 0);
        m.add().store(5);
        m.load(4).push_int(1).add().store(4);
        m.jump("fire");
        m.label("fired");
        // retract phase: removeLast leaks in the original JDK
        m.push_int(0).store(4);
        m.label("retract");
        m.load(4).load(3).cmpge().branch("retracted");
        m.load(0).call(jdk.vec_remove_last).pop();
        m.load(4).push_int(1).add().store(4);
        m.jump("retract");
        m.label("retracted");
        m.load(5).ret_val();
        m.finish();
    }

    // main(input = [cycles, asserts, retracts])
    let main = b.declare_method("main", None, true, 1, 7);
    {
        // locals: 1 cycles, 2 asserts, 3 retracts, 4 wm, 5 acc, 6 i
        let mut m = b.begin_body(main);
        m.call(jdk.init_locales);
        if variant == Variant::Original {
            // never-used private static debug cache (§3.3.2 removal)
            m.push_int(1500).mark("never-used debug cache").new_array();
            m.putstatic(debug_cache);
        }
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.load(0).push_int(2).aload().store(3);
        m.new_obj(jdk.vector).dup().store(4);
        m.push_int(512).call(jdk.vec_init);
        m.load(4).putstatic(wm_static);
        m.push_int(0).store(5);
        m.push_int(0).store(6);
        m.label("cycles");
        m.load(6).load(1).cmpge().branch("done");
        m.load(5);
        m.load(4).load(6).push_int(100).mul().load(2).load(3).call(cycle);
        m.add().store(5);
        m.load(6).push_int(1).add().store(6);
        m.jump("cycles");
        m.label("done");
        m.load(5).print();
        m.getstatic(jdk.locale_en).call_virtual("code", 0).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("jess builds")
}

/// The jess workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "jess",
        description: "expert system shell",
        build,
        // 40 cycles, 30 asserts / 28 retracts per cycle.
        default_input: || vec![40, 30, 28],
        alternate_input: || vec![30, 26, 22],
        rewriting: "assigning null + code removal (JDK rewrite) + code removal",
        reference_kinds: "private array, public static final, private static",
        expected_analysis: "array liveness, usage, usage (R)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
    }

    #[test]
    fn modest_drag_saving() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 15.47 % drag saving, 11.2 % space saving — modest but real.
        assert!(
            s.drag_saving_pct() > 6.0 && s.drag_saving_pct() < 50.0,
            "drag saving {:.1}%",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 2.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn retracted_facts_leak_only_in_original() {
        // The retract phase leaves net-dead facts reachable through the
        // vector's array in the original; count at-exit survivors.
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let survivors = |records: &[heapdrag_core::ObjectRecord]| {
            records.iter().filter(|r| r.at_exit).count()
        };
        assert!(
            survivors(&ro.records) > survivors(&rr.records),
            "original {} vs revised {} at-exit objects",
            survivors(&ro.records),
            survivors(&rr.records)
        );
    }
}
