//! `mc` — Monte-Carlo financial simulation.
//!
//! The paper's strongest result: removing never-used allocations (code
//! removal, "local variable + private", 119.95 % of drag) plus nulling a
//! private array (48.87 %) pushes the revised reachable heap **below the
//! original in-use size** — 168.82 % total drag saving, because "many
//! allocations are eliminated".
//!
//! The model simulates `paths` price paths. Each path computes into a
//! short-lived `Sample` (used) **and** allocates a `DiagRecord` with a
//! payload array into a private diagnostics array — records that are never
//! read. The revised variant does not allocate the diagnostics at all and
//! nulls the private results array after mid-run aggregation.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::spec::{Variant, Workload};

/// Builds the mc program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();

    let sample = b
        .begin_class("mc.Sample")
        .field("value", Visibility::Private)
        .field("path", Visibility::Private)
        .finish();
    // init(this, value, pathLen): the per-path price series is kept — mc's
    // heap is almost entirely *in use*, unlike the other benchmarks.
    let sample_init = b.declare_method("init", Some(sample), false, 3, 3);
    {
        let mut m = b.begin_body(sample_init);
        m.load(0).load(1).putfield_named(sample, "value");
        m.load(0).load(2);
        m.mark("price path array").new_array().putfield_named(sample, "path");
        m.ret();
        m.finish();
    }
    let sample_value = b.declare_method("value", Some(sample), false, 1, 1);
    {
        let mut m = b.begin_body(sample_value);
        m.load(0).getfield_named(sample, "value").ret_val();
        m.finish();
    }
    let _ = sample_value;

    let diag = b
        .begin_class("mc.DiagRecord")
        .field("trace", Visibility::Private)
        .finish();
    let diag_init = b.declare_method("init", Some(diag), false, 2, 2);
    {
        let mut m = b.begin_body(diag_init);
        m.load(0).load(1);
        m.mark("diagnostic trace array").new_array().putfield_named(diag, "trace");
        m.ret();
        m.finish();
    }

    let sim = b
        .begin_class("mc.Sim")
        .field("results", Visibility::Private)
        .finish();
    let rs = b.field_slot(sim, "results");

    // simInit(this, paths)
    let sim_init = b.declare_method("init", Some(sim), false, 2, 2);
    {
        let mut m = b.begin_body(sim_init);
        m.load(0).load(1).mark("results array").new_array().putfield(rs);
        m.ret();
        m.finish();
    }

    // runPath(this, p, traceLen) -> value
    //   locals: 3 scratch, 4 sample, 5 diag (original only)
    let run_path = b.declare_method("runPath", Some(sim), false, 3, 6);
    {
        let mut m = b.begin_body(run_path);
        // price walk scratch (advances the clock, used immediately)
        m.push_int(20).mark("walk scratch").new_array().store(3);
        m.load(3).push_int(0).load(1).push_int(17).mul().push_int(255).rem().astore();
        // the sample, genuinely used and retained until aggregation
        m.new_obj(sample).dup().store(4);
        m.load(3).push_int(0).aload();
        m.push_int(80).call(sample_init);
        m.load(4).getfield_named(sample, "path").push_int(0).load(1).astore();
        m.load(0).getfield(rs).load(1).load(4).astore();
        if variant == Variant::Original {
            // the never-used diagnostic record, held only by a local
            // (paper: code removal of a "local variable + private" site;
            // "allocation and initialization are avoided for objects that
            // are never used")
            m.mark("never-used DiagRecord").new_obj(diag).dup().store(5);
            m.load(2).call(diag_init);
            m.push_null().store(5);
        }
        m.load(4).call_virtual("value", 0).ret_val();
        m.finish();
    }

    // aggregate(this, paths) -> sum: folds each sample's value and the
    // head of its retained price path (so the bulk of the heap is *used*
    // right up to this point — mc's drag is small relative to reachable).
    let aggregate = b.declare_method("aggregate", Some(sim), false, 2, 6);
    {
        // locals: 2 i, 3 acc, 4 results, 5 sample
        let mut m = b.begin_body(aggregate);
        m.load(0).getfield(rs).store(4);
        m.push_int(0).store(2);
        m.push_int(0).store(3);
        m.label("loop");
        m.load(2).load(1).cmpge().branch("done");
        m.load(4).load(2).aload().store(5);
        m.load(3);
        m.load(5).call_virtual("value", 0);
        m.add();
        m.load(5).getfield_named(sample, "path").push_int(0).aload();
        m.add().store(3);
        m.load(2).push_int(1).add().store(2);
        m.jump("loop");
        m.label("done");
        m.load(3).ret_val();
        m.finish();
    }

    // main(input = [paths, trace_len, tail_work])
    let main = b.declare_method("main", None, true, 1, 7);
    {
        // locals: 1 paths, 2 traceLen, 3 tail, 4 sim, 5 acc, 6 i
        let mut m = b.begin_body(main);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.load(0).push_int(2).aload().store(3);
        m.new_obj(sim).dup().store(4);
        m.load(1).call(sim_init);
        m.push_int(0).store(5);
        m.push_int(0).store(6);
        m.label("paths_loop");
        m.load(6).load(1).cmpge().branch("paths_done");
        m.load(5);
        m.load(4).load(6).load(2).call(run_path);
        m.add().store(5);
        m.load(6).push_int(1).add().store(6);
        m.jump("paths_loop");
        m.label("paths_done");
        // mid-run aggregation: last use of the results array
        m.load(5).load(4).load(1).call(aggregate).add().store(5);
        if variant == Variant::Revised {
            // null the private results array after its last use
            m.load(4).push_null().putfield(rs);
        }
        // tail work: report formatting etc. (the drag window)
        m.push_int(0).store(6);
        m.label("tail_loop");
        m.load(6).load(3).cmpge().branch("tail_done");
        m.push_int(30).mark("report scratch").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(6).push_int(1).add().store(6);
        m.jump("tail_loop");
        m.label("tail_done");
        m.load(5).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("mc builds")
}

/// The mc workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "mc",
        description: "financial simulation",
        build,
        // 700 paths, 60-element diagnostic traces, 1200 tail iterations.
        default_input: || vec![700, 60, 1200],
        alternate_input: || vec![500, 80, 900],
        rewriting: "code removal + assigning null",
        reference_kinds: "local variable + private, private array",
        expected_analysis: "usage (R), array liveness",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
    }

    #[test]
    fn drag_saving_exceeds_100_percent() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 168.82 % drag saving; reduced reachable below original
        // in-use.
        assert!(
            s.drag_saving_pct() > 100.0,
            "drag saving {:.1}% (mc must beat 100%)",
            s.drag_saving_pct()
        );
        assert!(
            s.beats_original_in_use(),
            "reduced reachable {} vs original in-use {}",
            s.reduced.reachable,
            s.original.in_use
        );
    }

    #[test]
    fn diagnostics_site_is_mostly_never_used() {
        let w = workload();
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling()).unwrap();
        let report =
            heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
        // Find the diag site by label and check its classification.
        let entry = report
            .by_nested_site
            .iter()
            .find(|e| {
                run.sites
                    .format_chain(&program, e.site)
                    .contains("never-used DiagRecord")
            })
            .expect("diag site profiled");
        assert_eq!(entry.stats.never_used, entry.stats.objects);
    }
}

