//! `jack` — SPECjvm98 parser generator (the ancestor of javacc).
//!
//! §3.4.3: "the three allocation sites producing the largest drag are all
//! in the same constructor. More than 97 % of the drag for these three
//! allocation sites is due to objects that are never-used … One Vector and
//! two HashTable objects are allocated at the allocation sites. References
//! … are assigned to instance fields \[with\] package visibility … We
//! eliminate the allocations and before every possible first use … we add
//! a test to check whether the allocation has already been done." Lazy
//! allocation saves 70 % of jack's drag. The paper notes javacc later
//! adopted similar rewritings.
//!
//! The model generates parsers for `grammars` grammar files. Each run
//! constructs a `ParserGen` whose constructor eagerly allocates a
//! conflict-resolution `Vector` and two `HashTable`s; they are consulted
//! only for the rare grammar with conflicts (input-selected). The revised
//! variant allocates them lazily behind accessor guards.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the jack program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let jdk = jdk::install(&mut b, variant);

    let token = b
        .begin_class("jack.Token")
        .field("kind", Visibility::Private)
        .finish();
    let token_init = b.declare_method("init", Some(token), false, 2, 2);
    {
        let mut m = b.begin_body(token_init);
        m.load(0).load(1).putfield_named(token, "kind");
        m.ret();
        m.finish();
    }
    let token_kind = b.declare_method("kind", Some(token), false, 1, 1);
    {
        let mut m = b.begin_body(token_kind);
        m.load(0).getfield_named(token, "kind").ret_val();
        m.finish();
    }
    let _ = token_kind;

    let pg = b
        .begin_class("jack.ParserGen")
        .field("conflicts", Visibility::Package)
        .field("firstSets", Visibility::Package)
        .field("followSets", Visibility::Package)
        .finish();
    let cf = b.field_slot(pg, "conflicts");
    let fs = b.field_slot(pg, "firstSets");
    let fl = b.field_slot(pg, "followSets");

    // The constructor — the paper's three largest drag sites live here.
    let pg_init = b.declare_method("init", Some(pg), false, 1, 2);
    {
        let mut m = b.begin_body(pg_init);
        if variant == Variant::Original {
            m.mark("eager conflicts Vector").new_obj(jdk.vector).dup().store(1);
            m.push_int(2048).call(jdk.vec_init);
            m.load(0).load(1).putfield(cf);
            m.mark("eager firstSets HashTable").new_obj(jdk.hashtable).dup().store(1);
            m.push_int(1300).call(jdk.ht_init);
            m.load(0).load(1).putfield(fs);
            m.mark("eager followSets HashTable").new_obj(jdk.hashtable).dup().store(1);
            m.push_int(1300).call(jdk.ht_init);
            m.load(0).load(1).putfield(fl);
        }
        // Revised: fields stay null; accessors allocate on first use.
        m.ret();
        m.finish();
    }

    // Accessors with the paper's lazy-allocation guards (revised only —
    // the original reads the fields directly, which the accessors also
    // model faithfully since the guard never fires on a non-null field).
    let get_conflicts = b.declare_method("conflictsTable", Some(pg), false, 1, 1);
    {
        let mut m = b.begin_body(get_conflicts);
        m.load(0).getfield(cf);
        m.branch_if_not_null("have");
        m.new_obj(jdk.vector).dup();
        m.mark("lazy conflicts Vector").push_int(2048).call(jdk.vec_init);
        m.load(0).swap().putfield(cf);
        m.label("have");
        m.load(0).getfield(cf).ret_val();
        m.finish();
    }
    let get_first = b.declare_method("firstSetsTable", Some(pg), false, 1, 1);
    {
        let mut m = b.begin_body(get_first);
        m.load(0).getfield(fs);
        m.branch_if_not_null("have");
        m.new_obj(jdk.hashtable).dup();
        m.mark("lazy firstSets HashTable").push_int(1300).call(jdk.ht_init);
        m.load(0).swap().putfield(fs);
        m.label("have");
        m.load(0).getfield(fs).ret_val();
        m.finish();
    }
    let get_follow = b.declare_method("followSetsTable", Some(pg), false, 1, 1);
    {
        let mut m = b.begin_body(get_follow);
        m.load(0).getfield(fl);
        m.branch_if_not_null("have");
        m.new_obj(jdk.hashtable).dup();
        m.mark("lazy followSets HashTable").push_int(1300).call(jdk.ht_init);
        m.load(0).swap().putfield(fl);
        m.label("have");
        m.load(0).getfield(fl).ret_val();
        m.finish();
    }

    // generate(pg, grammar_id, tokens, has_conflicts) -> checksum
    let generate = b.declare_method("generate", None, true, 4, 8);
    {
        // locals: 0 pg, 1 id, 2 tokens, 3 conflicts?, 4 i, 5 acc, 6 tok, 7 tbl
        let mut m = b.begin_body(generate);
        m.push_int(0).store(5);
        // tokenize: short-lived token objects, all used
        m.push_int(0).store(4);
        m.label("tok");
        m.load(4).load(2).cmpge().branch("tokked");
        m.mark("token").new_obj(token).dup().store(6);
        m.load(1).load(4).add().call(token_init);
        m.push_int(12).mark("lexer scratch").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(5).load(6).call_virtual("kind", 0).add().store(5);
        m.load(4).push_int(1).add().store(4);
        m.jump("tok");
        m.label("tokked");
        // conflict resolution: the rare path that uses the tables
        m.load(3).push_int(0).cmpeq().branch("no_conflicts");
        m.load(0).call(get_conflicts).store(7);
        m.load(7).push_int(11).call(jdk.vec_add);
        m.load(5).load(7).call(jdk.vec_size).add().store(5);
        m.load(0).call(get_first).store(7);
        m.load(7).push_int(5).push_int(17).call(jdk.ht_put);
        m.load(0).call(get_follow).store(7);
        m.load(7).push_int(9).push_int(23).call(jdk.ht_put);
        m.label("no_conflicts");
        m.load(5).ret_val();
        m.finish();
    }

    // main(input = [grammars, tokens_per_grammar, conflict_stride])
    let main = b.declare_method("main", None, true, 1, 7);
    {
        // locals: 1 grammars, 2 tokens, 3 stride, 4 acc, 5 g, 6 pg
        let mut m = b.begin_body(main);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.load(0).push_int(2).aload().store(3);
        m.push_int(0).store(4);
        m.push_int(0).store(5);
        m.label("grammars");
        m.load(5).load(1).cmpge().branch("done");
        m.new_obj(pg).dup().store(6).call(pg_init);
        m.load(4);
        m.load(6).load(5).load(2);
        // has_conflicts = ((g + 1) % stride == 0)
        m.load(5).push_int(1).add().load(3).rem().push_int(0).cmpeq();
        m.call(generate);
        m.add().store(4);
        m.load(5).push_int(1).add().store(5);
        m.jump("grammars");
        m.label("done");
        m.load(4).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("jack builds")
}

/// The jack workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "jack",
        description: "parser generator",
        build,
        // 12 grammars, 220 tokens each; every 12th grammar has conflicts
        // (>90 % of table objects never used, as the paper reports >97 %).
        default_input: || vec![12, 220, 12],
        alternate_input: || vec![6, 300, 3],
        rewriting: "lazy allocation",
        reference_kinds: "package",
        expected_analysis: "min. code insertion",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        for input in [(w.default_input)(), (w.alternate_input)()] {
            let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
            let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
            assert_eq!(o.output, r.output, "input {input:?}");
        }
    }

    #[test]
    fn lazy_allocation_saves_most_drag() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 70.34 % drag saving, 42.06 % space saving — jack's tables
        // dominate its heap.
        assert!(
            s.drag_saving_pct() > 45.0,
            "drag saving {:.1}% (jack-scale, >45%)",
            s.drag_saving_pct()
        );
        assert!(
            s.space_saving_pct() > 20.0,
            "space {:.1}%",
            s.space_saving_pct()
        );
    }

    #[test]
    fn table_sites_are_mostly_never_used() {
        let w = workload();
        let program = w.original();
        let run = profile(&program, &(w.default_input)(), VmConfig::profiling()).unwrap();
        let report =
            heapdrag_core::DragAnalyzer::new().analyze(&run.records, |c| run.sites.innermost(c));
        // The top sites by drag should be the ctor's eager tables, mostly
        // never used (only the conflict grammar touches them).
        let top_names: Vec<String> = report
            .by_nested_site
            .iter()
            .take(4)
            .map(|e| run.sites.format_chain(&program, e.site))
            .collect();
        assert!(
            top_names.iter().any(|n| n.contains("ParserGen.init")),
            "constructor table sites lead the report: {top_names:#?}"
        );
    }

    #[test]
    fn conflict_grammar_allocates_lazily_once() {
        let w = workload();
        // stride 1 → every grammar uses its tables: original and revised
        // then allocate the same number of objects.
        let input = vec![3, 50, 1];
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
        assert_eq!(o.heap.allocated_objects, r.heap.allocated_objects);
        // stride large → revised never allocates tables.
        let input = vec![3, 50, 100];
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
        assert!(r.heap.allocated_bytes < o.heap.allocated_bytes / 2);
    }
}
