//! `javac` — the SPECjvm98 Java compiler.
//!
//! The paper's javac rewriting is §5.1's indirect-usage example: "a string
//! is allocated and assigned to an instance field. The field is never used
//! except for assigning its value to other reference variables. These
//! variables are never used; thus, the allocation of the string can be
//! saved" — code removal through a `protected` reference (Table 5),
//! saving 21.8 % of javac's drag.
//!
//! The model compiles `units` compilation units: lexing produces a token
//! vector, parsing builds AST nodes, and code emission folds over them.
//! Every node also allocates a *documentation string* into a protected
//! field that is only ever copied into a second, never-read field. The
//! revised variant does not allocate the strings.

use heapdrag_vm::builder::ProgramBuilder;
use heapdrag_vm::class::Visibility;
use heapdrag_vm::program::Program;

use crate::jdk;
use crate::spec::{Variant, Workload};

/// Builds the javac program.
pub fn build(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new();
    let jdk = jdk::install(&mut b, variant);

    let node = b
        .begin_class("javac.Node")
        .field("kind", Visibility::Private)
        .field("left", Visibility::Private)
        .field("doc", Visibility::Protected)
        .field("docAlias", Visibility::Protected)
        .finish();
    // init(this, kind, left, doc?): doc may be null (revised variant).
    let node_init = b.declare_method("init", Some(node), false, 4, 4);
    {
        let mut m = b.begin_body(node_init);
        m.load(0).load(1).putfield_named(node, "kind");
        m.load(0).load(2).putfield_named(node, "left");
        m.load(0).load(3).putfield_named(node, "doc");
        // the indirect use: doc only flows into docAlias, which nothing
        // ever reads
        m.load(0).load(3).putfield_named(node, "docAlias");
        m.ret();
        m.finish();
    }
    let node_kind = b.declare_method("kindOf", Some(node), false, 1, 1);
    {
        let mut m = b.begin_body(node_kind);
        m.load(0).getfield_named(node, "kind").ret_val();
        m.finish();
    }
    let node_left = b.declare_method("leftOf", Some(node), false, 1, 1);
    {
        let mut m = b.begin_body(node_left);
        m.load(0).getfield_named(node, "left").ret_val();
        m.finish();
    }
    let _ = (node_kind, node_left);

    // compileUnit(unit_id, nodes) -> checksum
    let compile_unit = b.declare_method("compileUnit", None, true, 2, 8);
    {
        // locals: 0 id, 1 nodes, 2 i, 3 acc, 4 tokens, 5 cur, 6 doc, 7 prev
        let mut m = b.begin_body(compile_unit);
        // --- lex ---------------------------------------------------------
        m.new_obj(jdk.vector).dup().store(4);
        m.push_int(64).call(jdk.vec_init);
        m.push_int(0).store(2);
        m.label("lex");
        m.load(2).load(1).cmpge().branch("lexed");
        m.load(4).load(0).load(2).mul().call(jdk.vec_add);
        m.load(2).push_int(1).add().store(2);
        m.jump("lex");
        m.label("lexed");
        // --- parse: a left-leaning chain of nodes -------------------------
        m.push_null().store(7);
        m.push_int(0).store(2);
        m.label("parse");
        m.load(2).load(1).cmpge().branch("parsed");
        if variant == Variant::Original {
            // the never-really-used documentation string
            m.mark("doc string").new_obj(jdk.str_class).dup().store(6);
            m.push_int(6).call(jdk.str_init);
        } else {
            m.push_null().store(6);
        }
        m.mark("AST node").new_obj(node).dup().store(5);
        m.load(4).load(2).call(jdk.vec_get); // kind := tokens[i]
        m.load(7); // left := prev
        m.load(6); // doc
        m.call(node_init);
        m.load(5).store(7);
        m.load(2).push_int(1).add().store(2);
        m.jump("parse");
        m.label("parsed");
        // --- emit: fold over the chain ------------------------------------
        m.push_int(0).store(3);
        m.label("emit");
        m.load(7).branch_if_null("emitted");
        m.push_int(20).mark("emitter scratch").new_array().dup().push_int(0).push_int(1).astore().push_int(0).aload().pop();
        m.load(3).load(7).call_virtual("kindOf", 0).add().store(3);
        m.load(7).call_virtual("leftOf", 0).store(7);
        m.jump("emit");
        m.label("emitted");
        m.load(3).ret_val();
        m.finish();
    }

    // main(input = [units, nodes_per_unit])
    let main = b.declare_method("main", None, true, 1, 5);
    {
        let mut m = b.begin_body(main);
        m.call(jdk.init_locales);
        m.load(0).push_int(0).aload().store(1);
        m.load(0).push_int(1).aload().store(2);
        m.push_int(0).store(3);
        m.push_int(0).store(4);
        m.label("units");
        m.load(4).load(1).cmpge().branch("done");
        m.load(3);
        m.load(4).load(2).call(compile_unit);
        m.add().store(3);
        m.load(4).push_int(1).add().store(4);
        m.jump("units");
        m.label("done");
        m.load(3).print();
        m.ret();
        m.finish();
    }
    b.set_entry(main);
    b.finish().expect("javac builds")
}

/// The javac workload descriptor.
pub fn workload() -> Workload {
    Workload {
        name: "javac",
        description: "java compiler",
        build,
        // 12 units, 90 nodes each.
        default_input: || vec![12, 90],
        alternate_input: || vec![16, 60],
        rewriting: "code removal",
        reference_kinds: "protected",
        expected_analysis: "indirect-usage",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_core::{profile, Integrals, SavingsReport, VmConfig};
    use heapdrag_vm::interp::Vm;

    #[test]
    fn variants_agree_on_output() {
        let w = workload();
        let input = (w.default_input)();
        let o = Vm::new(&w.original(), VmConfig::default()).run(&input).unwrap();
        let r = Vm::new(&w.revised(), VmConfig::default()).run(&input).unwrap();
        assert_eq!(o.output, r.output);
    }

    #[test]
    fn moderate_drag_saving() {
        let w = workload();
        let input = (w.default_input)();
        let ro = profile(&w.original(), &input, VmConfig::profiling()).unwrap();
        let rr = profile(&w.revised(), &input, VmConfig::profiling()).unwrap();
        let s = SavingsReport::new(
            Integrals::from_records(&ro.records),
            Integrals::from_records(&rr.records),
        );
        // Paper: 21.8 % drag saving, 7.71 % space saving.
        assert!(
            s.drag_saving_pct() > 10.0 && s.drag_saving_pct() < 45.0,
            "drag saving {:.1}%",
            s.drag_saving_pct()
        );
        assert!(s.space_saving_pct() > 2.0, "space {:.1}%", s.space_saving_pct());
    }

    #[test]
    fn static_analysis_confirms_doc_fields_write_only() {
        // The §5.1 claim, checked mechanically: the doc/docAlias fields are
        // written but never read.
        let p = build(Variant::Original);
        let node = p.class_by_name("javac.Node").unwrap();
        let cg = heapdrag_analysis::CallGraph::build(&p);
        let usage = heapdrag_analysis::UsageAnalysis::build(&p, &cg);
        let wo = usage.write_only_fields(&p);
        // fields: kind 0, left 1, doc 2, docAlias 3 (own indices)
        assert!(wo.contains(&(node, 2)), "doc never read: {wo:?}");
        assert!(wo.contains(&(node, 3)), "docAlias never read: {wo:?}");
        assert!(!wo.contains(&(node, 0)), "kind is read");
    }
}
