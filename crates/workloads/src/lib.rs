//! # heapdrag-workloads
//!
//! The paper's nine-benchmark evaluation suite (Table 1), rebuilt as
//! synthetic programs for the heapdrag VM. Each benchmark models the heap
//! lifetime structure the paper describes for its real counterpart —
//! which transformation applies, at what kind of reference, and roughly
//! how much of the drag it recovers — in an *original* and a *manually
//! revised* variant (plus a default and an alternate input for Tables 2
//! and 3). The [`jdk`] module provides the shared mini class library,
//! including the leaky `Vector.removeLast` the paper fixes inside the JDK
//! for `jess`.

#![warn(missing_docs)]

pub mod analyzer;
pub mod db;
pub mod euler;
pub mod jack;
pub mod javac;
pub mod jdk;
pub mod jess;
pub mod juru;
pub mod mc;
pub mod raytrace;
pub mod spec;

pub use spec::{all_workloads, workload_by_name, Variant, Workload};
