//! Per-method control-flow graphs at instruction granularity — the
//! substrate every §5 dataflow analysis (liveness, reaching, types)
//! iterates over.
//!
//! Methods in this VM are small, so the dataflow analyses run directly over
//! instructions; the [`Cfg`] precomputes successor and predecessor lists,
//! including exception edges (every pc covered by a handler has an edge to
//! the handler entry).

use heapdrag_vm::class::Method;
use heapdrag_vm::insn::Insn;

/// Control-flow graph of one method.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    /// pcs with no successors (returns, throws with no handler).
    exits: Vec<u32>,
}

impl Cfg {
    /// Builds the CFG of `method`.
    pub fn build(method: &Method) -> Self {
        let n = method.code.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pc, insn) in method.code.iter().enumerate() {
            let pc32 = pc as u32;
            let mut s = Vec::new();
            match insn {
                Insn::Jump(t) => s.push(*t),
                Insn::Branch(t) | Insn::BranchIfNull(t) | Insn::BranchIfNotNull(t) => {
                    s.push(pc32 + 1);
                    s.push(*t);
                }
                Insn::Ret | Insn::RetVal | Insn::Throw => {}
                _ => s.push(pc32 + 1),
            }
            // Exception edges: any covered instruction may transfer to the
            // handler entry.
            for h in &method.handlers {
                if pc32 >= h.start_pc && pc32 < h.end_pc {
                    s.push(h.handler_pc);
                }
            }
            s.retain(|t| (*t as usize) < n);
            s.sort_unstable();
            s.dedup();
            succs[pc] = s;
        }
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pc, ss) in succs.iter().enumerate() {
            for &t in ss {
                preds[t as usize].push(pc as u32);
            }
        }
        let exits = succs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_empty())
            .map(|(pc, _)| pc as u32)
            .collect();
        Cfg { succs, preds, exits }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True for an empty method body.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Successor pcs of `pc`.
    pub fn succs(&self, pc: u32) -> &[u32] {
        &self.succs[pc as usize]
    }

    /// Predecessor pcs of `pc`.
    pub fn preds(&self, pc: u32) -> &[u32] {
        &self.preds[pc as usize]
    }

    /// Exit pcs (no successors).
    pub fn exits(&self) -> &[u32] {
        &self.exits
    }

    /// pcs reachable from entry (pc 0), in discovery order.
    pub fn reachable(&self) -> Vec<u32> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut seen = vec![false; self.len()];
        let mut order = Vec::new();
        let mut stack = vec![0u32];
        while let Some(pc) = stack.pop() {
            if seen[pc as usize] {
                continue;
            }
            seen[pc as usize] = true;
            order.push(pc);
            for &s in self.succs(pc) {
                if !seen[s as usize] {
                    stack.push(s);
                }
            }
        }
        order
    }

    /// True if `a` dominates `b` (every path from entry to `b` passes
    /// through `a`). Computed by reachability with `a` removed; quadratic
    /// in the worst case but the methods are tiny.
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0u32];
        while let Some(pc) = stack.pop() {
            if pc == a || seen[pc as usize] {
                continue;
            }
            seen[pc as usize] = true;
            if pc == b {
                return false; // reached b while avoiding a
            }
            for &s in self.succs(pc) {
                stack.push(s);
            }
        }
        // b unreachable without a; if 0 == a, also fine.
        a == 0 || !seen[b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::class::Handler;

    fn method(code: Vec<Insn>) -> Method {
        let mut m = Method::new("f", 0, 4);
        m.code = code;
        m
    }

    #[test]
    fn straight_line() {
        let m = method(vec![Insn::PushInt(1), Insn::Pop, Insn::Ret]);
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert_eq!(cfg.succs(2), &[] as &[u32]);
        assert_eq!(cfg.preds(1), &[0]);
        assert_eq!(cfg.exits(), &[2]);
    }

    #[test]
    fn branch_has_two_successors() {
        // 0: push 1; 1: branch 3; 2: nop; 3: ret
        let m = method(vec![Insn::PushInt(1), Insn::Branch(3), Insn::Nop, Insn::Ret]);
        let cfg = Cfg::build(&m);
        assert_eq!(cfg.succs(1), &[2, 3]);
        assert_eq!(cfg.preds(3), &[1, 2]);
    }

    #[test]
    fn exception_edges() {
        let mut m = method(vec![Insn::PushInt(1), Insn::PushInt(0), Insn::Div, Insn::Ret, Insn::Ret]);
        m.handlers.push(Handler {
            start_pc: 0,
            end_pc: 3,
            handler_pc: 4,
            catch: None,
        });
        let cfg = Cfg::build(&m);
        assert!(cfg.succs(2).contains(&4), "covered pc has handler edge");
        assert!(!cfg.succs(3).contains(&4), "uncovered pc has none");
    }

    #[test]
    fn reachability_skips_dead_code() {
        // 0: jump 2; 1: nop (dead); 2: ret
        let m = method(vec![Insn::Jump(2), Insn::Nop, Insn::Ret]);
        let cfg = Cfg::build(&m);
        let r = cfg.reachable();
        assert!(r.contains(&0) && r.contains(&2));
        assert!(!r.contains(&1));
    }

    #[test]
    fn dominance() {
        // 0: branch 3 ; 1: nop ; 2: jump 4 ; 3: nop ; 4: ret
        let m = method(vec![
            Insn::Branch(3),
            Insn::Nop,
            Insn::Jump(4),
            Insn::Nop,
            Insn::Ret,
        ]);
        let cfg = Cfg::build(&m);
        assert!(cfg.dominates(0, 4));
        assert!(!cfg.dominates(1, 4), "4 reachable via 3");
        assert!(!cfg.dominates(3, 4));
        assert!(cfg.dominates(4, 4));
    }
}
