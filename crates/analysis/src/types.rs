//! Abstract interpretation of operand-stack and local-variable types —
//! the stack-map inference the paper's §5 leans on (via Agesen et al.) to
//! know which locals hold references at each program point.

use std::error::Error;
use std::fmt;

use heapdrag_vm::class::Method;
use heapdrag_vm::ids::{ClassId, MethodId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::cfg::Cfg;

/// The type lattice: `Bottom ⊑ {Int, Null ⊑ Ref(_) ⊑ Ref(None)} ⊑ Top`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsType {
    /// Unreachable / undefined.
    Bottom,
    /// An integer.
    Int,
    /// The null reference.
    Null,
    /// A reference; `Some(c)` when a single least class is known.
    Ref(Option<ClassId>),
    /// Could be anything.
    Top,
}

impl AbsType {
    /// True for values that may hold an object reference (null included).
    pub fn is_reflike(self) -> bool {
        matches!(self, AbsType::Null | AbsType::Ref(_))
    }
}

/// Least upper bound of two types, resolving class joins through the
/// program's hierarchy (least common superclass; `Ref(None)` when unknown).
pub fn join(program: &Program, a: AbsType, b: AbsType) -> AbsType {
    use AbsType::*;
    match (a, b) {
        (Bottom, x) | (x, Bottom) => x,
        (Int, Int) => Int,
        (Null, Null) => Null,
        (Null, Ref(c)) | (Ref(c), Null) => Ref(c),
        (Ref(Some(x)), Ref(Some(y))) => {
            if x == y {
                Ref(Some(x))
            } else {
                Ref(common_super(program, x, y))
            }
        }
        (Ref(_), Ref(_)) => Ref(None),
        _ => Top,
    }
}

fn common_super(program: &Program, a: ClassId, b: ClassId) -> Option<ClassId> {
    let mut cur = Some(a);
    while let Some(c) = cur {
        if program.is_subclass(b, c) {
            return Some(c);
        }
        cur = program.classes[c.index()].super_class;
    }
    None
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsFrame {
    /// Operand-stack types, bottom first.
    pub stack: Vec<AbsType>,
    /// Local-variable types.
    pub locals: Vec<AbsType>,
}

/// A type-inference failure (the analogue of a bytecode-verifier error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Offending method.
    pub method: MethodId,
    /// Offending pc.
    pub pc: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error in {} at pc {}: {}", self.method, self.pc, self.message)
    }
}

impl Error for TypeError {}

/// Inferred types for one method: the state *before* each instruction
/// (`None` for unreachable pcs).
#[derive(Debug, Clone)]
pub struct MethodTypes {
    /// State entering each pc.
    pub before: Vec<Option<AbsFrame>>,
}

impl MethodTypes {
    /// The type of local `n` entering `pc`, [`AbsType::Bottom`] if
    /// unreachable.
    pub fn local(&self, pc: u32, n: u16) -> AbsType {
        self.before[pc as usize]
            .as_ref()
            .map_or(AbsType::Bottom, |f| f.locals[n as usize])
    }

    /// The type of the value `depth` slots below the top of stack entering
    /// `pc` (0 = top).
    pub fn stack(&self, pc: u32, depth: usize) -> AbsType {
        self.before[pc as usize]
            .as_ref()
            .and_then(|f| f.stack.iter().rev().nth(depth).copied())
            .unwrap_or(AbsType::Bottom)
    }
}

/// Does the method return a value? `Err` when it mixes `ret` and `retval`,
/// which the dynamic VM allows but the static analyses reject.
pub fn returns_value(method: &Method) -> Result<bool, String> {
    let has_ret = method.code.iter().any(|i| matches!(i, Insn::Ret));
    let has_retval = method.code.iter().any(|i| matches!(i, Insn::RetVal));
    match (has_ret, has_retval) {
        (true, true) => Err(format!(
            "method `{}` mixes ret and retval",
            method.name
        )),
        (_, rv) => Ok(rv),
    }
}

/// Whether any resolvable target of a virtual selector returns a value;
/// `Err` when targets disagree.
fn selector_returns_value(program: &Program, vslot: usize) -> Result<bool, String> {
    let mut found: Option<bool> = None;
    for class in &program.classes {
        if let Some(Some(mid)) = class.vtable.get(vslot).copied() {
            let rv = returns_value(&program.methods[mid.index()])?;
            match found {
                None => found = Some(rv),
                Some(prev) if prev != rv => {
                    return Err(format!(
                        "targets of selector `{}` disagree on returning a value",
                        program.selectors[vslot]
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(found.unwrap_or(false))
}

/// Supplies types for the program points local inference cannot see:
/// field contents, statics, and call results. The default answers
/// [`AbsType::Top`] everywhere; [`GlobalTypes`](crate::global_types::GlobalTypes)
/// supplies a whole-program fixpoint.
pub trait TypeEnv {
    /// Type of the value read by `getfield slot` on `receiver`.
    fn field_type(&self, program: &Program, receiver: AbsType, slot: u16) -> AbsType {
        let _ = (program, receiver, slot);
        AbsType::Top
    }
    /// Type of a static variable's value.
    fn static_type(&self, program: &Program, s: heapdrag_vm::ids::StaticId) -> AbsType {
        let _ = (program, s);
        AbsType::Top
    }
    /// Type of a direct call's return value.
    fn return_type(&self, program: &Program, m: MethodId) -> AbsType {
        let _ = (program, m);
        AbsType::Top
    }
    /// Type of a virtual call's return value (join over CHA targets).
    fn selector_return_type(&self, program: &Program, vslot: heapdrag_vm::ids::VSlot) -> AbsType {
        let _ = (program, vslot);
        AbsType::Top
    }
}

/// The environment that knows nothing: every opaque read is [`AbsType::Top`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TopEnv;

impl TypeEnv for TopEnv {}

/// Runs type inference over one method with the know-nothing environment.
///
/// # Errors
///
/// Returns a [`TypeError`] on stack-depth mismatches at joins, underflow,
/// or ambiguous call arity — all indicating bytecode the analyses cannot
/// soundly reason about.
pub fn infer(program: &Program, method_id: MethodId) -> Result<MethodTypes, TypeError> {
    infer_in(program, method_id, &TopEnv)
}

/// Runs type inference over one method, resolving opaque reads through
/// `env`.
///
/// # Errors
///
/// See [`infer`].
pub fn infer_in(
    program: &Program,
    method_id: MethodId,
    env: &dyn TypeEnv,
) -> Result<MethodTypes, TypeError> {
    let method = &program.methods[method_id.index()];
    let cfg = Cfg::build(method);
    let n = method.code.len();
    let mut before: Vec<Option<AbsFrame>> = vec![None; n];
    if n == 0 {
        return Ok(MethodTypes { before });
    }

    let mut entry_locals = vec![AbsType::Bottom; method.num_locals as usize];
    for (i, slot) in entry_locals.iter_mut().enumerate().take(method.num_params as usize) {
        *slot = if i == 0 && !method.is_static {
            AbsType::Ref(method.class)
        } else if i == 0 && method.class.is_none() {
            // Entry convention: local 0 of a free function holds the input
            // array when it is the program entry; model it as a ref.
            AbsType::Ref(Some(program.builtins.array))
        } else {
            AbsType::Top
        };
    }
    before[0] = Some(AbsFrame {
        stack: Vec::new(),
        locals: entry_locals,
    });

    let mk_err = |pc: u32, message: String| TypeError {
        method: method_id,
        pc,
        message,
    };

    let mut work = vec![0u32];
    while let Some(pc) = work.pop() {
        let Some(state) = before[pc as usize].clone() else {
            continue;
        };
        let insn = method.code[pc as usize];
        let mut stack = state.stack.clone();
        let mut locals = state.locals.clone();

        let pop = |stack: &mut Vec<AbsType>| {
            stack
                .pop()
                .ok_or_else(|| mk_err(pc, "operand stack underflow".into()))
        };

        match insn {
            Insn::PushInt(_) => stack.push(AbsType::Int),
            Insn::PushNull => stack.push(AbsType::Null),
            Insn::Dup => {
                let t = *stack
                    .last()
                    .ok_or_else(|| mk_err(pc, "dup on empty stack".into()))?;
                stack.push(t);
            }
            Insn::Pop => {
                pop(&mut stack)?;
            }
            Insn::Swap => {
                let a = pop(&mut stack)?;
                let b = pop(&mut stack)?;
                stack.push(a);
                stack.push(b);
            }
            Insn::Load(l) => stack.push(locals[l as usize]),
            Insn::Store(l) => {
                let v = pop(&mut stack)?;
                locals[l as usize] = v;
            }
            Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem => {
                pop(&mut stack)?;
                pop(&mut stack)?;
                stack.push(AbsType::Int);
            }
            Insn::Neg => {
                pop(&mut stack)?;
                stack.push(AbsType::Int);
            }
            Insn::CmpEq | Insn::CmpNe | Insn::CmpLt | Insn::CmpLe | Insn::CmpGt | Insn::CmpGe => {
                pop(&mut stack)?;
                pop(&mut stack)?;
                stack.push(AbsType::Int);
            }
            Insn::Jump(_) => {}
            Insn::Branch(_) | Insn::BranchIfNull(_) | Insn::BranchIfNotNull(_) => {
                pop(&mut stack)?;
            }
            Insn::New(c) => stack.push(AbsType::Ref(Some(c))),
            Insn::NewArray => {
                pop(&mut stack)?;
                stack.push(AbsType::Ref(Some(program.builtins.array)));
            }
            Insn::GetField(slot) => {
                let receiver = pop(&mut stack)?;
                stack.push(env.field_type(program, receiver, slot));
            }
            Insn::PutField(_) => {
                pop(&mut stack)?;
                pop(&mut stack)?;
            }
            Insn::ALoad => {
                pop(&mut stack)?;
                pop(&mut stack)?;
                stack.push(AbsType::Top);
            }
            Insn::AStore => {
                pop(&mut stack)?;
                pop(&mut stack)?;
                pop(&mut stack)?;
            }
            Insn::ArrayLen => {
                pop(&mut stack)?;
                stack.push(AbsType::Int);
            }
            Insn::InstanceOf(_) => {
                pop(&mut stack)?;
                stack.push(AbsType::Int);
            }
            Insn::GetStatic(s) => stack.push(env.static_type(program, s)),
            Insn::PutStatic(_) => {
                pop(&mut stack)?;
            }
            Insn::Call(target) => {
                let callee = &program.methods[target.index()];
                for _ in 0..callee.num_params {
                    pop(&mut stack)?;
                }
                if returns_value(callee).map_err(|e| mk_err(pc, e))? {
                    stack.push(env.return_type(program, target));
                }
            }
            Insn::CallVirtual { vslot, argc } => {
                for _ in 0..=argc {
                    pop(&mut stack)?;
                }
                if selector_returns_value(program, vslot.index()).map_err(|e| mk_err(pc, e))? {
                    stack.push(env.selector_return_type(program, vslot));
                }
            }
            Insn::Ret => {}
            Insn::RetVal => {
                pop(&mut stack)?;
            }
            Insn::MonitorEnter | Insn::MonitorExit | Insn::Throw => {
                pop(&mut stack)?;
            }
            Insn::Print => {
                pop(&mut stack)?;
            }
            Insn::Nop => {}
        }

        let out = AbsFrame { stack, locals };
        for &succ in cfg.succs(pc) {
            // Exception edges reset the stack to just the thrown reference.
            let is_exception_edge = method
                .handlers
                .iter()
                .any(|h| h.handler_pc == succ && pc >= h.start_pc && pc < h.end_pc)
                && !matches!(insn.jump_target(), Some(t) if t == succ)
                && succ != pc + 1;
            let incoming = if is_exception_edge {
                AbsFrame {
                    stack: vec![AbsType::Ref(None)],
                    locals: out.locals.clone(),
                }
            } else {
                out.clone()
            };
            match &mut before[succ as usize] {
                slot @ None => {
                    *slot = Some(incoming);
                    work.push(succ);
                }
                Some(existing) => {
                    if existing.stack.len() != incoming.stack.len() {
                        return Err(mk_err(
                            succ,
                            format!(
                                "stack depth mismatch at join: {} vs {}",
                                existing.stack.len(),
                                incoming.stack.len()
                            ),
                        ));
                    }
                    let mut changed = false;
                    for (a, b) in existing.stack.iter_mut().zip(&incoming.stack) {
                        let j = join(program, *a, *b);
                        changed |= j != *a;
                        *a = j;
                    }
                    for (a, b) in existing.locals.iter_mut().zip(&incoming.locals) {
                        let j = join(program, *a, *b);
                        changed |= j != *a;
                        *a = j;
                    }
                    if changed {
                        work.push(succ);
                    }
                }
            }
        }
    }

    Ok(MethodTypes { before })
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    fn simple_program() -> (Program, MethodId, ClassId) {
        let mut b = ProgramBuilder::new();
        let c = b
            .begin_class("Thing")
            .field("f", Visibility::Private)
            .finish();
        let main = b.declare_method("main", None, true, 1, 3);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1); // local 1: Ref(Thing)
            m.push_int(5).store(2); // local 2: Int
            m.load(1).push_int(1).putfield(0);
            m.push_null().store(1); // local 1: Null after
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), main, c)
    }

    #[test]
    fn locals_get_types() {
        let (p, main, c) = simple_program();
        let t = infer(&p, main).unwrap();
        // After `store 1` (pc 1), entering pc 2 local 1 is Ref(Thing).
        assert_eq!(t.local(2, 1), AbsType::Ref(Some(c)));
        // Entering the ret (last pc), local 1 is Null, local 2 Int.
        let last = (p.methods[main.index()].code.len() - 1) as u32;
        assert_eq!(t.local(last, 1), AbsType::Null);
        assert_eq!(t.local(last, 2), AbsType::Int);
        assert!(t.local(last, 1).is_reflike());
        assert!(!t.local(last, 2).is_reflike());
    }

    #[test]
    fn join_of_classes_finds_common_super() {
        let mut b = ProgramBuilder::new();
        let base = b.begin_class("Base").finish();
        let d1 = b.begin_class("D1").extends(base).finish();
        let d2 = b.begin_class("D2").extends(base).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.load(0).push_int(0).aload().branch("else");
            m.new_obj(d1).store(1);
            m.jump("end");
            m.label("else");
            m.new_obj(d2).store(1);
            m.label("end");
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let t = infer(&p, p.entry).unwrap();
        let end_pc = (p.methods[p.entry.index()].code.len() - 1) as u32;
        assert_eq!(t.local(end_pc, 1), AbsType::Ref(Some(base)));
        let _ = (d1, d2);
    }

    #[test]
    fn join_lattice_laws() {
        let (p, _, c) = simple_program();
        use AbsType::*;
        let vals = [Bottom, Int, Null, Ref(Some(c)), Ref(None), Top];
        for a in vals {
            assert_eq!(join(&p, a, Bottom), a, "bottom is identity");
            assert_eq!(join(&p, a, a), a, "idempotent");
            for b in vals {
                assert_eq!(join(&p, a, b), join(&p, b, a), "commutative");
            }
        }
        assert_eq!(join(&p, Int, Null), Top);
        assert_eq!(join(&p, Null, Ref(Some(c))), Ref(Some(c)));
    }

    #[test]
    fn mixed_return_kinds_rejected() {
        let mut m = Method::new("f", 0, 0);
        m.code = vec![Insn::Ret, Insn::PushInt(0), Insn::RetVal];
        assert!(returns_value(&m).is_err());
        let mut m2 = Method::new("g", 0, 0);
        m2.code = vec![Insn::PushInt(0), Insn::RetVal];
        assert_eq!(returns_value(&m2), Ok(true));
    }

    #[test]
    fn unreachable_code_stays_untyped() {
        let mut b = ProgramBuilder::new();
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.jump("end");
            m.push_int(1).pop(); // dead
            m.label("end").ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let t = infer(&p, p.entry).unwrap();
        assert!(t.before[1].is_none());
        assert_eq!(t.local(1, 0), AbsType::Bottom);
    }
}
