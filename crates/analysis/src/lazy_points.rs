//! Minimal-code-insertion support for lazy allocation (§5.1): the possible
//! *first uses* of a field, where a `null`-check guard must be inserted
//! when the allocation is delayed.

use heapdrag_vm::class::Visibility;
use heapdrag_vm::ids::{ClassId, MethodId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::callgraph::CallGraph;
use crate::global_types::GlobalTypes;
use crate::types::{infer_in, AbsType};

/// One program point reading the field under consideration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldReadSite {
    /// Method containing the read.
    pub method: MethodId,
    /// pc of the `getfield`.
    pub pc: u32,
    /// True when the receiver's static type guarantees it carries the
    /// field; false for unknown receivers (conservatively included).
    pub receiver_known: bool,
}

/// The scope §3.3.1/§3.4 inspects for uses, derived from the field's
/// visibility: the declaring class, its package, or the whole program.
pub fn scope_methods(
    program: &Program,
    callgraph: &CallGraph,
    class: ClassId,
    visibility: Visibility,
) -> Vec<MethodId> {
    let package = &program.classes[class.index()].package;
    (0..program.methods.len() as u32)
        .map(MethodId)
        .filter(|m| callgraph.is_reachable(*m))
        .filter(|m| match visibility {
            Visibility::Private => program.methods[m.index()].class == Some(class),
            Visibility::Package => match program.methods[m.index()].class {
                Some(c) => &program.classes[c.index()].package == package,
                None => true, // free functions see everything in our model
            },
            Visibility::Protected | Visibility::Public => true,
        })
        .collect()
}

/// Finds every `getfield` of layout slot `slot` whose receiver may be an
/// instance of `class` (or a subclass), across all reachable methods.
///
/// These are the points where the lazy-allocation transformation must
/// insert its "if still null, allocate" guard. Unknown receivers are
/// included conservatively with `receiver_known == false`.
pub fn field_read_sites(
    program: &Program,
    callgraph: &CallGraph,
    class: ClassId,
    slot: u16,
) -> Vec<FieldReadSite> {
    let mut sites = Vec::new();
    let globals = GlobalTypes::build(program);
    for mid in 0..program.methods.len() as u32 {
        let mid = MethodId(mid);
        if !callgraph.is_reachable(mid) {
            continue;
        }
        let method = &program.methods[mid.index()];
        let types = infer_in(program, mid, &globals).ok();
        for (pc, insn) in method.code.iter().enumerate() {
            let pc = pc as u32;
            let Insn::GetField(s) = insn else { continue };
            if *s != slot {
                continue;
            }
            let receiver = types
                .as_ref()
                .map(|t| t.stack(pc, 0))
                .unwrap_or(AbsType::Top);
            match receiver {
                AbsType::Ref(Some(c))
                    if program.is_subclass(c, class) || program.is_subclass(class, c) =>
                {
                    sites.push(FieldReadSite {
                        method: mid,
                        pc,
                        receiver_known: true,
                    });
                }
                AbsType::Ref(Some(_)) => { /* provably unrelated class */ }
                AbsType::Ref(None) | AbsType::Top => {
                    sites.push(FieldReadSite {
                        method: mid,
                        pc,
                        receiver_known: false,
                    });
                }
                _ => {}
            }
        }
    }
    sites
}

/// True when every read of the field happens through a statically-known
/// receiver — the precondition for a sound mechanical lazy-allocation
/// rewrite (guards can be placed at exactly the first-use points).
pub fn reads_fully_resolved(sites: &[FieldReadSite]) -> bool {
    sites.iter().all(|s| s.receiver_known)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;

    fn jack_like_program() -> (Program, ClassId, u16) {
        // A parser whose ctor eagerly allocates a table into a field read
        // from two other methods of the same package.
        let mut b = ProgramBuilder::new();
        let table = b.begin_class("pkg.Table").finish();
        let parser = b
            .begin_class("pkg.Parser")
            .field("table", Visibility::Package)
            .finish();
        let init = b.declare_method("init", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(init);
            m.load(0).new_obj(table).putfield(0);
            m.ret();
            m.finish();
        }
        let use1 = b.declare_method("lookup", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(use1);
            m.load(0).getfield(0).pop();
            m.ret();
            m.finish();
        }
        let use2 = b.declare_method("dump", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(use2);
            m.load(0).getfield(0).pop();
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(parser).store(1);
            m.load(1).call(init);
            m.load(1).call_virtual("lookup", 0);
            m.load(1).call_virtual("dump", 0);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), parser, 0)
    }

    #[test]
    fn finds_all_read_sites() {
        let (p, parser, slot) = jack_like_program();
        let cg = CallGraph::build(&p);
        let sites = field_read_sites(&p, &cg, parser, slot);
        assert_eq!(sites.len(), 2, "one per reading method");
        assert!(reads_fully_resolved(&sites));
    }

    #[test]
    fn package_scope_includes_package_members_only() {
        let (p, parser, _) = jack_like_program();
        let cg = CallGraph::build(&p);
        let scope = scope_methods(&p, &cg, parser, Visibility::Package);
        // All Parser methods + main (free function); Table has no methods.
        let names: Vec<String> = scope.iter().map(|m| p.method_name(*m)).collect();
        assert!(names.contains(&"pkg.Parser.lookup".to_string()));
        assert!(names.contains(&"main".to_string()));
    }

    #[test]
    fn private_scope_is_declaring_class_only() {
        let (p, parser, _) = jack_like_program();
        let cg = CallGraph::build(&p);
        let scope = scope_methods(&p, &cg, parser, Visibility::Private);
        for m in &scope {
            assert_eq!(p.methods[m.index()].class, Some(parser));
        }
        assert_eq!(scope.len(), 3);
    }

    #[test]
    fn unrelated_class_reads_excluded() {
        // A second class with its own slot-0 field must not produce sites.
        let mut b = ProgramBuilder::new();
        let a = b.begin_class("A").field("f", Visibility::Private).finish();
        let other = b.begin_class("Other").field("g", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(other).store(1);
            m.load(1).getfield(0).pop(); // reads Other.g, slot 0
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = field_read_sites(&p, &cg, a, 0);
        assert!(sites.is_empty(), "Other is provably unrelated to A");
    }
}

/// Minimal code insertion (§5.1, "in a PRE fashion"): drops guard sites
/// that are *redundant* because another guard site in the same method
/// dominates them.
///
/// Once a dominating guard has run, the field is non-null and stays
/// non-null (the transformed program only ever writes the allocated object
/// into it), so a dominated guard's null test can never fire. Soundness
/// requires both reads to be against the **same object**; this is only
/// decidable cheaply when both receivers are the method's `this`
/// ([`Prov::This`](crate::provenance::Prov::This)), so minimisation is restricted to that case — exactly
/// the accessor-method pattern of the paper's `jack` rewrite.
pub fn minimize_guard_sites(program: &Program, sites: &[FieldReadSite]) -> Vec<FieldReadSite> {
    use crate::cfg::Cfg;
    use crate::provenance::{infer_provenance, Prov};
    use std::collections::HashMap;

    let mut by_method: HashMap<MethodId, Vec<FieldReadSite>> = HashMap::new();
    for s in sites {
        by_method.entry(s.method).or_default().push(*s);
    }
    let mut kept = Vec::new();
    for (mid, group) in by_method {
        if group.len() == 1 {
            kept.extend(group);
            continue;
        }
        let method = &program.methods[mid.index()];
        let cfg = Cfg::build(method);
        let prov = infer_provenance(program, mid);
        let receiver_is_this = |pc: u32| {
            prov.as_ref()
                .map(|p| p.stack(pc, 0) == Prov::This)
                .unwrap_or(false)
        };
        for s in &group {
            let dominated = group.iter().any(|other| {
                other.pc != s.pc
                    && receiver_is_this(other.pc)
                    && receiver_is_this(s.pc)
                    && cfg.dominates(other.pc, s.pc)
                    // Break mutual-dominance ties (straight-line pairs)
                    // deterministically: the earlier site wins.
                    && !(cfg.dominates(s.pc, other.pc) && s.pc < other.pc)
            });
            if !dominated {
                kept.push(*s);
            }
        }
    }
    kept.sort_by_key(|s| (s.method, s.pc));
    kept
}

#[cfg(test)]
mod minimize_tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use heapdrag_vm::builder::ProgramBuilder;

    #[test]
    fn dominated_this_read_is_elided() {
        // An accessor that reads this.f twice in a straight line: only the
        // first read needs a guard.
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let get = b.declare_method("get", Some(c), false, 1, 1);
        {
            let mut m = b.begin_body(get);
            m.load(0).getfield(0).pop(); // pc 1: first read
            m.load(0).getfield(0).ret_val(); // pc 4: dominated read
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).call_virtual("get", 0).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = field_read_sites(&p, &cg, c, 0);
        assert_eq!(sites.len(), 2);
        let minimal = minimize_guard_sites(&p, &sites);
        assert_eq!(minimal.len(), 1, "one dominating guard suffices");
        assert_eq!(minimal[0].pc, 1, "the earlier read keeps the guard");
    }

    #[test]
    fn branch_reads_both_keep_guards() {
        // Reads on two exclusive branches: neither dominates the other.
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        let get = b.declare_method("get", Some(c), false, 2, 2);
        {
            let mut m = b.begin_body(get);
            m.load(1).branch("else");
            m.load(0).getfield(0).ret_val();
            m.label("else");
            m.load(0).getfield(0).ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).push_int(0).call_virtual("get", 1).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = field_read_sites(&p, &cg, c, 0);
        let minimal = minimize_guard_sites(&p, &sites);
        assert_eq!(minimal.len(), 2, "exclusive branches both need guards");
    }

    #[test]
    fn different_methods_never_elide_each_other() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("f", Visibility::Private).finish();
        for name in ["g1", "g2"] {
            let m_id = b.declare_method(name, Some(c), false, 1, 1);
            let mut m = b.begin_body(m_id);
            m.load(0).getfield(0).ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.load(1).call_virtual("g1", 0).pop();
            m.load(1).call_virtual("g2", 0).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let cg = CallGraph::build(&p);
        let sites = field_read_sites(&p, &cg, c, 0);
        let minimal = minimize_guard_sites(&p, &sites);
        assert_eq!(minimal.len(), 2);
    }
}
