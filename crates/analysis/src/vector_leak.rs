//! Array-liveness idiom detection (§5.2): vector-like classes that remove
//! a logically-last element by decrementing a size field **without**
//! nulling the array slot leak the removed element — the `jess` bug the
//! paper fixes and the case its array-liveness analysis \[24\] detects.

use heapdrag_vm::ids::{ClassId, MethodId};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;

use crate::provenance::{infer_provenance, Prov};

/// A vector-style removal that leaks the removed element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorLeak {
    /// The vector-like class.
    pub class: ClassId,
    /// The method performing the size decrement.
    pub method: MethodId,
    /// pc of the `putfield` that shrinks the size.
    pub shrink_pc: u32,
    /// Layout slot of the size field.
    pub size_slot: u16,
}

/// Scans all instance methods for the leaky-removal idiom:
///
/// * the method loads `this.f`, subtracts, and stores back to `this.f`
///   (a size decrement), and
/// * the method performs **no** `astore` of `null` into any array.
///
/// A method that decrements *and* nulls (`elements[--size] = null`) is the
/// fixed form and is not reported.
pub fn find_vector_leaks(program: &Program) -> Vec<VectorLeak> {
    let mut leaks = Vec::new();
    for mid in 0..program.methods.len() as u32 {
        let mid = MethodId(mid);
        let method = &program.methods[mid.index()];
        let Some(class) = method.class else { continue };
        if method.is_static {
            continue;
        }
        let Some(prov) = infer_provenance(program, mid) else {
            continue;
        };

        // Does the method null an array element anywhere?
        let nulls_element = method.code.iter().enumerate().any(|(pc, insn)| {
            matches!(insn, Insn::AStore) && prov.stack(pc as u32, 0) == Prov::NullConst
        });
        if nulls_element {
            continue;
        }

        // Find `putfield this.slot` whose value came through a `sub`, with
        // a matching `getfield this.slot` earlier in the method.
        for (pc, insn) in method.code.iter().enumerate() {
            let pc = pc as u32;
            let Insn::PutField(slot) = insn else { continue };
            if prov.stack(pc, 1) != Prov::This {
                continue;
            }
            // Value must be produced by an arithmetic `sub` immediately
            // before (the `size - 1` shape).
            let produced_by_sub = pc > 0 && matches!(method.code[pc as usize - 1], Insn::Sub);
            if !produced_by_sub {
                continue;
            }
            let reads_same_field = method.code.iter().enumerate().any(|(p2, i2)| {
                matches!(i2, Insn::GetField(s2) if s2 == slot)
                    && prov.stack(p2 as u32, 0) == Prov::This
            });
            if reads_same_field {
                leaks.push(VectorLeak {
                    class,
                    method: mid,
                    shrink_pc: pc,
                    size_slot: *slot,
                });
            }
        }
    }
    leaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    /// Builds a vector class whose `removeLast` optionally nulls the slot.
    fn vector_program(null_on_remove: bool) -> (Program, MethodId) {
        let mut b = ProgramBuilder::new();
        let vec = b
            .begin_class("Vec")
            .field("elements", Visibility::Private)
            .field("size", Visibility::Private)
            .finish();
        let remove = b.declare_method("removeLast", Some(vec), false, 1, 2);
        {
            let mut m = b.begin_body(remove);
            // size = size - 1
            m.load(0).load(0).getfield_named(vec, "size").push_int(1).sub();
            m.putfield_named(vec, "size");
            if null_on_remove {
                // elements[size] = null
                m.load(0).getfield_named(vec, "elements");
                m.load(0).getfield_named(vec, "size");
                m.push_null().astore();
            }
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(vec).store(1);
            m.load(1).push_int(4).new_array().putfield_named(vec, "elements");
            m.load(1).push_int(1).putfield_named(vec, "size");
            m.load(1).call_virtual("removeLast", 0);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        (b.finish().unwrap(), remove)
    }

    #[test]
    fn leaky_remove_detected() {
        let (p, remove) = vector_program(false);
        let leaks = find_vector_leaks(&p);
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].method, remove);
        assert_eq!(
            p.classes[leaks[0].class.index()].name,
            "Vec"
        );
    }

    #[test]
    fn fixed_remove_not_reported() {
        let (p, _) = vector_program(true);
        assert!(find_vector_leaks(&p).is_empty());
    }

    #[test]
    fn plain_setter_not_reported() {
        // A method writing a field without the decrement shape.
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("x", Visibility::Private).finish();
        let set = b.declare_method("set", Some(c), false, 2, 2);
        {
            let mut m = b.begin_body(set);
            m.load(0).load(1).putfield(0);
            m.ret();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).push_int(1).call(set);
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        assert!(find_vector_leaks(&p).is_empty());
    }
}
