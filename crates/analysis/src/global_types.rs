//! Whole-program type inference: a fixpoint over field contents, static
//! variables, and method return types, giving the per-method inference a
//! [`TypeEnv`] that resolves chained field reads (`a.b.c`) precisely.

use std::collections::HashMap;

use heapdrag_vm::ids::{ClassId, MethodId, StaticId, VSlot};
use heapdrag_vm::insn::Insn;
use heapdrag_vm::program::Program;
use heapdrag_vm::value::Value;

use crate::types::{infer_in, join, AbsType, TypeEnv};

/// A field identified by declaring class and own-index (as in
/// [`UsageAnalysis`](crate::usage::UsageAnalysis)).
type FieldKey = (ClassId, u16);

/// The global type tables.
///
/// A field or static that is never written keeps type
/// [`AbsType::Bottom`] ⊔ its initial value — reading it yields `Null` (all
/// heap slots start null), which is sound because every write in the
/// program contributes to the table.
#[derive(Debug, Clone)]
pub struct GlobalTypes {
    fields: HashMap<FieldKey, AbsType>,
    /// Writes through unresolvable receivers poison all fields at a slot.
    poisoned_slots: Vec<u16>,
    statics: Vec<AbsType>,
    returns: Vec<AbsType>,
}

impl GlobalTypes {
    /// Runs the fixpoint over `program`.
    pub fn build(program: &Program) -> Self {
        let mut gt = GlobalTypes {
            fields: HashMap::new(),
            poisoned_slots: Vec::new(),
            statics: program
                .statics
                .iter()
                .map(|s| match s.init {
                    Value::Int(_) => AbsType::Int,
                    Value::Null => AbsType::Null,
                    Value::Ref(_) => AbsType::Ref(None),
                })
                .collect(),
            returns: vec![AbsType::Bottom; program.methods.len()],
        };
        // The lattice is finite and all updates are joins, so this
        // terminates; cap iterations defensively anyway.
        for _ in 0..program.methods.len() + program.classes.len() + 8 {
            if !gt.round(program) {
                break;
            }
        }
        gt
    }

    /// One propagation round; returns true if anything changed.
    fn round(&mut self, program: &Program) -> bool {
        let mut changed = false;
        for mid in 0..program.methods.len() as u32 {
            let mid = MethodId(mid);
            let method = &program.methods[mid.index()];
            let Ok(types) = infer_in(program, mid, self) else {
                // Defeated inference: poison everything this method writes.
                for insn in &method.code {
                    match insn {
                        Insn::PutField(slot)
                            if !self.poisoned_slots.contains(slot) => {
                                self.poisoned_slots.push(*slot);
                                changed = true;
                            }
                        Insn::PutStatic(s)
                            if self.statics[s.index()] != AbsType::Top => {
                                self.statics[s.index()] = AbsType::Top;
                                changed = true;
                            }
                        _ => {}
                    }
                }
                continue;
            };
            for (pc, insn) in method.code.iter().enumerate() {
                let pc = pc as u32;
                match insn {
                    Insn::PutField(slot) => {
                        let receiver = types.stack(pc, 1);
                        let value = types.stack(pc, 0);
                        match receiver {
                            AbsType::Ref(Some(class)) => {
                                if let Some(key) =
                                    program.classes[class.index()].layout.get(*slot as usize)
                                {
                                    let cur = self
                                        .fields
                                        .get(key)
                                        .copied()
                                        .unwrap_or(AbsType::Bottom);
                                    let new = join(program, cur, value);
                                    if new != cur {
                                        self.fields.insert(*key, new);
                                        changed = true;
                                    }
                                }
                            }
                            AbsType::Bottom => {}
                            _ => {
                                if !self.poisoned_slots.contains(slot) {
                                    self.poisoned_slots.push(*slot);
                                    changed = true;
                                }
                            }
                        }
                    }
                    Insn::PutStatic(s) => {
                        let value = types.stack(pc, 0);
                        let cur = self.statics[s.index()];
                        let new = join(program, cur, value);
                        if new != cur {
                            self.statics[s.index()] = new;
                            changed = true;
                        }
                    }
                    Insn::RetVal => {
                        let value = types.stack(pc, 0);
                        let cur = self.returns[mid.index()];
                        let new = join(program, cur, value);
                        if new != cur {
                            self.returns[mid.index()] = new;
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        changed
    }

    /// The inferred content type of a field.
    pub fn field(&self, program: &Program, key: FieldKey) -> AbsType {
        // Poisoning is per layout slot; check every class laying this
        // field out.
        for class in &program.classes {
            for (slot, entry) in class.layout.iter().enumerate() {
                if *entry == key && self.poisoned_slots.contains(&(slot as u16)) {
                    return AbsType::Top;
                }
            }
        }
        // Never-written fields read as null.
        match self.fields.get(&key).copied().unwrap_or(AbsType::Bottom) {
            AbsType::Bottom => AbsType::Null,
            t => join(program, t, AbsType::Null),
        }
    }
}

impl TypeEnv for GlobalTypes {
    fn field_type(&self, program: &Program, receiver: AbsType, slot: u16) -> AbsType {
        match receiver {
            AbsType::Ref(Some(class)) => {
                match program.classes[class.index()].layout.get(slot as usize) {
                    Some(key) => self.field(program, *key),
                    None => AbsType::Top,
                }
            }
            _ => {
                if self.poisoned_slots.contains(&slot) {
                    return AbsType::Top;
                }
                // Join over every field that could live at this slot.
                let mut t = AbsType::Bottom;
                for (key, ft) in &self.fields {
                    let lives_at_slot = program.classes.iter().any(|c| {
                        c.layout.get(slot as usize) == Some(key)
                    });
                    if lives_at_slot {
                        t = join(program, t, *ft);
                    }
                }
                join(program, t, AbsType::Null)
            }
        }
    }

    fn static_type(&self, _program: &Program, s: StaticId) -> AbsType {
        self.statics[s.index()]
    }

    fn return_type(&self, _program: &Program, m: MethodId) -> AbsType {
        match self.returns[m.index()] {
            AbsType::Bottom => AbsType::Top, // not yet propagated this round
            t => t,
        }
    }

    fn selector_return_type(&self, program: &Program, vslot: VSlot) -> AbsType {
        let mut t = AbsType::Bottom;
        for class in &program.classes {
            if let Some(Some(mid)) = class.vtable.get(vslot.index()).copied() {
                t = join(program, t, self.returns[mid.index()]);
            }
        }
        match t {
            AbsType::Bottom => AbsType::Top,
            t => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapdrag_vm::builder::ProgramBuilder;
    use heapdrag_vm::class::Visibility;

    #[test]
    fn chained_field_reads_resolve() {
        // parser.table.n — the jack shape that defeats local inference.
        let mut b = ProgramBuilder::new();
        let table = b.begin_class("Table").field("n", Visibility::Private).finish();
        let parser = b
            .begin_class("Parser")
            .field("table", Visibility::Private)
            .finish();
        let init = b.declare_method("init", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(init);
            m.load(0).new_obj(table).putfield_named(parser, "table");
            m.ret();
            m.finish();
        }
        let lookup = b.declare_method("lookup", Some(parser), false, 1, 1);
        {
            let mut m = b.begin_body(lookup);
            m.load(0).getfield_named(parser, "table"); // pushes… what?
            m.getfield_named(table, "n");
            m.ret_val();
            m.finish();
        }
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(parser).dup().store(1).call(init);
            m.load(1).call_virtual("lookup", 0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let gt = GlobalTypes::build(&p);
        // Parser.table holds Table-or-null.
        assert_eq!(gt.field(&p, (parser, 0)), AbsType::Ref(Some(table)));
        // Inference inside `lookup` now types the inner getfield receiver.
        let types = infer_in(&p, lookup, &gt).unwrap();
        // pc 2 is the second getfield; its receiver (top of stack) is the
        // field value.
        assert_eq!(types.stack(2, 0), AbsType::Ref(Some(table)));
        // Table.n is never written in this program, so reading it yields
        // null, and that propagates into lookup's return type.
        assert_eq!(gt.returns[lookup.index()], AbsType::Null);
    }

    #[test]
    fn never_written_field_reads_as_null() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("never", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.load(1).getfield(0).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let gt = GlobalTypes::build(&p);
        assert_eq!(gt.field(&p, (c, 0)), AbsType::Null);
    }

    #[test]
    fn static_types_join_init_and_writes() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").finish();
        let s = b.static_var("G.s", Visibility::Public, heapdrag_vm::value::Value::Null);
        let main = b.declare_method("main", None, true, 1, 1);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).putstatic(s);
            m.getstatic(s).pop();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let gt = GlobalTypes::build(&p);
        assert_eq!(gt.static_type(&p, s), AbsType::Ref(Some(c)));
    }

    #[test]
    fn int_field_stays_int() {
        let mut b = ProgramBuilder::new();
        let c = b.begin_class("C").field("count", Visibility::Private).finish();
        let main = b.declare_method("main", None, true, 1, 2);
        {
            let mut m = b.begin_body(main);
            m.new_obj(c).store(1);
            m.load(1).push_int(5).putfield(0);
            m.load(1).getfield(0).print();
            m.ret();
            m.finish();
        }
        b.set_entry(main);
        let p = b.finish().unwrap();
        let gt = GlobalTypes::build(&p);
        // Int joined with Null (unwritten-read possibility) is Top — but
        // the raw write type is Int.
        assert_eq!(gt.fields.get(&(c, 0)), Some(&AbsType::Int));
    }
}
